#!/usr/bin/env python
"""Smoke test for the query service: boot, round-trip, rate-limit, shutdown.

Starts ``repro.serve`` on an ephemeral port in a background thread, then
drives it with stdlib ``http.client`` only:

1. ``POST /connect`` → a session id;
2. ``POST /query`` → the strictly-between answer, byte-exact;
3. ``POST /explain`` + ``GET /stats`` → sane JSON;
4. a burst past the token bucket → one 429 with a ``Retry-After`` hint;
5. clean shutdown → the port stops accepting and no sessions leak.

Exits non-zero (with a traceback) on the first broken expectation.  CI runs
this as the ``serve-smoke`` job; locally: ``PYTHONPATH=src python
tools/serve_smoke.py``.
"""

import http.client
import json
import socket
import sys

from repro.serve import ServerPolicy, SessionManager, serve_in_thread


def request(port, method, path, payload=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), (
            json.loads(raw) if raw else None
        )
    finally:
        connection.close()


def main() -> int:
    manager = SessionManager(ServerPolicy(rate=2.0, burst=8))
    with serve_in_thread(manager) as handle:
        port = handle.port
        print(f"server up on 127.0.0.1:{port}")

        status, _, body = request(port, "POST", "/connect", {
            "domain": "nat<",
            "schema": {"S": 1},
            "state": {"S": [[3], [5], [9]]},
        })
        assert status == 200, (status, body)
        session = body["session"]
        print(f"connected: session {session}")

        status, _, answer = request(port, "POST", "/query", {
            "session": session,
            "query": "exists y. exists z. (S(y) & S(z) & y < x & x < z)",
        })
        assert status == 200, (status, answer)
        assert answer["rows"] == [[4], [5], [6], [7], [8]], answer
        print(f"query ok: {answer['row_count']} rows via {answer['plan']}")

        # same query twice on the vectorized substrate: second is a cache hit
        for _ in range(2):
            status, _, answer = request(port, "POST", "/query", {
                "session": session,
                "query": "S(x)",
                "strategy": "vectorized",
            })
            assert status == 200, (status, answer)
            assert answer["rows"] == [[3], [5], [9]], answer

        status, _, explanation = request(port, "POST", "/explain", {
            "session": session,
            "query": "S(x)",
        })
        assert status == 200 and "free variables" in explanation["explanation"]
        print("explain ok")

        status, _, stats = request(port, "GET", "/stats")
        assert status == 200 and stats["sessions"]["live_sessions"] == 1, stats
        assert stats["plan_cache"]["hits"] >= 1, stats["plan_cache"]
        print(f"stats ok: plan cache {stats['plan_cache']}")

        # burn the remaining burst, then expect a 429 with a retry hint
        rejected = None
        for _ in range(10):
            status, headers, body = request(port, "POST", "/query", {
                "session": session, "query": "S(x)",
            })
            if status == 429:
                rejected = (status, headers, body)
                break
            assert status == 200, (status, body)
        assert rejected is not None, "token bucket never rejected the burst"
        status, headers, body = rejected
        assert float(headers["Retry-After"]) > 0, headers
        print(f"rate limit ok: 429, Retry-After {headers['Retry-After']}s")

    # context exit stopped the server and shut the manager down
    try:
        request(port, "GET", "/stats")
    except (ConnectionRefusedError, socket.timeout, OSError):
        pass
    else:
        raise AssertionError("port still accepting after shutdown")
    assert len(manager) == 0, "sessions leaked across shutdown"
    print("shutdown ok: port released, no sessions leaked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
