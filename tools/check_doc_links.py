#!/usr/bin/env python3
"""Check that markdown cross-links in the documentation suite resolve.

Usage::

    python tools/check_doc_links.py README.md API.md docs/ARCHITECTURE.md

For every ``[text](target)`` link in the given files:

* external targets (``http://``, ``https://``, ``mailto:``) are skipped;
* relative file targets must exist on disk (resolved against the linking
  file's directory);
* anchor targets (``#section`` or ``file.md#section``) must match a heading
  in the target file, using GitHub's slugification rules (lowercase,
  punctuation stripped, spaces to hyphens).

Exit status 0 when every link resolves, 1 otherwise; broken links are listed
one per line.  This is the check behind the CI docs job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set

#: ``[text](target)`` — target captured without surrounding whitespace;
#: images (``![alt](...)``) are checked the same way
LINK_RE = re.compile(r"\[[^\]]*\]\(\s*<?([^)\s>]+)>?\s*\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    # strip inline code/emphasis markers, then non-word punctuation
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> Set[str]:
    """All anchor slugs available in a markdown file."""
    slugs: Set[str] = set()
    counts: dict = {}
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        # repeated headings get -1, -2, ... suffixes on GitHub
        if slug in counts:
            counts[slug] += 1
            slugs.add(f"{slug}-{counts[slug]}")
        else:
            counts[slug] = 0
            slugs.add(slug)
    return slugs


def check_file(path: Path) -> List[str]:
    """Broken-link descriptions for one markdown file."""
    problems: List[str] = []
    text = path.read_text(encoding="utf-8")
    # ignore links inside fenced code blocks
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for target in LINK_RE.findall(text):
        if target.startswith(EXTERNAL):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {target} (missing file)")
                continue
        else:
            resolved = path.resolve()
        if anchor:
            if resolved.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into source files are line references
            if anchor not in heading_slugs(resolved):
                problems.append(
                    f"{path}: broken link -> {target} (no heading "
                    f"#{anchor} in {resolved.name})"
                )
    return problems


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_doc_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    problems: List[str] = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            problems.append(f"{name}: file not found")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"FAIL: {len(problems)} broken link(s)")
        return 1
    print(f"OK: all links in {len(argv)} file(s) resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
