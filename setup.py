"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` (and ``python setup.py develop``) keep working in
offline environments whose setuptools predates PEP 660 editable wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
