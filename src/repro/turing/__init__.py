"""Turing machine substrate: machines, encodings, and computation traces."""

from .builders import (
    ExactHaltSpec,
    MinRunSpec,
    NON_TOTAL_MACHINE_BUILDERS,
    TOTAL_MACHINE_BUILDERS,
    halt_if_marked_else_loop,
    halt_immediately,
    loop_forever,
    move_right_forever,
    prefix_reader,
    prefix_tree_witness,
    seek_blank_then_halt,
    unary_eraser,
    unary_successor,
    unary_writer,
)
from .encoding import (
    EMPTY_MACHINE_WORD,
    canonical_machine_word,
    decode_machine,
    encode_machine,
)
from .machine import (
    MOVES,
    Configuration,
    RunResult,
    Transition,
    TuringMachine,
    configurations,
    run_machine,
)
from .tape import BLANK, MARK, TAPE_ALPHABET, Tape
from .traces import (
    classify_word,
    has_at_least_traces,
    has_exactly_traces,
    holds_P,
    input_of_trace,
    is_trace_word,
    machine_of_trace,
    parse_trace,
    snapshot_of,
    trace_count,
    trace_of,
    traces_of,
)
from .words import (
    DOMAIN_ALPHABET,
    MACHINE_DELIMITER,
    SNAPSHOT_SEPARATOR,
    WordSort,
    input_words,
    is_input_word,
    is_machine_word,
    pad_to_length,
    words_over,
)

__all__ = [
    "BLANK", "MARK", "TAPE_ALPHABET", "Tape",
    "MOVES", "Transition", "TuringMachine", "Configuration", "RunResult",
    "run_machine", "configurations",
    "encode_machine", "decode_machine", "canonical_machine_word", "EMPTY_MACHINE_WORD",
    "SNAPSHOT_SEPARATOR", "MACHINE_DELIMITER", "DOMAIN_ALPHABET", "WordSort",
    "is_input_word", "is_machine_word", "input_words", "words_over", "pad_to_length",
    "snapshot_of", "trace_of", "traces_of", "trace_count",
    "has_at_least_traces", "has_exactly_traces", "holds_P", "is_trace_word",
    "classify_word", "machine_of_trace", "input_of_trace", "parse_trace",
    "halt_immediately", "loop_forever", "move_right_forever", "unary_eraser",
    "seek_blank_then_halt", "unary_successor", "unary_writer",
    "halt_if_marked_else_loop", "prefix_reader", "prefix_tree_witness",
    "ExactHaltSpec", "MinRunSpec",
    "TOTAL_MACHINE_BUILDERS", "NON_TOTAL_MACHINE_BUILDERS",
]
