"""Encoding of Turing machines as machine words.

"The Turing machines themselves can be represented as strings in the alphabet
``{1, &, *}`` with ``*`` being a delimiter (we require that every machine
contain at least one ``*``).  The details of a particular representation are
not otherwise important." — Section 3.

Our representation encodes every transition as five unary fields separated by
single blanks and terminated by a ``'*'``::

    <state> & <read> & <next state> & <write> & <move> *

* states are written in unary (state ``q`` is ``'1' * q``);
* tape symbols are coded ``'1'`` → ``11`` and ``'&'`` → ``1``;
* moves are coded ``L`` → ``1``, ``S`` → ``11``, ``R`` → ``111``.

The machine with no transitions (it halts immediately on every input) encodes
as the single delimiter ``'*'``.

Decoding is **total** on machine words: any machine word that is not a valid
encoding decodes to the empty machine.  This matches the paper's convention
that *every* string over ``{1, &, *}`` containing a delimiter *is* a machine;
our choice simply fixes which machine the ill-formed ones are.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .machine import MOVES, Transition, TuringMachine
from .tape import BLANK, MARK
from .words import MACHINE_DELIMITER, is_machine_word

__all__ = ["encode_machine", "decode_machine", "EMPTY_MACHINE_WORD", "canonical_machine_word"]

EMPTY_MACHINE_WORD = MACHINE_DELIMITER

_SYMBOL_TO_CODE = {MARK: MARK * 2, BLANK: MARK}
_CODE_TO_SYMBOL = {code: symbol for symbol, code in _SYMBOL_TO_CODE.items()}
_MOVE_TO_CODE = {"L": MARK, "S": MARK * 2, "R": MARK * 3}
_CODE_TO_MOVE = {code: move for move, code in _MOVE_TO_CODE.items()}


def encode_machine(machine: TuringMachine) -> str:
    """Encode ``machine`` as a machine word."""
    parts: List[str] = []
    for (state, symbol), transition in sorted(machine.transitions.items()):
        fields = (
            MARK * state,
            _SYMBOL_TO_CODE[symbol],
            MARK * transition.next_state,
            _SYMBOL_TO_CODE[transition.write],
            _MOVE_TO_CODE[transition.move],
        )
        parts.append(BLANK.join(fields) + MACHINE_DELIMITER)
    if not parts:
        return EMPTY_MACHINE_WORD
    return "".join(parts)


def _decode_transition(chunk: str) -> Tuple[Tuple[int, str], Transition]:
    fields = chunk.split(BLANK)
    if len(fields) != 5 or any(not f or set(f) != {MARK} for f in fields):
        raise ValueError(f"malformed transition chunk {chunk!r}")
    state_code, read_code, next_code, write_code, move_code = fields
    if read_code not in _CODE_TO_SYMBOL or write_code not in _CODE_TO_SYMBOL:
        raise ValueError(f"malformed symbol code in {chunk!r}")
    if move_code not in _CODE_TO_MOVE:
        raise ValueError(f"malformed move code in {chunk!r}")
    key = (len(state_code), _CODE_TO_SYMBOL[read_code])
    transition = Transition(
        next_state=len(next_code),
        write=_CODE_TO_SYMBOL[write_code],
        move=_CODE_TO_MOVE[move_code],
    )
    return key, transition


def decode_machine(word: str) -> TuringMachine:
    """Decode a machine word into a Turing machine.

    Raises ``ValueError`` if ``word`` is not a machine word at all.  Machine
    words that are not well-formed encodings (including duplicate keys) decode
    to the empty machine, so that decoding is total on the machine sort.
    """
    if not is_machine_word(word):
        raise ValueError(f"not a machine word: {word!r}")
    if word == EMPTY_MACHINE_WORD:
        return TuringMachine({}, name="empty")
    chunks = word.split(MACHINE_DELIMITER)
    if chunks[-1] != "":
        # Trailing garbage after the final delimiter: ill-formed encoding.
        return TuringMachine({}, name="empty")
    table: Dict[Tuple[int, str], Transition] = {}
    try:
        for chunk in chunks[:-1]:
            key, transition = _decode_transition(chunk)
            if key in table:
                raise ValueError(f"duplicate transition for {key}")
            table[key] = transition
    except ValueError:
        return TuringMachine({}, name="empty")
    return TuringMachine(table)


def canonical_machine_word(word: str) -> str:
    """The canonical encoding of the machine denoted by ``word``.

    Two machine words denote the same machine iff their canonical encodings
    are equal.
    """
    return encode_machine(decode_machine(word))
