"""Traces of partial computations, and the predicate ``P(M, w, p)``.

A *trace* of machine ``M`` in input word ``w`` is a word recording ``M``
followed by the snapshots of a partial computation of ``M`` on ``w``.  Each
snapshot consists of the internal state, the relevant tape segment, and the
head position, all separated by the snapshot separator (the paper's ``⋆``,
rendered ``'|'`` here):

    <machine word> | <state> | <tape> | <head> | <state> | <tape> | <head> | ...

* states and head offsets are written in unary (``''`` denotes 0);
* the first snapshot's tape segment is the input word ``w`` verbatim (so the
  paper's "the first snapshot always is ``1 ⋆ w ⋆``" holds and the input word
  is recoverable from the trace — the ``w(·)`` function of the Appendix);
* later snapshots record the minimal tape segment covering all non-blank
  cells and the head.

If ``M`` does not halt on ``w`` there are infinitely many traces (one per
number of snapshots); if it halts after ``s`` steps there are exactly
``s + 1`` traces.  The predicates ``D_i`` (at least ``i`` traces) and ``E_i``
(exactly ``i`` traces) of the Reach Theory are decidable by bounded
simulation and are implemented here.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from .encoding import decode_machine
from .machine import Configuration, TuringMachine
from .tape import BLANK, MARK
from .words import SNAPSHOT_SEPARATOR, WordSort, is_input_word, is_machine_word

__all__ = [
    "snapshot_of",
    "trace_of",
    "traces_of",
    "trace_count",
    "has_at_least_traces",
    "has_exactly_traces",
    "holds_P",
    "is_trace_word",
    "classify_word",
    "machine_of_trace",
    "input_of_trace",
    "parse_trace",
]

_SEP = SNAPSHOT_SEPARATOR


def _unary(n: int) -> str:
    return MARK * n


def snapshot_of(configuration: Configuration, input_word: Optional[str] = None) -> str:
    """The snapshot string of a configuration.

    If ``input_word`` is given, the snapshot is an *initial* snapshot and the
    tape segment is the input word verbatim; otherwise the minimal segment
    covering the non-blank cells and the head is used.
    """
    if input_word is not None:
        segment = input_word
        low = 0
    else:
        ext_low, ext_high = configuration.tape.extent()
        if ext_high < ext_low:
            low = configuration.head
            high = configuration.head
        else:
            low = min(ext_low, configuration.head)
            high = max(ext_high, configuration.head)
        segment = configuration.tape.window(low, high)
    head_offset = max(configuration.head - low, 0)
    return (
        _unary(configuration.state)
        + _SEP
        + segment
        + _SEP
        + _unary(head_offset)
        + _SEP
    )


def trace_of(machine_word: str, input_word: str, snapshots: int) -> Optional[str]:
    """The trace of the machine on ``input_word`` with the given number of snapshots.

    Returns ``None`` if the machine halts before producing that many
    snapshots (i.e. no such trace exists), or if ``snapshots < 1``.
    """
    if snapshots < 1:
        return None
    machine = decode_machine(machine_word)
    configuration = Configuration.initial(input_word)
    parts: List[str] = [machine_word, _SEP, snapshot_of(configuration, input_word)]
    produced = 1
    while produced < snapshots:
        if not configuration.step(machine):
            return None
        parts.append(snapshot_of(configuration))
        produced += 1
    return "".join(parts)


def traces_of(machine_word: str, input_word: str, max_snapshots: int) -> Iterator[str]:
    """Yield all traces of the machine on ``input_word`` with at most ``max_snapshots`` snapshots."""
    machine = decode_machine(machine_word)
    configuration = Configuration.initial(input_word)
    parts: List[str] = [machine_word, _SEP, snapshot_of(configuration, input_word)]
    produced = 1
    yield "".join(parts)
    while produced < max_snapshots:
        if not configuration.step(machine):
            return
        parts.append(snapshot_of(configuration))
        produced += 1
        yield "".join(parts)


def trace_count(machine_word: str, input_word: str, fuel: int) -> Optional[int]:
    """The number of traces of the machine on ``input_word``, if determined within ``fuel`` steps.

    Returns the exact (finite) count if the machine halts within ``fuel``
    steps, and ``None`` otherwise (the count is then at least ``fuel + 1`` and
    possibly infinite).
    """
    machine = decode_machine(machine_word)
    configuration = Configuration.initial(input_word)
    steps = 0
    while steps < fuel:
        if not configuration.step(machine):
            return steps + 1
        steps += 1
    if configuration.is_halted(machine):
        return steps + 1
    return None


def has_at_least_traces(machine_word: str, input_word: str, count: int) -> bool:
    """The predicate ``D_count``: the machine has at least ``count`` traces on ``input_word``.

    Always terminates: at most ``count`` simulation steps are needed.
    """
    if count <= 0:
        return True
    if count == 1:
        return True  # the initial snapshot always exists
    determined = trace_count(machine_word, input_word, count)
    if determined is None:
        return True
    return determined >= count


def has_exactly_traces(machine_word: str, input_word: str, count: int) -> bool:
    """The predicate ``E_count``: the machine has exactly ``count`` traces on ``input_word``."""
    if count <= 0:
        return False
    determined = trace_count(machine_word, input_word, count + 1)
    return determined == count


def parse_trace(word: str) -> Optional[Tuple[str, str, int]]:
    """Parse a candidate trace word.

    Returns ``(machine_word, input_word, snapshot_count)`` if the word is a
    well-formed trace of that machine on that input, and ``None`` otherwise.
    """
    if _SEP not in word:
        return None
    parts = word.split(_SEP)
    machine_word = parts[0]
    if not is_machine_word(machine_word):
        return None
    rest = parts[1:]
    # A trace ends with the separator, so the final split part must be empty,
    # and the snapshots occupy groups of three fields.
    if not rest or rest[-1] != "":
        return None
    fields = rest[:-1]
    if not fields or len(fields) % 3 != 0:
        return None
    snapshots = len(fields) // 3
    input_word = fields[1]
    if not is_input_word(input_word):
        return None
    expected = trace_of(machine_word, input_word, snapshots)
    if expected != word:
        return None
    return machine_word, input_word, snapshots


def is_trace_word(word: str) -> bool:
    """True iff ``word`` is a trace of some machine on some input word."""
    return parse_trace(word) is not None


def holds_P(machine_word: str, input_word: str, trace_word: str) -> bool:
    """The ternary domain predicate ``P(M, w, p)`` of Section 3.

    True iff ``machine_word`` is a machine word, ``input_word`` an input word,
    ``trace_word`` a trace word, and ``trace_word`` is a trace of that machine
    on that input.
    """
    if not is_machine_word(machine_word) or not is_input_word(input_word):
        return False
    parsed = parse_trace(trace_word)
    if parsed is None:
        return False
    found_machine, found_input, _snapshots = parsed
    return found_machine == machine_word and found_input == input_word


def classify_word(word: str) -> WordSort:
    """Classify a domain word into one of the four sorts M / W / T / O."""
    if is_input_word(word):
        return WordSort.INPUT
    if is_machine_word(word):
        return WordSort.MACHINE
    if is_trace_word(word):
        return WordSort.TRACE
    return WordSort.OTHER


def machine_of_trace(word: str) -> str:
    """The function ``m(·)`` of the Appendix: the machine of a trace, else the empty word."""
    parsed = parse_trace(word)
    return parsed[0] if parsed else ""


def input_of_trace(word: str) -> str:
    """The function ``w(·)`` of the Appendix: the input word of a trace, else the empty word."""
    parsed = parse_trace(word)
    return parsed[1] if parsed else ""
