"""Single-tape Turing machines over the alphabet ``{'1', '&'}``.

Machines follow the conventions of Section 3 of the paper:

* the tape alphabet is ``{'1', '&'}`` with ``'&'`` the blank;
* the input word ``w`` (a string over ``{'1', '&'}``) is written on the tape
  surrounded by blanks, and the machine starts in state ``1`` reading the
  leftmost character of ``w``;
* the machine halts when no transition is defined for the current
  (state, symbol) pair; the result of a halted computation is the leftmost
  maximal block of ``'1'`` characters (the empty word if the tape is blank).

States are positive integers; the initial state is ``1``.  Moves are ``'L'``,
``'S'`` (stay) and ``'R'``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from .tape import BLANK, MARK, TAPE_ALPHABET, Tape

__all__ = [
    "MOVES",
    "Transition",
    "TuringMachine",
    "Configuration",
    "RunResult",
    "run_machine",
]

MOVES = ("L", "S", "R")
_MOVE_OFFSETS = {"L": -1, "S": 0, "R": 1}


@dataclass(frozen=True, order=True)
class Transition:
    """The action taken from a (state, symbol) pair."""

    next_state: int
    write: str
    move: str

    def __post_init__(self) -> None:
        if self.next_state < 1:
            raise ValueError("states are positive integers")
        if self.write not in TAPE_ALPHABET:
            raise ValueError(f"invalid write symbol {self.write!r}")
        if self.move not in MOVES:
            raise ValueError(f"invalid move {self.move!r}")


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic single-tape Turing machine.

    ``transitions`` maps ``(state, symbol)`` to a :class:`Transition`.  A
    missing entry means the machine halts in that situation.
    """

    transitions: Mapping[Tuple[int, str], Transition]
    name: str = ""

    def __post_init__(self) -> None:
        table: Dict[Tuple[int, str], Transition] = {}
        for (state, symbol), transition in dict(self.transitions).items():
            if state < 1:
                raise ValueError("states are positive integers")
            if symbol not in TAPE_ALPHABET:
                raise ValueError(f"invalid read symbol {symbol!r}")
            if not isinstance(transition, Transition):
                transition = Transition(*transition)
            table[(state, symbol)] = transition
        object.__setattr__(self, "transitions", table)

    @classmethod
    def from_rules(
        cls,
        rules: Mapping[Tuple[int, str], Tuple[int, str, str]],
        name: str = "",
    ) -> "TuringMachine":
        """Build a machine from ``(state, symbol) -> (state', write, move)`` rules."""
        return cls(
            {key: Transition(*value) for key, value in rules.items()}, name=name
        )

    @property
    def states(self) -> Tuple[int, ...]:
        """All states mentioned by the transition table (at least state 1)."""
        mentioned = {1}
        for (state, _symbol), transition in self.transitions.items():
            mentioned.add(state)
            mentioned.add(transition.next_state)
        return tuple(sorted(mentioned))

    def transition_for(self, state: int, symbol: str) -> Optional[Transition]:
        """The transition applicable in ``state`` reading ``symbol``, if any."""
        return self.transitions.get((state, symbol))

    def __len__(self) -> int:
        return len(self.transitions)

    def __str__(self) -> str:
        label = self.name or "machine"
        return f"{label}({len(self.transitions)} transitions, {len(self.states)} states)"


@dataclass
class Configuration:
    """A machine configuration: state, tape contents and head position."""

    state: int
    tape: Tape
    head: int

    @classmethod
    def initial(cls, word: str) -> "Configuration":
        """The initial configuration on input ``word``.

        The input is written starting at position 0 and the head reads the
        leftmost character of the word (position 0), as in the paper.
        """
        for char in word:
            if char not in TAPE_ALPHABET:
                raise ValueError(f"invalid input character {char!r}")
        return cls(state=1, tape=Tape.from_word(word), head=0)

    def copy(self) -> "Configuration":
        """An independent copy."""
        return Configuration(self.state, self.tape.copy(), self.head)

    def is_halted(self, machine: TuringMachine) -> bool:
        """True iff ``machine`` has no applicable transition here."""
        return machine.transition_for(self.state, self.tape.read(self.head)) is None

    def step(self, machine: TuringMachine) -> bool:
        """Perform one step of ``machine`` in place.

        Returns ``True`` if a step was taken, ``False`` if the machine is
        halted in this configuration.
        """
        transition = machine.transition_for(self.state, self.tape.read(self.head))
        if transition is None:
            return False
        self.tape.write(self.head, transition.write)
        self.head += _MOVE_OFFSETS[transition.move]
        self.state = transition.next_state
        return True


@dataclass(frozen=True)
class RunResult:
    """Outcome of running a machine with a step budget."""

    halted: bool
    steps: int
    output: Optional[str]
    final: Configuration

    @property
    def exhausted(self) -> bool:
        """True iff the step budget ran out before the machine halted."""
        return not self.halted


def run_machine(machine: TuringMachine, word: str, fuel: int) -> RunResult:
    """Run ``machine`` on ``word`` for at most ``fuel`` steps.

    If the machine halts within the budget, ``output`` is the result word as
    defined in the paper; otherwise ``output`` is ``None`` and ``halted`` is
    ``False`` (the machine may or may not halt with more fuel — the halting
    problem is, after all, what the paper is about).
    """
    if fuel < 0:
        raise ValueError("fuel must be non-negative")
    configuration = Configuration.initial(word)
    steps = 0
    while steps < fuel:
        if not configuration.step(machine):
            return RunResult(True, steps, configuration.tape.result_word(), configuration)
        steps += 1
    if configuration.is_halted(machine):
        return RunResult(True, steps, configuration.tape.result_word(), configuration)
    return RunResult(False, steps, None, configuration)


def configurations(machine: TuringMachine, word: str, limit: int) -> Iterator[Configuration]:
    """Yield the first ``limit`` configurations of ``machine`` on ``word``.

    The initial configuration is always yielded first; iteration stops early
    if the machine halts.
    """
    configuration = Configuration.initial(word)
    yield configuration.copy()
    produced = 1
    while produced < limit and configuration.step(machine):
        yield configuration.copy()
        produced += 1
