"""Utilities for the word sorts of the trace domain.

The domain **T** of Section 3 is the set of all words over the alphabet
``{'1', '&', '*', '|'}`` (the paper writes the snapshot separator as a star
``⋆``; we render it as ``'|'``).  Words are partitioned into four sorts:

* **machine words** — words over ``{'1', '&', '*'}`` containing at least one
  ``'*'`` (these encode Turing machines, see :mod:`repro.turing.encoding`);
* **input words** — words over ``{'1', '&'}``, including the empty word;
* **trace words** — words containing ``'|'`` that are well-formed traces of a
  partial computation (see :mod:`repro.turing.traces`);
* **other words** — everything else.

The classification is a total recursive function, as required by the paper
("the machines, the input words, and the traces ... do not intersect").
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Iterator, Tuple

from .tape import BLANK, MARK

__all__ = [
    "SNAPSHOT_SEPARATOR",
    "MACHINE_DELIMITER",
    "DOMAIN_ALPHABET",
    "WordSort",
    "is_input_word",
    "is_machine_word",
    "input_words",
    "words_over",
    "pad_to_length",
]

SNAPSHOT_SEPARATOR = "|"
MACHINE_DELIMITER = "*"
DOMAIN_ALPHABET = (MARK, BLANK, MACHINE_DELIMITER, SNAPSHOT_SEPARATOR)


class WordSort(Enum):
    """The four sorts of domain words (predicates M, W, T, O of the Appendix)."""

    MACHINE = "machine"
    INPUT = "input"
    TRACE = "trace"
    OTHER = "other"


def is_input_word(word: str) -> bool:
    """True iff ``word`` is an input word: a word over ``{'1', '&'}``."""
    return all(char in (MARK, BLANK) for char in word)


def is_machine_word(word: str) -> bool:
    """True iff ``word`` is a machine word.

    Machine words are non-empty words over ``{'1', '&', '*'}`` containing at
    least one ``'*'`` (the paper requires every machine representation to
    contain at least one delimiter).
    """
    if not word or SNAPSHOT_SEPARATOR in word:
        return False
    if MACHINE_DELIMITER not in word:
        return False
    return all(char in (MARK, BLANK, MACHINE_DELIMITER) for char in word)


def words_over(alphabet: Tuple[str, ...], max_length: int) -> Iterator[str]:
    """All words over ``alphabet`` of length at most ``max_length``, shortest first."""
    for length in range(max_length + 1):
        for letters in itertools.product(alphabet, repeat=length):
            yield "".join(letters)


def input_words(max_length: int) -> Iterator[str]:
    """All input words of length at most ``max_length``, shortest first."""
    return words_over((MARK, BLANK), max_length)


def pad_to_length(word: str, length: int) -> str:
    """Pad an input word with blanks up to ``length`` characters."""
    if len(word) > length:
        raise ValueError("word longer than requested length")
    return word + BLANK * (length - len(word))
