"""A library of concrete Turing machines.

The paper's constructions need several specific machines:

* *total* machines (halting on every input) and *non-total* machines, for the
  Theorem 3.1 reduction (finiteness of ``P(M, c, x)`` ⟺ totality of ``M``);
* machines with known halting behaviour on specific inputs, for the
  Theorem 3.3 reduction (relative safety ⟺ halting);
* the "reads ``w`` then loops, halts if the attempt fails" machine used in the
  Appendix to show that ``B_w`` is first-order expressible from ``P``;
* the prefix-tree witness machines of Lemma A.2, which halt after exactly
  prescribed numbers of steps on prescribed input prefixes.

All builders return :class:`~repro.turing.machine.TuringMachine` objects;
``encode_machine`` from :mod:`repro.turing.encoding` turns them into machine
words of the trace domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .machine import Transition, TuringMachine
from .tape import BLANK, MARK, TAPE_ALPHABET
from .words import pad_to_length

__all__ = [
    "halt_immediately",
    "loop_forever",
    "move_right_forever",
    "unary_eraser",
    "seek_blank_then_halt",
    "unary_successor",
    "unary_writer",
    "halt_if_marked_else_loop",
    "prefix_reader",
    "StepConstraint",
    "ExactHaltSpec",
    "MinRunSpec",
    "prefix_tree_witness",
    "TOTAL_MACHINE_BUILDERS",
    "NON_TOTAL_MACHINE_BUILDERS",
]


def halt_immediately() -> TuringMachine:
    """The machine with no transitions: halts at once on every input (total)."""
    return TuringMachine({}, name="halt_immediately")


def loop_forever() -> TuringMachine:
    """A machine that loops in place forever on every input (never halts)."""
    rules = {
        (1, MARK): Transition(1, MARK, "S"),
        (1, BLANK): Transition(1, BLANK, "S"),
    }
    return TuringMachine(rules, name="loop_forever")


def move_right_forever() -> TuringMachine:
    """A machine that moves right forever without ever halting."""
    rules = {
        (1, MARK): Transition(1, MARK, "R"),
        (1, BLANK): Transition(1, BLANK, "R"),
    }
    return TuringMachine(rules, name="move_right_forever")


def unary_eraser() -> TuringMachine:
    """Erase the leading block of marks, then halt on the first blank (total)."""
    rules = {
        (1, MARK): Transition(1, BLANK, "R"),
    }
    return TuringMachine(rules, name="unary_eraser")


def seek_blank_then_halt() -> TuringMachine:
    """Move right over marks and halt at the first blank (total).

    Every input word is finite, so a blank is always reached.
    """
    rules = {
        (1, MARK): Transition(1, MARK, "R"),
    }
    return TuringMachine(rules, name="seek_blank_then_halt")


def unary_successor() -> TuringMachine:
    """Append one mark after the leading block of marks, then halt (total)."""
    rules = {
        (1, MARK): Transition(1, MARK, "R"),
        (1, BLANK): Transition(2, MARK, "S"),
    }
    return TuringMachine(rules, name="unary_successor")


def unary_writer(count: int) -> TuringMachine:
    """Write ``count`` marks to the right of the starting position, then halt (total)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rules: Dict[Tuple[int, str], Transition] = {}
    for state in range(1, count + 1):
        for symbol in TAPE_ALPHABET:
            rules[(state, symbol)] = Transition(state + 1, MARK, "R")
    return TuringMachine(rules, name=f"unary_writer_{count}")


def halt_if_marked_else_loop() -> TuringMachine:
    """Halt iff the first input character is a mark; loop forever otherwise.

    A simple non-total machine whose halting set (inputs starting with ``1``)
    is obvious, used in halting-problem corpora.
    """
    rules = {
        (1, BLANK): Transition(1, BLANK, "S"),
    }
    return TuringMachine(rules, name="halt_if_marked_else_loop")


def prefix_reader(word: str) -> TuringMachine:
    """The ``B_w`` machine of the Appendix.

    Reads the input left to right comparing against ``word``: if the whole of
    ``word`` is read successfully the machine enters an infinite loop;
    otherwise (a mismatch) it halts.  Consequently the machine has
    "many" traces exactly on the inputs that start with ``word``, which is how
    the paper expresses ``B_w`` through the trace predicate.
    """
    for char in word:
        if char not in TAPE_ALPHABET:
            raise ValueError(f"invalid character {char!r} in prefix word")
    rules: Dict[Tuple[int, str], Transition] = {}
    loop_state = len(word) + 1
    for index, char in enumerate(word):
        state = index + 1
        rules[(state, char)] = Transition(state + 1, char, "R")
    rules[(loop_state, MARK)] = Transition(loop_state, MARK, "S")
    rules[(loop_state, BLANK)] = Transition(loop_state, BLANK, "S")
    return TuringMachine(rules, name=f"prefix_reader_{word or 'empty'}")


# ---------------------------------------------------------------------------
# Lemma A.2 witness machines
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExactHaltSpec:
    """Require the machine to have exactly ``traces`` traces on ``word`` (an ``E`` constraint)."""

    word: str
    traces: int

    @property
    def steps(self) -> int:
        """The machine must halt after exactly this many steps."""
        return self.traces - 1


@dataclass(frozen=True)
class MinRunSpec:
    """Require the machine to have at least ``traces`` traces on ``word`` (a ``D`` constraint)."""

    word: str
    traces: int

    @property
    def steps(self) -> int:
        """The machine must run for at least this many steps."""
        return self.traces - 1


StepConstraint = Tuple[str, int]


def _padded_prefix(word: str, length: int) -> str:
    """The first ``length`` characters of ``word``, blank-padded if necessary."""
    if len(word) >= length:
        return word[:length]
    return word + BLANK * (length - len(word))


def prefix_tree_witness(
    exact: Sequence[ExactHaltSpec],
    at_least: Sequence[MinRunSpec] = (),
) -> TuringMachine:
    """Build the Lemma A.2 witness machine.

    The machine scans right one cell per step.  Its states form the prefix
    tree of the *halting prefixes* ``u[:traces]`` of the exact constraints; it
    halts exactly when the characters read so far complete one of those
    prefixes at the prescribed step, and otherwise keeps scanning forever.

    The ``at_least`` constraints do not influence the construction (a scanner
    that never halts spuriously satisfies them automatically whenever the
    Lemma A.2 criterion holds); they are accepted so the caller can express
    the full constraint system in one place.
    """
    del at_least  # only the exact constraints shape the machine
    halting_prefixes = {
        _padded_prefix(spec.word, spec.traces) for spec in exact if spec.traces >= 1
    }
    # Nodes of the prefix tree: every proper prefix of a halting prefix.
    nodes = {""}
    for prefix in halting_prefixes:
        for length in range(len(prefix)):
            nodes.add(prefix[:length])
    ordered_nodes = sorted(nodes, key=lambda p: (len(p), p))
    node_state = {node: index + 1 for index, node in enumerate(ordered_nodes)}
    free_state = len(ordered_nodes) + 1

    rules: Dict[Tuple[int, str], Transition] = {}
    for node in ordered_nodes:
        state = node_state[node]
        for char in TAPE_ALPHABET:
            extended = node + char
            if extended in halting_prefixes:
                continue  # halt: no transition
            if extended in node_state:
                rules[(state, char)] = Transition(node_state[extended], char, "R")
            else:
                rules[(state, char)] = Transition(free_state, char, "R")
    for char in TAPE_ALPHABET:
        rules[(free_state, char)] = Transition(free_state, char, "R")
    return TuringMachine(rules, name="prefix_tree_witness")


# Convenient corpora of machines with known totality status.
TOTAL_MACHINE_BUILDERS = (
    halt_immediately,
    unary_eraser,
    seek_blank_then_halt,
    unary_successor,
    lambda: unary_writer(1),
    lambda: unary_writer(3),
)

NON_TOTAL_MACHINE_BUILDERS = (
    loop_forever,
    move_right_forever,
    halt_if_marked_else_loop,
    lambda: prefix_reader(MARK),
    lambda: prefix_reader(MARK + BLANK + MARK),
)
