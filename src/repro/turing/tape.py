"""Sparse tape for single-tape Turing machines.

The tape alphabet is ``{'1', '&'}`` with ``'&'`` as the white-space (blank)
marker, exactly as in Section 3 of the paper.  The tape is conceptually
bi-infinite; only non-blank cells are stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["BLANK", "MARK", "TAPE_ALPHABET", "Tape"]

BLANK = "&"
MARK = "1"
TAPE_ALPHABET = (MARK, BLANK)


@dataclass
class Tape:
    """A bi-infinite tape storing only its non-blank cells."""

    cells: Dict[int, str] = field(default_factory=dict)

    @classmethod
    def from_word(cls, word: str, origin: int = 0) -> "Tape":
        """A tape containing ``word`` starting at position ``origin``.

        Blank characters in the word are simply not stored; the surrounding
        cells are blank as well, so ``from_word`` and the paper's "input word
        surrounded by infinitely many &" coincide.
        """
        cells = {}
        for offset, char in enumerate(word):
            if char not in TAPE_ALPHABET:
                raise ValueError(f"invalid tape character {char!r}")
            if char != BLANK:
                cells[origin + offset] = char
        return cls(cells)

    def read(self, position: int) -> str:
        """The character at ``position`` (blank if never written)."""
        return self.cells.get(position, BLANK)

    def write(self, position: int, char: str) -> None:
        """Write ``char`` at ``position``."""
        if char not in TAPE_ALPHABET:
            raise ValueError(f"invalid tape character {char!r}")
        if char == BLANK:
            self.cells.pop(position, None)
        else:
            self.cells[position] = char

    def copy(self) -> "Tape":
        """An independent copy of the tape."""
        return Tape(dict(self.cells))

    def is_blank(self) -> bool:
        """True iff every cell is blank."""
        return not self.cells

    def extent(self) -> Tuple[int, int]:
        """The minimal ``(low, high)`` range covering all non-blank cells.

        For a completely blank tape the empty range ``(0, -1)`` is returned.
        """
        if not self.cells:
            return (0, -1)
        positions = self.cells.keys()
        return (min(positions), max(positions))

    def window(self, low: int, high: int) -> str:
        """The contents of cells ``low..high`` inclusive as a string."""
        if high < low:
            return ""
        return "".join(self.read(p) for p in range(low, high + 1))

    def content(self) -> str:
        """The minimal non-blank segment of the tape as a string."""
        low, high = self.extent()
        return self.window(low, high)

    def result_word(self) -> str:
        """The result of a halted computation, as defined in the paper.

        If the tape is entirely blank the result is the empty word; otherwise
        it is the leftmost maximal word over ``{'1'}`` written on the tape and
        surrounded by blanks.
        """
        if self.is_blank():
            return ""
        low, high = self.extent()
        position = low
        while position <= high and self.read(position) != MARK:
            position += 1
        start = position
        while position <= high and self.read(position) == MARK:
            position += 1
        return MARK * (position - start)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tape):
            return NotImplemented
        return self.cells == other.cells

    def __str__(self) -> str:
        return self.content() or "(blank)"
