"""E8 — Section 3: the trace domain's basic structure.

"If M does not stop in w, there are infinitely many different traces of M in
w.  However, if it does stop in w, then the number of different traces is
finite."  The experiment classifies words into the four sorts, generates
traces of corpus machines on corpus inputs, verifies ``P`` against the
simulator, and records the trace counts versus the ground-truth halting
behaviour.
"""

from __future__ import annotations

from ..domains.traces_domain import TraceDomain
from ..turing.traces import holds_P, trace_count, traces_of
from ..turing.words import WordSort
from .corpora import halting_corpus, machine_corpus
from .report import ExperimentResult

__all__ = ["run"]


def run(fuel: int = 200, sample_traces: int = 5) -> ExperimentResult:
    """Generate traces and compare counts with the ground-truth halting data."""
    result = ExperimentResult(
        experiment_id="E8 (Section 3: the domain T)",
        claim="traces are finite in number exactly when the machine halts on the "
        "input; P(M, w, p) holds exactly for the generated traces; the four "
        "sorts partition the domain",
        headers=("machine", "input", "halts (ground truth)", "trace count (fuel-bounded)",
                 "P holds for generated traces", "matches claim"),
    )
    domain = TraceDomain()
    for case, word, halts in halting_corpus():
        count = trace_count(case.word, word, fuel)
        generated = list(traces_of(case.word, word, sample_traces))
        p_holds = all(holds_P(case.word, word, trace) for trace in generated)
        sorts_ok = (
            domain.classify(case.word) is WordSort.MACHINE
            and domain.classify(word) is WordSort.INPUT
            and all(domain.classify(trace) is WordSort.TRACE for trace in generated)
        )
        finite_matches = (count is not None) == halts
        matches = finite_matches and p_holds and sorts_ok
        result.add_row(case.name, repr(word), halts,
                       count if count is not None else f"> {fuel}", p_holds, matches)
    result.conclusion = (
        "trace counts, the predicate P, and the sort partition all behave as "
        "Section 3 describes"
        if result.all_rows_consistent
        else "MISMATCH with Section 3"
    )
    return result
