"""E7 — Section 2.2: the successor domain ``(N, ')``.

Three claims are exercised:

* the quantifier elimination produces quantifier-free formulas that agree
  with the original on sampled assignments (Mal'cev's procedure, as used by
  the paper);
* relative safety is decidable (Theorem 2.6) — checked against the
  ground-truth corpus;
* the extended-active-domain syntax with radius ``2^q`` is recursive and
  preserves finite queries (Theorem 2.7) — checked by answer comparison over
  a wide universe.
"""

from __future__ import annotations

import itertools

from ..domains.successor import SuccessorDomain, eliminate_successor_quantifiers
from ..logic.analysis import free_variables, quantifier_depth
from ..logic.formulas import is_quantifier_free
from ..relational.calculus import evaluate_query
from ..relational.translate import expand_database_atoms
from ..safety.effective_syntax import ExtendedActiveDomainSyntax
from ..safety.relative_safety import SuccessorRelativeSafety
from .corpora import numeric_schema, numeric_state, successor_query_corpus
from .report import ExperimentResult

__all__ = ["run"]


def run(state_values=(3, 6), sample_limit: int = 12) -> ExperimentResult:
    """Exercise QE, relative safety, and the extended-active-domain syntax."""
    result = ExperimentResult(
        experiment_id="E7 (Section 2.2, Theorems 2.6-2.7)",
        claim="(N, ') admits quantifier elimination; relative safety is decidable; "
        "the radius-2^q extended active domain yields a recursive syntax",
        headers=("check", "query", "detail", "matches claim"),
    )
    domain = SuccessorDomain()
    state = numeric_state(state_values)
    decider = SuccessorRelativeSafety(domain)
    syntax = ExtendedActiveDomainSyntax(numeric_schema())
    universe = list(range(sample_limit))

    for name, query, expected_finite in successor_query_corpus():
        pure = expand_database_atoms(query, state)
        eliminated = eliminate_successor_quantifiers(pure)
        quantifier_free = is_quantifier_free(eliminated)

        # semantic agreement of the elimination on the sampled universe
        variables = sorted(free_variables(pure), key=lambda v: v.name)
        agreement = True
        for values in itertools.product(universe, repeat=len(variables)):
            assignment = dict(zip(variables, values))
            from ..relational.calculus import evaluate_formula

            before = evaluate_formula(pure, universe, assignment, interpretation=domain)
            after = evaluate_formula(eliminated, universe, assignment, interpretation=domain)
            if before != after:
                agreement = False
                break
        result.add_row("quantifier-elimination", name,
                       f"quantifier-free={quantifier_free}, agrees on samples={agreement}",
                       quantifier_free and agreement)

        verdict = decider.decide(query, state)
        result.add_row("relative-safety (Thm 2.6)", name,
                       f"ground truth finite={expected_finite}, decided={verdict.is_finite}",
                       verdict.is_finite == expected_finite)

        restricted = syntax.restrict(query)
        recognised = syntax.contains(restricted)
        raw_answer = evaluate_query(query, universe, state=state, interpretation=domain).rows
        restricted_answer = evaluate_query(restricted, universe, state=state, interpretation=domain).rows
        if expected_finite:
            preserved = restricted_answer == raw_answer
            detail = f"recognised={recognised}, answer preserved={preserved}"
            ok = recognised and preserved
        else:
            radius = 2 ** quantifier_depth(query)
            bound = max(state_values) + radius
            bounded = all(all(v <= bound for v in row) for row in restricted_answer)
            detail = f"recognised={recognised}, restricted answer bounded={bounded}"
            ok = recognised and bounded
        result.add_row("extended-active-domain (Thm 2.7)", name, detail, ok)

    result.conclusion = (
        "quantifier elimination, relative safety, and the 2^q syntax all behave "
        "as Section 2.2 states"
        if result.all_rows_consistent
        else "MISMATCH with Section 2.2"
    )
    return result
