"""The experiment harness: one module per paper claim, shared corpora, reporting.

Each ``expNN_*`` module exposes a ``run()`` function returning an
:class:`~repro.experiments.report.ExperimentResult`; the benchmark suite under
``benchmarks/`` times these runs and prints the result tables, and
``EXPERIMENTS.md`` records the paper-claim-versus-measured-outcome summary.
"""

from . import (
    exp01_intro_queries,
    exp02_query_answering,
    exp03_fact21,
    exp04_finitization,
    exp05_extension,
    exp06_relative_safety_order,
    exp07_successor,
    exp08_trace_domain,
    exp09_lemma_a2,
    exp10_trace_qe,
    exp11_no_effective_syntax,
    exp12_relative_safety_traces,
)
from .corpora import (
    MachineCase,
    family_schema,
    family_state,
    halting_corpus,
    input_word_sample,
    machine_corpus,
    numeric_schema,
    numeric_state,
    ordered_query_corpus,
    presburger_sentences,
    successor_query_corpus,
)
from .report import ExperimentResult, render_result, render_table

ALL_EXPERIMENTS = {
    "E1": exp01_intro_queries.run,
    "E2": exp02_query_answering.run,
    "E3": exp03_fact21.run,
    "E4": exp04_finitization.run,
    "E5": exp05_extension.run,
    "E6": exp06_relative_safety_order.run,
    "E7": exp07_successor.run,
    "E8": exp08_trace_domain.run,
    "E9": exp09_lemma_a2.run,
    "E10": exp10_trace_qe.run,
    "E11": exp11_no_effective_syntax.run,
    "E12": exp12_relative_safety_traces.run,
}

__all__ = [
    "ExperimentResult", "render_result", "render_table", "ALL_EXPERIMENTS",
    "MachineCase", "machine_corpus", "halting_corpus",
    "family_schema", "family_state", "numeric_schema", "numeric_state",
    "ordered_query_corpus", "successor_query_corpus", "presburger_sentences",
    "input_word_sample",
]
