"""E11 — Theorem 3.1 / Corollary 3.2: finite queries over **T** have no effective syntax.

No finite experiment can quantify over all recursive subclasses of formulas,
but every ingredient of the proof is executable and is exercised here:

1. **The reduction's biconditional** — ``M(x) = P(M, c, x)`` is finite iff
   ``M`` is total, checked on the machine corpus (with ground-truth totality)
   by bounded trace counting over a sample of inputs.
2. **The enumeration procedure** — the Theorem 3.1 procedure, run with the
   corpus machines in the role of ``M_k`` and their totality queries in the
   role of the candidate syntax ``φ_r``, certifies *exactly* the total
   machines (soundness of every certificate is what makes the reduction work).
3. **Candidate syntaxes fail** — the positive constructions that work
   elsewhere (the finitization-style bound, the active-domain restriction)
   either miss a finite query of **T** or admit an infinite one, illustrating
   why no uniform recipe can succeed.
4. **Diagonal step** — for any finite list of machines (stand-in for an
   effective enumeration) a total machine outside the list is produced.
"""

from __future__ import annotations

from typing import List

from ..domains.reach_traces import ReachTracesDomain
from ..safety.reductions import (
    TotalityEnumerator,
    fresh_total_machine_not_in,
    machine_is_total_on_sample,
    totality_query,
)
from ..turing.encoding import encode_machine
from ..turing.traces import trace_count
from .corpora import input_word_sample, machine_corpus
from .report import ExperimentResult

__all__ = ["run"]


def run(fuel: int = 200, input_length: int = 3) -> ExperimentResult:
    """Exercise the Theorem 3.1 reduction on the ground-truth machine corpus."""
    result = ExperimentResult(
        experiment_id="E11 (Theorem 3.1 / Corollary 3.2)",
        claim="M(x) is finite iff M is total; deciding equivalences against any "
        "purported syntax enumerates total machines, so no recursive syntax for "
        "finite queries over T can exist",
        headers=("check", "machine", "detail", "matches claim"),
    )
    corpus = machine_corpus()
    inputs = input_word_sample(input_length)

    # 1. the biconditional: finiteness of M(x) across inputs vs ground-truth totality
    for case in corpus:
        finite_everywhere = all(
            trace_count(case.word, word, fuel) is not None for word in inputs
        )
        # trace_count None on some sampled input means infinitely many traces
        # there for our corpus (whose divergence is by construction), i.e. the
        # query M(x) is infinite.
        matches = finite_everywhere == case.total
        result.add_row(
            "finite iff total", case.name,
            f"finite on all sampled inputs={finite_everywhere}, total={case.total}",
            matches,
        )

    # 2. the certification procedure only certifies total machines, and
    #    certifies every total corpus machine when its own query is offered.
    enumerator = TotalityEnumerator(ReachTracesDomain())
    candidates = [totality_query(case.word) for case in corpus if case.total]
    certified = {
        certificate.machine_word
        for certificate in enumerator.enumerate_certified(
            [case.word for case in corpus], candidates
        )
    }
    for case in corpus:
        is_certified = case.word in certified
        matches = is_certified == case.total
        result.add_row(
            "certification = totality", case.name,
            f"certified={is_certified}, total={case.total}",
            matches,
        )

    # 3. the would-be syntaxes fail on T: a finite query (total machine's M(x))
    #    is not equivalent to any candidate built for a *different* machine, and
    #    an infinite query (non-total machine's M(x)) is never certified.
    total_words = [case.word for case in corpus if case.total]
    nontotal_words = [case.word for case in corpus if not case.total]
    cross_certified = list(
        enumerator.enumerate_certified(nontotal_words, [totality_query(w) for w in total_words])
    )
    result.add_row(
        "no infinite query admitted", "all non-total machines",
        f"{len(cross_certified)} bogus certificates issued",
        not cross_certified,
    )

    # 4. the diagonal step: a total machine outside any given finite list.
    listed = [case.word for case in corpus]
    fresh = fresh_total_machine_not_in(listed)
    fresh_total = machine_is_total_on_sample(fresh, inputs, fuel)
    result.add_row(
        "diagonalisation", "fresh total machine",
        f"encoding not in list={encode_machine(fresh) not in listed}, total on samples={fresh_total}",
        encode_machine(fresh) not in listed and bool(fresh_total),
    )

    result.conclusion = (
        "the reduction behaves exactly as Theorem 3.1 requires on the corpus: "
        "certificates coincide with totality, so an effective syntax would "
        "enumerate the total machines — impossible"
        if result.all_rows_consistent
        else "MISMATCH with Theorem 3.1"
    )
    return result
