"""E9 — Lemma A.2: satisfiability of D/E constraint systems on machines.

The lemma gives a purely combinatorial criterion (prefix comparisons) for the
existence of a Turing machine with prescribed minimum and exact trace counts
on prescribed input words.  The experiment generates random constraint
systems and cross-validates the criterion in both directions:

* when the criterion says *satisfiable*, the explicit prefix-tree witness
  machine is built and every constraint is verified by simulation;
* when it says *unsatisfiable*, the reported conflict pair is checked to be a
  genuine logical conflict (the two constraints cannot hold simultaneously
  for any machine, because a machine's behaviour within ``j`` steps depends
  only on the blank-padded prefix of length ``j`` of its input).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..domains.reach_traces import (
    AtLeastConstraint,
    ExactlyConstraint,
    lemma_a2_conflicts,
    lemma_a2_satisfiable,
    lemma_a2_witness,
    padded_prefix,
)
from ..turing.encoding import encode_machine
from ..turing.traces import has_at_least_traces, has_exactly_traces
from .report import ExperimentResult

__all__ = ["random_constraint_system", "run"]


def random_constraint_system(
    rng: random.Random, max_constraints: int = 3, max_index: int = 4, word_length: int = 5
) -> Tuple[List[AtLeastConstraint], List[ExactlyConstraint]]:
    """A random Lemma A.2 constraint system (words longer than every index)."""

    def random_word() -> str:
        return "".join(rng.choice("1&") for _ in range(word_length))

    at_least = [
        AtLeastConstraint(random_word(), rng.randint(1, max_index))
        for _ in range(rng.randint(0, max_constraints))
    ]
    exactly = [
        ExactlyConstraint(random_word(), rng.randint(1, max_index))
        for _ in range(rng.randint(0, max_constraints))
    ]
    return at_least, exactly


def _witness_meets(at_least, exactly) -> bool:
    machine_word = encode_machine(lemma_a2_witness(at_least, exactly))
    for constraint in at_least:
        if not has_at_least_traces(machine_word, constraint.word, constraint.count):
            return False
    for constraint in exactly:
        if not has_exactly_traces(machine_word, constraint.word, constraint.count):
            return False
    return True


def _conflict_is_genuine(conflict) -> bool:
    kind, first, second = conflict
    if kind == "impossible-count":
        return first.count < 1
    if kind == "at-least-vs-exactly":
        return first.count > second.count and padded_prefix(
            first.word, second.count
        ) == padded_prefix(second.word, second.count)
    if kind == "exactly-vs-exactly":
        return first.count > second.count and padded_prefix(
            first.word, second.count
        ) == padded_prefix(second.word, second.count)
    return False


def run(samples: int = 60, seed: int = 20260614) -> ExperimentResult:
    """Cross-validate the Lemma A.2 criterion against the witness construction."""
    result = ExperimentResult(
        experiment_id="E9 (Lemma A.2)",
        claim="a D/E constraint system has a machine solution iff no prefix "
        "conflict exists; the witness can be written as a finite-automaton-like machine",
        headers=("sample", "constraints", "criterion", "verification", "matches claim"),
    )
    rng = random.Random(seed)
    for index in range(samples):
        at_least, exactly = random_constraint_system(rng)
        satisfiable = lemma_a2_satisfiable(at_least, exactly)
        if satisfiable:
            verified = _witness_meets(at_least, exactly)
            verification = "witness machine meets all constraints" if verified else "WITNESS FAILED"
        else:
            conflicts = lemma_a2_conflicts(at_least, exactly)
            verified = bool(conflicts) and all(_conflict_is_genuine(c) for c in conflicts)
            verification = f"{len(conflicts)} genuine conflict(s)" if verified else "BOGUS CONFLICT"
        result.add_row(
            index,
            f"{len(at_least)} D / {len(exactly)} E",
            "satisfiable" if satisfiable else "unsatisfiable",
            verification,
            verified,
        )
    result.conclusion = (
        "the combinatorial criterion and the explicit witness construction agree "
        "on every sampled system"
        if result.all_rows_consistent
        else "MISMATCH with Lemma A.2"
    )
    return result
