"""E2 — the Section 1.1 query-answering algorithm over decidable domains.

"For a particular domain with decidable theory ... finite answers are
computable."  The experiment runs the enumeration algorithm (translate the
state into the query, alternate existence checks with tuple search) on finite
queries over ``(N, <)`` and compares the result against active-domain
evaluation where the latter is sound, recording the number of rows and the
agreement.
"""

from __future__ import annotations

from typing import Sequence

from ..domains.nat_order import NaturalOrderDomain
from ..engine.answers import FiniteAnswer
from ..engine.evaluator import QueryEngine
from ..logic.builders import atom, conj, eq, exists, var
from .corpora import numeric_schema, numeric_state
from .report import ExperimentResult

__all__ = ["run"]


def run(state_sizes: Sequence[int] = (2, 4, 6)) -> ExperimentResult:
    """Run the enumeration algorithm on finite (N, <) queries of growing states."""
    result = ExperimentResult(
        experiment_id="E2 (Section 1.1 algorithm)",
        claim="finite answers are computable over a decidable domain by the "
        "enumeration algorithm, and agree with direct evaluation",
        headers=("state size", "query", "rows (enumeration)", "terminated", "consistent"),
    )
    domain = NaturalOrderDomain()
    engine = QueryEngine(domain, numeric_schema())
    x, y, z = var("x"), var("y"), var("z")
    queries = [
        ("members", atom("S", x)),
        ("strict-lower-bounds", exists("y", conj(atom("S", y), atom("<", x, y)))),
        ("between-members",
         exists("y", exists("z", conj(atom("S", y), atom("S", z),
                                       atom("<", y, x), atom("<", x, z))))),
    ]
    for size in state_sizes:
        values = [3 * (i + 1) for i in range(size)]
        state = numeric_state(values)
        for name, query in queries:
            answer = engine.answer_by_enumeration(query, state, max_rows=200, max_candidates=500)
            terminated = isinstance(answer, FiniteAnswer)
            # Cross-check: every stored member is <= max value, so the expected
            # answers are directly computable.
            maximum = max(values)
            if name == "members":
                expected = {(v,) for v in values}
            elif name == "strict-lower-bounds":
                expected = {(n,) for n in range(maximum)}
            else:
                minimum = min(values)
                expected = {(n,) for n in range(minimum + 1, maximum) }
            rows = set(answer.relation.rows if terminated else answer.partial.rows)
            consistent = terminated and rows == expected
            result.add_row(size, name, len(rows), terminated, consistent)
    result.conclusion = (
        "the enumeration algorithm terminates on every finite query and returns "
        "exactly the expected answer"
        if result.all_rows_consistent
        else "MISMATCH: enumeration disagreed with the expected answers"
    )
    return result
