"""E10 — Theorem A.3 / Corollary A.4: the (Reach) Theory of Traces is decidable.

The experiment runs the quantifier elimination on a corpus of sentences of
the Theory of Traces (including sentences using the raw predicate ``P``),
checks that the output is quantifier-free, and compares the decision with the
expected truth value established by direct reasoning about the corpus
machines.
"""

from __future__ import annotations

from typing import List, Tuple

from ..domains.reach_traces import ReachTracesDomain, eliminate_reach_quantifiers
from ..logic.builders import atom, conj, const, eq, exists, forall, implies, neq, var
from ..logic.formulas import Formula, is_quantifier_free
from ..logic.terms import Const
from ..turing.builders import halt_if_marked_else_loop, halt_immediately, loop_forever, unary_eraser
from ..turing.encoding import encode_machine
from .report import ExperimentResult

__all__ = ["sentence_corpus", "run"]


def sentence_corpus() -> List[Tuple[str, Formula, bool]]:
    """(name, sentence, expected truth) triples over the Theory of Traces."""
    eraser = Const(encode_machine(unary_eraser()))
    looper = Const(encode_machine(loop_forever()))
    halter = Const(encode_machine(halt_immediately()))
    picky = Const(encode_machine(halt_if_marked_else_loop()))
    x, y, z = var("x"), var("y"), var("z")
    return [
        ("not-every-word-is-a-machine", forall("x", atom("M", x)), False),
        ("machines-exist", exists("x", atom("M", x)), True),
        ("traces-exist", exists("x", atom("T", x)), True),
        ("other-words-exist", exists("x", atom("O", x)), True),
        ("no-machine-is-a-word", exists("x", conj(atom("M", x), atom("W", x))), False),
        ("every-machine-has-a-trace-on-every-word",
         forall("y", forall("z", implies(conj(atom("M", y), atom("W", z)),
                                          exists("x", atom("P", y, z, x))))), True),
        ("eraser-trace-exists", exists("x", atom("P", eraser, const("11"), x)), True),
        ("looper-has-three-traces-somewhere",
         exists("z", conj(atom("W", z), atom("D", const(3), looper, z))), True),
        ("halter-always-one-trace",
         forall("z", implies(atom("W", z), atom("E", const(1), halter, z))), True),
        ("eraser-not-always-one-trace",
         forall("z", implies(atom("W", z), atom("E", const(1), eraser, z))), False),
        ("picky-diverges-on-blank-start",
         forall("z", implies(conj(atom("W", z), atom("B", const("&"), z)),
                             atom("D", const(4), picky, z))), True),
        ("picky-halts-fast-on-marked-start",
         forall("z", implies(conj(atom("W", z), atom("B", const("1"), z)),
                             atom("E", const(1), picky, z))), True),
        ("two-distinct-traces-of-eraser-on-1",
         exists("x", exists("y", conj(atom("P", eraser, const("1"), x),
                                       atom("P", eraser, const("1"), y),
                                       neq(x, y)))), True),
        ("three-distinct-traces-of-eraser-on-1",
         exists("x", exists("y", exists("z", conj(
             atom("P", eraser, const("1"), x),
             atom("P", eraser, const("1"), y),
             atom("P", eraser, const("1"), z),
             neq(x, y), neq(x, z), neq(y, z))))), False),
        ("machine-with-prescribed-counts",
         exists("x", conj(atom("M", x),
                          atom("E", const(2), x, const("1&&")),
                          atom("D", const(3), x, const("&11")))), True),
        ("machine-with-conflicting-counts",
         exists("x", conj(atom("E", const(2), x, const("11&")),
                          atom("E", const(3), x, const("111")))), False),
    ]


def run() -> ExperimentResult:
    """Eliminate quantifiers and decide every corpus sentence."""
    result = ExperimentResult(
        experiment_id="E10 (Theorem A.3 / Corollary A.4)",
        claim="quantifier elimination succeeds on the Reach Theory of Traces and "
        "the resulting decision procedure returns the expected truth values",
        headers=("sentence", "quantifier-free after QE", "expected", "decided", "matches"),
    )
    domain = ReachTracesDomain()
    for name, sentence, expected in sentence_corpus():
        eliminated = eliminate_reach_quantifiers(sentence, domain)
        decided = domain.decide(sentence)
        result.add_row(
            name, is_quantifier_free(eliminated), expected, decided,
            is_quantifier_free(eliminated) and decided == expected,
        )
    result.conclusion = (
        "the elimination always returns a quantifier-free formula and the "
        "decision procedure matches the expected truth values"
        if result.all_rows_consistent
        else "MISMATCH with Theorem A.3 / Corollary A.4"
    )
    return result
