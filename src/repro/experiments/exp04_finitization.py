"""E4 — Theorem 2.2: finitization is a recursive syntax for finite queries.

Two properties make the set of finitizations a recursive syntax over any
extension of ``(N, <)``:

1. the finitization ``φ^F`` of *any* formula is finite, and
2. if ``φ`` is finite then ``φ^F ≡ φ``.

The experiment checks both on the ordered-query corpus (queries with known
finiteness over a fixed state): property 1 by running the relative-safety
decider on ``φ^F``, property 2 by deciding the equivalence sentence with the
Presburger decision procedure (for the finite queries) and its failure (for
the infinite ones, where ``φ^F`` must be strictly stronger).
"""

from __future__ import annotations

from ..domains.presburger import PresburgerDomain
from ..logic.analysis import free_variables
from ..logic.builders import forall_many, iff
from ..relational.translate import expand_database_atoms
from ..safety.finitization import finitize
from ..safety.relative_safety import OrderedRelativeSafety
from .corpora import numeric_state, ordered_query_corpus
from .report import ExperimentResult

__all__ = ["run"]


def run(state_values=(2, 5, 9)) -> ExperimentResult:
    """Check the two finitization properties on the ordered-query corpus."""
    result = ExperimentResult(
        experiment_id="E4 (Theorem 2.2)",
        claim="phi^F is always finite, and phi^F is equivalent to phi exactly "
        "when phi is finite (in the given state)",
        headers=(
            "query", "finite (ground truth)", "phi^F finite",
            "phi^F equivalent to phi", "matches claim",
        ),
    )
    domain = PresburgerDomain()
    decider = OrderedRelativeSafety(domain)
    state = numeric_state(state_values)
    for name, query, expected_finite in ordered_query_corpus():
        pure = expand_database_atoms(query, state)
        variables = sorted(free_variables(pure), key=lambda v: v.name)
        finitized = finitize(pure, free_order=variables)

        finitized_verdict = decider.decide(finitized, state)
        finitized_finite = finitized_verdict.is_finite is True

        equivalence = forall_many([v.name for v in variables], iff(pure, finitized))
        equivalent = domain.decide(equivalence)

        matches = finitized_finite and (equivalent == expected_finite)
        result.add_row(name, expected_finite, finitized_finite, equivalent, matches)
    result.conclusion = (
        "finitization always yields a finite query and preserves exactly the "
        "finite queries, as Theorem 2.2 states"
        if result.all_rows_consistent
        else "MISMATCH with Theorem 2.2"
    )
    return result
