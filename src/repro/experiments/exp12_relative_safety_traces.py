"""E12 — Theorem 3.3: relative safety over **T** is undecidable.

The reduction maps a halting instance ``(M, w)`` to the relative-safety
instance "is ``M(x)`` finite in the state ``c := w``?".  The experiment checks
the biconditional on the halting corpus (machines and inputs with ground-truth
halting status), shows that a halting oracle would decide every instance
correctly, and that the fuel-bounded semi-decision procedure never errs (it
answers FINITE only on halting instances and UNKNOWN otherwise).
"""

from __future__ import annotations

from ..safety.relative_safety import RelativeSafetyUndecidable, TraceRelativeSafety
from ..safety.reductions import halting_reduction, query_answer_when_finite
from .corpora import halting_corpus
from .report import ExperimentResult

__all__ = ["run"]


def run(fuel: int = 300) -> ExperimentResult:
    """Exercise the Theorem 3.3 reduction on the ground-truth halting corpus."""
    result = ExperimentResult(
        experiment_id="E12 (Theorem 3.3)",
        claim="M(x) is finite in state c := w iff M halts on w; hence relative "
        "safety over T is undecidable (only oracle- or fuel-bounded answers exist)",
        headers=("machine", "input", "halts (ground truth)", "oracle verdict",
                 "semi-decision", "answer rows (if finite)", "matches claim"),
    )
    decider = TraceRelativeSafety()

    def ground_truth_oracle(machine_word: str, input_word: str) -> bool:
        for case, word, halts in halting_corpus():
            if case.word == machine_word and word == input_word:
                return halts
        raise KeyError("instance outside the corpus")

    undecidable_guard_raised = False
    for case, word, halts in halting_corpus():
        query, state = halting_reduction(case.word, word)
        try:
            decider.decide(query, state)
        except RelativeSafetyUndecidable:
            undecidable_guard_raised = True

        oracle_verdict = decider.decide_with_oracle(query, state, ground_truth_oracle)
        semi = decider.semi_decide(query, state, fuel=fuel)
        answer = query_answer_when_finite(case.word, word, fuel)
        rows = len(answer) if answer is not None else "-"

        oracle_matches = oracle_verdict.is_finite == halts
        semi_sound = (semi.is_finite is True and halts) or (semi.is_finite is None and not halts)
        answer_matches = (answer is not None) == halts
        matches = oracle_matches and semi_sound and answer_matches and undecidable_guard_raised
        result.add_row(case.name, repr(word), halts, oracle_verdict.status.value,
                       semi.status.value, rows, matches)

    result.conclusion = (
        "finiteness of M(x) in state c := w coincides with halting on every corpus "
        "instance; the general decider correctly refuses (undecidability), while "
        "the oracle-backed decider settles every instance"
        if result.all_rows_consistent
        else "MISMATCH with Theorem 3.3"
    )
    return result
