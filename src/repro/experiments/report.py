"""Plain-text reporting for experiments.

Every experiment module produces an :class:`ExperimentResult`; the benchmark
harness prints it with :func:`render_table`, which is also how the rows in
``EXPERIMENTS.md`` were generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["ExperimentResult", "render_table", "render_result"]


@dataclass
class ExperimentResult:
    """The outcome of one experiment.

    ``claim`` is the paper's statement being reproduced, ``headers``/``rows``
    form the result table, and ``conclusion`` summarises whether the measured
    behaviour matches the claim (set by the experiment code, verified by the
    test-suite assertions).
    """

    experiment_id: str
    claim: str
    headers: Tuple[str, ...]
    rows: List[Tuple] = field(default_factory=list)
    conclusion: str = ""

    def add_row(self, *values) -> None:
        """Append one row to the result table."""
        self.rows.append(tuple(values))

    @property
    def all_rows_consistent(self) -> bool:
        """True iff every row's final column is truthy (the per-row check)."""
        return all(bool(row[-1]) for row in self.rows)


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a list of rows as an aligned plain-text table."""
    columns = [list(map(str, column)) for column in zip(*([headers] + [list(r) for r in rows]))] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))

    lines = [format_row(headers), "-+-".join("-" * w for w in widths)]
    for row in rows:
        lines.append(format_row([str(c) for c in row]))
    return "\n".join(lines)


def render_result(result: ExperimentResult) -> str:
    """Render a full experiment result (claim, table, conclusion)."""
    parts = [
        f"== {result.experiment_id} ==",
        f"Claim: {result.claim}",
        "",
        render_table(result.headers, result.rows),
    ]
    if result.conclusion:
        parts += ["", f"Conclusion: {result.conclusion}"]
    return "\n".join(parts)
