"""E3 — Fact 2.1: a finite but not domain-independent query over ``(N, <)``.

The query defines the least element strictly greater than the whole active
domain.  Its answer always has exactly one element (finite), but that element
escapes the active domain and changes as the state changes (not
domain-independent).  The experiment evaluates the query over growing states
and records both facts.
"""

from __future__ import annotations

from typing import Sequence

from ..domains.nat_order import NaturalOrderDomain
from ..relational.active_domain import active_domain
from ..safety.domain_independence import answer_over_universe, check_domain_independence, fact_2_1_query
from .corpora import numeric_schema, numeric_state
from .report import ExperimentResult

__all__ = ["run"]


def run(state_values: Sequence[Sequence[int]] = ((1, 4), (2, 5, 9), (0, 3, 7, 11))) -> ExperimentResult:
    """Evaluate the Fact 2.1 query over several states of ``{S/1}``."""
    result = ExperimentResult(
        experiment_id="E3 (Fact 2.1)",
        claim="the 'least upper bound of the active domain' query is finite "
        "(one-element answer) but not domain-independent",
        headers=(
            "state", "expected element", "answer (wide universe)",
            "escapes active domain", "domain-independence refuted", "matches claim",
        ),
    )
    domain = NaturalOrderDomain()
    schema = numeric_schema()
    query = fact_2_1_query(schema)
    for values in state_values:
        state = numeric_state(values)
        expected = max(values) + 1
        adom = active_domain(state, query)
        universe = sorted(set(adom) | set(range(0, expected + 3)))
        answer = answer_over_universe(query, state, domain, universe)
        rows = sorted(answer.rows)
        verdict = check_domain_independence(
            query, state, domain, extra_elements=range(0, expected + 3)
        )
        escapes = all(value not in adom for (value,) in rows) and bool(rows)
        matches = (
            rows == [(expected,)]
            and escapes
            and verdict.is_finite is False  # i.e. domain independence refuted
        )
        result.add_row(
            str(sorted(values)), expected, rows, escapes,
            verdict.status.value == "infinite", matches,
        )
    result.conclusion = (
        "the answer is the single element just above the active domain in every "
        "state, and domain independence is refuted every time"
        if result.all_rows_consistent
        else "MISMATCH with Fact 2.1"
    )
    return result
