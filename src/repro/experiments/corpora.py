"""Corpora shared by the experiments: machines, formulas, and database states.

The negative results of the paper are about *all* algorithms, which no finite
experiment can exercise; what the experiments can (and do) check is that the
reductions behave exactly as the theorems state on corpora of machines whose
halting and totality status is known by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..logic.builders import atom, conj, disj, eq, exists, forall, implies, neg, neq, var
from ..logic.formulas import Formula
from ..logic.terms import Const, Var
from ..relational.schema import DatabaseSchema, RelationSchema
from ..relational.state import DatabaseState
from ..turing.builders import (
    halt_if_marked_else_loop,
    halt_immediately,
    loop_forever,
    move_right_forever,
    prefix_reader,
    seek_blank_then_halt,
    unary_eraser,
    unary_successor,
    unary_writer,
)
from ..turing.encoding import encode_machine
from ..turing.machine import TuringMachine
from ..turing.words import input_words

__all__ = [
    "MachineCase",
    "machine_corpus",
    "halting_corpus",
    "family_schema",
    "family_state",
    "numeric_schema",
    "numeric_state",
    "span_schema",
    "span_state",
    "ordered_query_corpus",
    "span_query_corpus",
    "successor_query_corpus",
    "presburger_sentences",
    "input_word_sample",
]


@dataclass(frozen=True)
class MachineCase:
    """A machine with ground-truth metadata used by the experiments."""

    name: str
    machine: TuringMachine
    total: bool
    #: inputs on which the machine is known to halt / diverge
    halts_on: Tuple[str, ...] = ()
    diverges_on: Tuple[str, ...] = ()

    @property
    def word(self) -> str:
        """The machine's encoding as a machine word."""
        return encode_machine(self.machine)


def machine_corpus() -> List[MachineCase]:
    """Machines with known totality status (ground truth by construction)."""
    return [
        MachineCase("halt_immediately", halt_immediately(), total=True,
                    halts_on=("", "1", "&", "111", "1&1")),
        MachineCase("unary_eraser", unary_eraser(), total=True,
                    halts_on=("", "1", "11", "111", "1&1")),
        MachineCase("seek_blank_then_halt", seek_blank_then_halt(), total=True,
                    halts_on=("", "1", "1111", "1&11")),
        MachineCase("unary_successor", unary_successor(), total=True,
                    halts_on=("", "1", "11", "111")),
        MachineCase("unary_writer_2", unary_writer(2), total=True,
                    halts_on=("", "1", "11&", "&&")),
        MachineCase("loop_forever", loop_forever(), total=False,
                    diverges_on=("", "1", "&", "11", "1&1")),
        MachineCase("move_right_forever", move_right_forever(), total=False,
                    diverges_on=("", "1", "111")),
        MachineCase("halt_if_marked_else_loop", halt_if_marked_else_loop(), total=False,
                    halts_on=("1", "11", "1&"), diverges_on=("", "&", "&1", "&&")),
        MachineCase("prefix_reader_1&", prefix_reader("1&"), total=False,
                    halts_on=("&", "11", "&1"), diverges_on=("1", "1&", "1&1", "1&&")),
        MachineCase("prefix_reader_11", prefix_reader("11"), total=False,
                    halts_on=("1&", "&", "&1"), diverges_on=("11", "111", "11&")),
    ]


def halting_corpus() -> List[Tuple[MachineCase, str, bool]]:
    """(machine, input word, halts?) triples with known ground truth."""
    triples: List[Tuple[MachineCase, str, bool]] = []
    for case in machine_corpus():
        for word in case.halts_on:
            triples.append((case, word, True))
        for word in case.diverges_on:
            triples.append((case, word, False))
    return triples


# ---------------------------------------------------------------------------
# Database schemas and states
# ---------------------------------------------------------------------------


def family_schema() -> DatabaseSchema:
    """The father/son schema of the paper's introduction: one binary relation ``F``."""
    return DatabaseSchema((RelationSchema("F", 2, ("father", "son")),))


def family_state(generations: int = 3, sons_per_father: int = 2, base: int = 0) -> DatabaseState:
    """A synthetic family tree over the natural numbers.

    Person ``p`` in generation ``g`` has ``sons_per_father`` sons in
    generation ``g + 1``; identifiers grow with ``base``.
    """
    rows: List[Tuple[int, int]] = []
    current = [base]
    next_id = base + 1
    for _generation in range(generations):
        offspring = []
        for father in current:
            for _ in range(sons_per_father):
                rows.append((father, next_id))
                offspring.append(next_id)
                next_id += 1
        current = offspring
    return DatabaseState(family_schema(), {"F": rows})


def numeric_schema() -> DatabaseSchema:
    """A schema with one unary relation ``S`` of numbers (used over ``(N, <)`` and ``(N, ')``)."""
    return DatabaseSchema((RelationSchema("S", 1, ("value",)),))


def numeric_state(values: Sequence[int]) -> DatabaseState:
    """A state storing the given numbers in the unary relation ``S``."""
    return DatabaseState(numeric_schema(), {"S": [(int(v),) for v in values]})


def span_schema() -> DatabaseSchema:
    """Numbers ``S/1`` plus spans ``R/2`` — the schema whose queries bound a
    variable on *both* sides from one witness row (``R(y, z) ∧ y < x ∧ x < z``),
    exercising the union-of-intervals reduction."""
    return DatabaseSchema((
        RelationSchema("S", 1, ("value",)),
        RelationSchema("R", 2, ("lo", "hi")),
    ))


def span_state(
    values: Sequence[int], spans: Sequence[Tuple[int, int]]
) -> DatabaseState:
    """A state over :func:`span_schema` with the given numbers and spans."""
    return DatabaseState(span_schema(), {
        "S": [(int(v),) for v in values],
        "R": [(int(lo), int(hi)) for lo, hi in spans],
    })


# ---------------------------------------------------------------------------
# Query corpora
# ---------------------------------------------------------------------------


def ordered_query_corpus() -> List[Tuple[str, Formula, bool]]:
    """(name, query, is_finite) triples over the schema ``{S/1}`` and domain ``(N, <)``.

    Ground truth is by construction: the finite queries bound their free
    variable by the stored data or constants; the infinite ones do not.
    """
    x, y = var("x"), var("y")
    queries: List[Tuple[str, Formula, bool]] = [
        ("members", atom("S", x), True),
        ("below-member", conj(exists("y", conj(atom("S", y), atom("<", x, y)))), True),
        ("strictly-between-members",
         exists("y", exists("z", conj(atom("S", y), atom("S", var("z")),
                                       atom("<", y, x), atom("<", x, var("z"))))), True),
        ("equal-to-seven", eq(x, 7), True),
        ("not-a-member", neg(atom("S", x)), False),
        ("above-some-member", exists("y", conj(atom("S", y), atom("<", y, x))), False),
        ("anything", eq(x, x), False),
        ("above-seven", atom("<", 7, x), False),
        ("member-or-above-member",
         disj(atom("S", x), exists("y", conj(atom("S", y), atom("<", y, x)))), False),
    ]
    return queries


def span_query_corpus() -> List[Tuple[str, Formula, bool]]:
    """(name, query, is_finite) triples over :func:`span_schema` and ``(N, <)``.

    The corpus concentrates on *both-sided* witness bounds: one stored row
    bounds the free variable below and above at once, so the per-witness
    intervals are not nested and only a union-of-intervals reduction keeps
    evaluation linear.
    """
    x, y, z = var("x"), var("y"), var("z")
    return [
        ("covered-by-span",
         exists("y", exists("z", conj(atom("R", y, z),
                                      atom("<", y, x), atom("<", x, z)))), True),
        ("covered-inclusive",
         exists("y", exists("z", conj(atom("R", y, z),
                                      atom("<=", y, x), atom("<=", x, z)))), True),
        ("pinched-member",
         exists("y", conj(atom("S", y), atom("<=", y, x), atom("<=", x, y))), True),
        ("empty-pinch",
         exists("y", conj(atom("S", y), atom("<", y, x), atom("<", x, y))), True),
        ("span-or-member",
         disj(atom("S", x),
              exists("y", exists("z", conj(atom("R", y, z),
                                           atom("<", y, x), atom("<", x, z))))), True),
        ("uncovered", neg(exists("y", exists("z", conj(atom("R", y, z),
                                                       atom("<", y, x),
                                                       atom("<", x, z))))), False),
    ]


def successor_query_corpus() -> List[Tuple[str, Formula, bool]]:
    """(name, query, is_finite) triples over the schema ``{S/1}`` and domain ``(N, ')``."""
    from ..logic.builders import apply

    x, y = var("x"), var("y")
    return [
        ("members", atom("S", x), True),
        ("successor-of-member", exists("y", conj(atom("S", y), eq(x, apply("succ", y)))), True),
        ("predecessor-of-member", exists("y", conj(atom("S", y), eq(apply("succ", x), y))), True),
        ("two-above-member",
         exists("y", conj(atom("S", y), eq(x, apply("succ", apply("succ", y))))), True),
        ("equal-to-five", eq(x, 5), True),
        ("non-member", neg(atom("S", x)), False),
        ("different-from-five", neq(x, 5), False),
        ("anything", eq(x, x), False),
        ("not-successor-of-member",
         exists("y", conj(atom("S", y), neq(x, apply("succ", y)))), False),
    ]


def presburger_sentences() -> List[Tuple[str, Formula, bool]]:
    """(name, sentence, truth) triples for exercising the Cooper decision procedure."""
    from ..logic.parser import parse_formula

    cases = [
        ("order-unbounded", "forall x. exists y. x < y", True),
        ("no-maximum", "exists y. forall x. x < y", False),
        ("even-six", "exists x. x + x = 6", True),
        ("even-seven", "exists x. x + x = 7", False),
        ("zero-least", "forall x. (0 <= x)", True),
        ("sum-monotone", "forall x. forall y. (x < x + y + 1)", True),
        ("difference", "forall x. forall y. (x < y -> exists z. x + z = y)", True),
        ("strict-between", "forall x. forall y. (x + 1 < y -> exists z. (x < z & z < y))", True),
        ("no-between-successor", "exists x. exists z. (x < z & z < x + 1)", False),
        ("divisibility", "forall x. exists y. (x = y + y | x = y + y + 1)", True),
    ]
    return [(name, parse_formula(text), truth) for name, text, truth in cases]


def input_word_sample(max_length: int = 3) -> List[str]:
    """All input words up to the given length (used by totality spot-checks)."""
    return list(input_words(max_length))
