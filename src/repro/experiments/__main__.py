"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments            # run every experiment, print its table
    python -m repro.experiments E11 E12    # run selected experiments only
    python -m repro.experiments --list     # list experiment ids and claims
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ALL_EXPERIMENTS
from .report import render_result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the experiments reproducing the paper's claims.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help="experiment ids to run (E1 .. E12); default: all",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for key in sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:])):
            print(key, "-", ALL_EXPERIMENTS[key].__module__.rsplit(".", 1)[-1])
        return 0

    selected = args.experiments or sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:]))
    unknown = [key for key in selected if key not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment id(s): {', '.join(unknown)}")

    all_consistent = True
    for key in selected:
        started = time.perf_counter()
        result = ALL_EXPERIMENTS[key]()
        elapsed = time.perf_counter() - started
        print(render_result(result))
        print(f"[{key} completed in {elapsed:.2f}s]")
        print()
        all_consistent = all_consistent and result.all_rows_consistent
    return 0 if all_consistent else 1


if __name__ == "__main__":
    sys.exit(main())
