"""E1 — the introduction's father/son queries over the equality domain.

The paper opens with the database scheme ``{F/2}`` (father/son) and the two
queries

* ``M(x) := ∃y∃z (y ≠ z ∧ F(x, y) ∧ F(x, z))`` — fathers of more than one son
  (finite, domain-independent);
* ``G(x, z) := ∃y (F(x, y) ∧ F(y, z))`` — grandfather/grandson pairs (finite);

and the unsafe examples ``¬F(x, y)`` and ``M(x) ∨ G(x, z)`` (the latter is
infinite whenever somebody has two sons, because ``z`` is unbounded).  The
experiment evaluates all four on growing family databases and records answer
sizes and the relative-safety verdicts of the equality-domain decider.
"""

from __future__ import annotations

from typing import Sequence

from ..domains.equality import EqualityDomain
from ..engine.evaluator import QueryEngine
from ..logic.builders import atom, conj, disj, exists, neg, neq, var
from ..safety.relative_safety import EqualityRelativeSafety
from .corpora import family_schema, family_state
from .report import ExperimentResult

__all__ = ["more_than_one_son_query", "grandfather_query", "run"]


def more_than_one_son_query():
    """The paper's ``M(x)``: persons with more than one son."""
    x, y, z = var("x"), var("y"), var("z")
    return exists("y", exists("z", conj(neq(y, z), atom("F", x, y), atom("F", x, z))))


def grandfather_query():
    """The paper's ``G(x, z)``: grandfather/grandson pairs."""
    x, y, z = var("x"), var("y"), var("z")
    return exists("y", conj(atom("F", x, y), atom("F", y, z)))


def unsafe_negation_query():
    """The paper's first unsafe example: ``¬F(x, y)``."""
    return neg(atom("F", var("x"), var("y")))


def unsafe_disjunction_query():
    """The paper's second unsafe example: ``M(x) ∨ G(x, z)`` (``z`` unbounded)."""
    return disj(more_than_one_son_query(), grandfather_query())


def run(generations: Sequence[int] = (1, 2, 3)) -> ExperimentResult:
    """Evaluate the four introduction queries on growing family databases."""
    result = ExperimentResult(
        experiment_id="E1 (Section 1 examples)",
        claim="M(x) and G(x, z) are finite; ~F(x, y) and M(x) | G(x, z) are unsafe "
        "(infinite whenever somebody has two sons)",
        headers=(
            "generations", "rows", "query", "answer size (active domain)",
            "relative-safety verdict", "matches claim",
        ),
    )
    domain = EqualityDomain()
    engine = QueryEngine(domain, family_schema())
    decider = EqualityRelativeSafety(domain)
    queries = [
        ("M(x)", more_than_one_son_query(), True),
        ("G(x,z)", grandfather_query(), True),
        ("~F(x,y)", unsafe_negation_query(), False),
        ("M(x)|G(x,z)", unsafe_disjunction_query(), False),
    ]
    for generation_count in generations:
        state = family_state(generations=generation_count, sons_per_father=2)
        for name, query, expected_finite in queries:
            answer = engine.answer_active_domain(query, state)
            verdict = decider.decide(query, state)
            matches = verdict.is_finite == expected_finite
            result.add_row(
                generation_count,
                state.total_rows(),
                name,
                len(answer.relation),
                verdict.status.value,
                matches,
            )
    result.conclusion = (
        "every query's relative-safety verdict matches the paper's classification"
        if result.all_rows_consistent
        else "MISMATCH: some verdict disagrees with the paper"
    )
    return result
