"""E6 — Theorem 2.5: relative safety is decidable for decidable extensions of ``(N, <)``.

The decider translates the query into a pure domain formula for the given
state and asks the Presburger decision procedure whether it is equivalent to
its finitization.  The experiment runs it over the ordered-query corpus, whose
finiteness ground truth (in the states used) is known by construction, and
over several states.
"""

from __future__ import annotations

from typing import Sequence

from ..domains.presburger import PresburgerDomain
from ..safety.relative_safety import OrderedRelativeSafety
from .corpora import numeric_state, ordered_query_corpus
from .report import ExperimentResult

__all__ = ["run"]


def run(states: Sequence[Sequence[int]] = ((2, 5), (1, 4, 9), (0, 2, 6, 11))) -> ExperimentResult:
    """Decide relative safety for every corpus query in every state."""
    result = ExperimentResult(
        experiment_id="E6 (Theorem 2.5)",
        claim="relative safety is decidable over decidable extensions of (N, <): "
        "a query is finite in a state iff it is equivalent to its finitization there",
        headers=("state", "query", "ground truth finite", "decided finite", "matches"),
    )
    decider = OrderedRelativeSafety(PresburgerDomain())
    for values in states:
        state = numeric_state(values)
        for name, query, expected_finite in ordered_query_corpus():
            verdict = decider.decide(query, state)
            decided = verdict.is_finite
            result.add_row(str(sorted(values)), name, expected_finite, decided,
                           decided == expected_finite)
    result.conclusion = (
        "the finitization-equivalence decider classifies every (query, state) "
        "pair correctly"
        if result.all_rows_consistent
        else "MISMATCH with Theorem 2.5"
    )
    return result
