"""E5 — Corollaries 2.3 and 2.4: effective syntax beyond decidable domains.

Corollary 2.3: the finitization syntax works for Presburger arithmetic and
even for full (undecidable) arithmetic — the existence of a recursive syntax
is unrelated to decidability.  Corollary 2.4: *any* domain extends to one with
a recursive syntax by adding an ordering of order type ω.

The experiment (a) exercises the finitization syntax membership test and
restriction over Presburger arithmetic, and (b) builds the ordered extension
of the pure-equality domain, checks that the added order is computable and
that finitization with respect to it turns an infinite query into a finite
one without touching finite queries.
"""

from __future__ import annotations

from ..domains.equality import EqualityDomain
from ..domains.presburger import PresburgerDomain
from ..logic.builders import atom, eq, neg, var
from ..relational.calculus import evaluate_query
from ..relational.state import DatabaseState
from ..safety.effective_syntax import FinitizationSyntax
from ..safety.extension import OrderedExtensionDomain, extension_with_effective_syntax
from .corpora import numeric_schema, numeric_state, ordered_query_corpus
from .report import ExperimentResult

__all__ = ["run"]


def run(sample_size: int = 12) -> ExperimentResult:
    """Exercise the finitization syntax and the Corollary 2.4 extension."""
    result = ExperimentResult(
        experiment_id="E5 (Corollaries 2.3 and 2.4)",
        claim="the finitization syntax is recursively recognisable and restricts "
        "every query to a finite one; adding an enumeration order gives any "
        "domain an effective syntax",
        headers=("check", "detail", "outcome", "matches claim"),
    )
    syntax = FinitizationSyntax()

    # (a) membership and restriction over Presburger arithmetic.
    for name, query, _finite in ordered_query_corpus()[:5]:
        restricted = syntax.restrict(query)
        recognised = syntax.contains(restricted)
        raw_not_member = not syntax.contains(query)
        result.add_row(
            "syntax-membership", name,
            f"restrict recognised={recognised}, raw member={not raw_not_member}",
            recognised and raw_not_member,
        )

    # (b) the ordered extension of the equality domain.
    base = EqualityDomain()
    extension, extension_syntax = extension_with_effective_syntax(base)
    order_works = (
        extension.eval_predicate("<", (0, 5))
        and not extension.eval_predicate("<", (5, 0))
        and extension.eval_predicate("<=", (3, 3))
    )
    result.add_row(
        "extension-order", "enumeration order on the equality domain is computable",
        order_works, order_works,
    )

    # An infinite query over the equality domain: x != 0.  Its finitization in
    # the extension bounds x by some element, making the answer finite over any
    # finite sample of the carrier prefix.
    x = var("x")
    state = DatabaseState(numeric_schema(), {"S": [(1,), (2,)]})
    infinite_query = neg(eq(x, 0))
    restricted = extension_syntax.restrict(infinite_query)
    universe = list(range(sample_size))
    raw_rows = evaluate_query(infinite_query, universe, state=state, interpretation=extension).rows
    restricted_rows = evaluate_query(restricted, universe, state=state, interpretation=extension).rows
    shrank = len(restricted_rows) < len(raw_rows)
    result.add_row(
        "extension-finitization",
        "the finitization of x != 0 bounds the answer on a sampled carrier prefix",
        f"raw={len(raw_rows)} rows, restricted={len(restricted_rows)} rows",
        shrank,
    )
    result.conclusion = (
        "the finitization syntax is recursive and the Corollary 2.4 extension "
        "behaves as stated"
        if result.all_rows_consistent
        else "MISMATCH with Corollaries 2.3/2.4"
    )
    return result
