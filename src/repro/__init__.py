"""repro — a reproduction of Stolboushkin & Taitslin,
"Finite Queries Do Not Have Effective Syntax" (PODS 1995 / Inf. & Comp. 1999).

The package is organised by subsystem:

* :mod:`repro.logic` — first-order logic (the relational calculus);
* :mod:`repro.relational` — schemas, states, relational algebra, active
  domains, the translation of database queries into pure domain formulas,
  and the calculus→algebra compiler with its two executors (set-at-a-time
  and vectorized NumPy columnar);
* :mod:`repro.turing` — Turing machines, their string encodings, and
  computation traces;
* :mod:`repro.domains` — the domains studied in the paper, each with a
  recursive evaluator and (when the paper proves one exists) a decision
  procedure: pure equality, ``(N, <)``, Presburger arithmetic, ``(N, ')``, and
  the trace domain **T** with its Reach Theory;
* :mod:`repro.safety` — finiteness, domain independence, finitization,
  effective syntaxes, relative safety, and the Theorem 3.1 / 3.3 reductions;
* :mod:`repro.engine` — query answering (Section 1.1 enumeration,
  active-domain evaluation, safety guards);
* :mod:`repro.experiments` — the experiment harness behind ``benchmarks/``
  and ``EXPERIMENTS.md``;
* :mod:`repro.api` — the public front door: :func:`repro.connect` opens a
  :class:`~repro.api.Session` owning the compile → analyze → plan → execute
  pipeline (see ``API.md``).
"""

from . import domains, engine, logic, relational, safety, turing
from . import api
from . import serve
from .api import Answer, Budget, Session, connect
from .domains.registry import available_domains, get_domain
from .relational.state import Delta

__version__ = "1.3.0"

__all__ = [
    "logic", "relational", "turing", "domains", "safety", "engine", "api",
    "serve", "connect", "Session", "Budget", "Answer", "Delta", "get_domain",
    "available_domains", "__version__",
]
