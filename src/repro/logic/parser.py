"""A recursive-descent parser for the concrete formula syntax.

The grammar (lowest to highest precedence)::

    formula   := iff
    iff       := implies ( '<->' implies )*
    implies   := or ( '->' or )?            (right associative)
    or        := and ( '|' and )*
    and       := unary ( '&' unary )*
    unary     := '~' unary
               | 'exists' IDENT '.' unary
               | 'forall' IDENT '.' unary
               | primary
    primary   := 'true' | 'false'
               | '(' formula ')'
               | IDENT '(' terms ')'          -- atom
               | term ( '=' | '!=' | '<' | '<=' | '>' | '>=' ) term
    term      := sum
    sum       := product ( ('+'|'-') product )*
    product   := atomterm ( '*' atomterm )*
    atomterm  := NUMBER | STRING | IDENT | IDENT '(' terms ')' | '(' term ')'

Comparison operators other than ``=`` are parsed as binary atoms with the
operator as the predicate name, e.g. ``x < y`` becomes ``Atom('<', (x, y))``,
and ``+``/``-``/``*`` become ``Apply`` terms, matching the Presburger and
ordered-naturals domains.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .formulas import (
    BOTTOM,
    TOP,
    Atom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
)
from .builders import conj, disj
from .terms import Apply, Const, Term, Var

__all__ = ["parse_formula", "parse_term", "ParseError"]


class ParseError(ValueError):
    """Raised when the input text is not a well-formed formula."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op><->|->|!=|<=|>=|[()~&|.=<>+\-*,])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"exists", "forall", "true", "false"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise ParseError(f"unexpected character {text[pos]!r} at position {pos}")
        pos = match.end()
        kind = match.lastgroup
        value = match.group()
        if kind == "ws":
            continue
        if kind == "ident" and value in _KEYWORDS:
            tokens.append(("keyword", value))
        else:
            tokens.append((kind, value))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> Tuple[str, str]:
        return self._tokens[self._index]

    def _advance(self) -> Tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> Tuple[str, str]:
        token = self._peek()
        if token[0] != kind or (value is not None and token[1] != value):
            expected = value if value is not None else kind
            raise ParseError(f"expected {expected!r}, got {token[1]!r}")
        return self._advance()

    def _accept(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._peek()
        if token[0] == kind and (value is None or token[1] == value):
            self._advance()
            return True
        return False

    # ----- formulas -------------------------------------------------------

    def parse_formula(self) -> Formula:
        formula = self._parse_iff()
        self._expect("eof")
        return formula

    def _parse_iff(self) -> Formula:
        left = self._parse_implies()
        while self._accept("op", "<->"):
            right = self._parse_implies()
            left = Iff(left, right)
        return left

    def _parse_implies(self) -> Formula:
        left = self._parse_or()
        if self._accept("op", "->"):
            right = self._parse_implies()
            return Implies(left, right)
        return left

    def _parse_or(self) -> Formula:
        parts = [self._parse_and()]
        while self._accept("op", "|"):
            parts.append(self._parse_and())
        return parts[0] if len(parts) == 1 else disj(*parts)

    def _parse_and(self) -> Formula:
        parts = [self._parse_unary()]
        while self._accept("op", "&"):
            parts.append(self._parse_unary())
        return parts[0] if len(parts) == 1 else conj(*parts)

    def _parse_unary(self) -> Formula:
        if self._accept("op", "~"):
            return Not(self._parse_unary())
        token = self._peek()
        if token == ("keyword", "exists") or token == ("keyword", "forall"):
            self._advance()
            name = self._expect("ident")[1]
            self._expect("op", ".")
            body = self._parse_unary()
            return Exists(name, body) if token[1] == "exists" else ForAll(name, body)
        return self._parse_primary()

    def _parse_primary(self) -> Formula:
        token = self._peek()
        if token == ("keyword", "true"):
            self._advance()
            return TOP
        if token == ("keyword", "false"):
            self._advance()
            return BOTTOM
        if token == ("op", "("):
            # Could be a parenthesised formula or a parenthesised term within a
            # comparison.  Try formula first, fall back to comparison.
            saved = self._index
            try:
                self._advance()
                inner = self._parse_iff()
                self._expect("op", ")")
                if self._peek()[1] in {"=", "!=", "<", "<=", ">", ">="}:
                    raise ParseError("parenthesised term, not a formula")
                return inner
            except ParseError:
                self._index = saved
                return self._parse_comparison()
        if token[0] == "ident":
            # Atom such as P(x, y), or a comparison starting with an identifier.
            saved = self._index
            name = self._advance()[1]
            if self._accept("op", "("):
                args = self._parse_term_list()
                self._expect("op", ")")
                if self._peek()[1] in {"=", "!=", "<", "<=", ">", ">=", "+", "-", "*"}:
                    # It was a function application inside a comparison.
                    self._index = saved
                    return self._parse_comparison()
                return Atom(name, tuple(args))
            self._index = saved
            return self._parse_comparison()
        return self._parse_comparison()

    def _parse_comparison(self) -> Formula:
        left = self.parse_term()
        op = self._peek()
        if op[1] not in {"=", "!=", "<", "<=", ">", ">="}:
            raise ParseError(f"expected a comparison operator, got {op[1]!r}")
        self._advance()
        right = self.parse_term()
        if op[1] == "=":
            return Equals(left, right)
        if op[1] == "!=":
            return Not(Equals(left, right))
        return Atom(op[1], (left, right))

    # ----- terms ----------------------------------------------------------

    def _parse_term_list(self) -> List[Term]:
        terms = [self.parse_term()]
        while self._accept("op", ","):
            terms.append(self.parse_term())
        return terms

    def parse_term(self) -> Term:
        return self._parse_sum()

    def _parse_sum(self) -> Term:
        left = self._parse_product()
        while True:
            if self._accept("op", "+"):
                right = self._parse_product()
                left = Apply("+", (left, right))
            elif self._accept("op", "-"):
                right = self._parse_product()
                left = Apply("-", (left, right))
            else:
                return left

    def _parse_product(self) -> Term:
        left = self._parse_atom_term()
        while self._accept("op", "*"):
            right = self._parse_atom_term()
            left = Apply("*", (left, right))
        return left

    def _parse_atom_term(self) -> Term:
        token = self._peek()
        if token[0] == "number":
            self._advance()
            return Const(int(token[1]))
        if token[0] == "string":
            self._advance()
            return Const(token[1][1:-1])
        if token[0] == "ident":
            name = self._advance()[1]
            if self._accept("op", "("):
                args = self._parse_term_list()
                self._expect("op", ")")
                return Apply(name, tuple(args))
            return Var(name)
        if self._accept("op", "("):
            inner = self.parse_term()
            self._expect("op", ")")
            return inner
        raise ParseError(f"expected a term, got {token[1]!r}")


def parse_formula(text: str) -> Formula:
    """Parse ``text`` into a formula."""
    return _Parser(_tokenize(text)).parse_formula()


def parse_term(text: str) -> Term:
    """Parse ``text`` into a term."""
    parser = _Parser(_tokenize(text))
    term = parser.parse_term()
    parser._expect("eof")
    return term
