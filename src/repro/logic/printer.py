"""Pretty-printing of formulas and terms in the concrete syntax of the parser.

``parse_formula(print_formula(f))`` produces a formula logically identical to
``f`` (modulo flattening of nested conjunctions/disjunctions, which the
builders already perform); the round-trip property is covered by
property-based tests.
"""

from __future__ import annotations

from .formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)
from .terms import Apply, Const, Term, Var

__all__ = ["print_term", "print_formula"]

_INFIX_FUNCTIONS = {"+", "-", "*"}
_INFIX_PREDICATES = {"<", "<=", ">", ">="}


def print_term(term: Term) -> str:
    """Render a term in the concrete syntax."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        if isinstance(term.value, str):
            return "'" + term.value + "'"
        return str(term.value)
    if isinstance(term, Apply):
        if term.function in _INFIX_FUNCTIONS and len(term.args) == 2:
            left, right = term.args
            return f"({print_term(left)} {term.function} {print_term(right)})"
        inner = ", ".join(print_term(a) for a in term.args)
        return f"{term.function}({inner})"
    raise TypeError(f"not a term: {term!r}")


def print_formula(formula: Formula) -> str:
    """Render a formula in the concrete syntax accepted by ``parse_formula``."""
    if isinstance(formula, Top):
        return "true"
    if isinstance(formula, Bottom):
        return "false"
    if isinstance(formula, Atom):
        if formula.predicate in _INFIX_PREDICATES and len(formula.args) == 2:
            left, right = formula.args
            return f"({print_term(left)} {formula.predicate} {print_term(right)})"
        inner = ", ".join(print_term(a) for a in formula.args)
        return f"{formula.predicate}({inner})"
    if isinstance(formula, Equals):
        return f"({print_term(formula.left)} = {print_term(formula.right)})"
    if isinstance(formula, Not):
        return f"~({print_formula(formula.body)})"
    if isinstance(formula, And):
        if not formula.conjuncts:
            return "true"
        return "(" + " & ".join(print_formula(c) for c in formula.conjuncts) + ")"
    if isinstance(formula, Or):
        if not formula.disjuncts:
            return "false"
        return "(" + " | ".join(print_formula(d) for d in formula.disjuncts) + ")"
    if isinstance(formula, Implies):
        return f"({print_formula(formula.antecedent)} -> {print_formula(formula.consequent)})"
    if isinstance(formula, Iff):
        return f"({print_formula(formula.left)} <-> {print_formula(formula.right)})"
    if isinstance(formula, Exists):
        return f"(exists {formula.var}. {print_formula(formula.body)})"
    if isinstance(formula, ForAll):
        return f"(forall {formula.var}. {print_formula(formula.body)})"
    raise TypeError(f"not a formula: {formula!r}")
