"""Formula transformations: simplification, NNF, prenex form, DNF.

Every quantifier-elimination procedure in the library follows the same recipe
used throughout the paper's Appendix: push negations inward, bring the matrix
into disjunctive normal form, distribute the existential quantifier over the
disjunction, and then eliminate it from a conjunction of literals.  The
generic parts of that recipe live here.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from .builders import conj, disj, neg
from .formulas import (
    BOTTOM,
    TOP,
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    is_quantifier_free,
)
from .substitution import fresh_variable, rename_bound_variables, substitute
from .terms import Var
from .analysis import all_variables, free_variables

__all__ = [
    "simplify",
    "to_nnf",
    "to_prenex",
    "matrix_and_prefix",
    "to_dnf",
    "dnf_clauses",
    "eliminate_quantifiers",
    "push_quantifiers_to_dnf",
]


def simplify(formula: Formula) -> Formula:
    """Bottom-up boolean simplification (constants, double negation, flattening)."""
    if isinstance(formula, (Atom, Equals, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return neg(simplify(formula.body))
    if isinstance(formula, And):
        return conj(*(simplify(c) for c in formula.conjuncts))
    if isinstance(formula, Or):
        return disj(*(simplify(d) for d in formula.disjuncts))
    if isinstance(formula, Implies):
        return disj(neg(simplify(formula.antecedent)), simplify(formula.consequent))
    if isinstance(formula, Iff):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if left == right:
            return TOP
        return conj(disj(neg(left), right), disj(neg(right), left))
    if isinstance(formula, Exists):
        body = simplify(formula.body)
        if isinstance(body, (Top, Bottom)):
            return body
        if Var(formula.var) not in free_variables(body):
            return body
        return Exists(formula.var, body)
    if isinstance(formula, ForAll):
        body = simplify(formula.body)
        if isinstance(body, (Top, Bottom)):
            return body
        if Var(formula.var) not in free_variables(body):
            return body
        return ForAll(formula.var, body)
    raise TypeError(f"not a formula: {formula!r}")


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations only on atoms, no ``->``/``<->``."""

    def nnf(f: Formula, positive: bool) -> Formula:
        if isinstance(f, (Atom, Equals)):
            return f if positive else Not(f)
        if isinstance(f, Top):
            return TOP if positive else BOTTOM
        if isinstance(f, Bottom):
            return BOTTOM if positive else TOP
        if isinstance(f, Not):
            return nnf(f.body, not positive)
        if isinstance(f, And):
            parts = tuple(nnf(c, positive) for c in f.conjuncts)
            return conj(*parts) if positive else disj(*parts)
        if isinstance(f, Or):
            parts = tuple(nnf(d, positive) for d in f.disjuncts)
            return disj(*parts) if positive else conj(*parts)
        if isinstance(f, Implies):
            if positive:
                return disj(nnf(f.antecedent, False), nnf(f.consequent, True))
            return conj(nnf(f.antecedent, True), nnf(f.consequent, False))
        if isinstance(f, Iff):
            left_pos = nnf(f.left, True)
            left_neg = nnf(f.left, False)
            right_pos = nnf(f.right, True)
            right_neg = nnf(f.right, False)
            if positive:
                return disj(conj(left_pos, right_pos), conj(left_neg, right_neg))
            return disj(conj(left_pos, right_neg), conj(left_neg, right_pos))
        if isinstance(f, Exists):
            body = nnf(f.body, positive)
            return Exists(f.var, body) if positive else ForAll(f.var, body)
        if isinstance(f, ForAll):
            body = nnf(f.body, positive)
            return ForAll(f.var, body) if positive else Exists(f.var, body)
        raise TypeError(f"not a formula: {f!r}")

    return simplify(nnf(formula, True))


def to_prenex(formula: Formula) -> Formula:
    """Prenex normal form: all quantifiers pulled to the front.

    The formula is first rectified (bound variables renamed apart) and put
    into NNF, after which quantifiers commute freely with the remaining
    connectives.
    """
    rectified = rename_bound_variables(to_nnf(formula))

    def pull(f: Formula) -> Tuple[List[Tuple[type, str]], Formula]:
        if isinstance(f, (Atom, Equals, Not, Top, Bottom)):
            return [], f
        if isinstance(f, Exists):
            prefix, matrix = pull(f.body)
            return [(Exists, f.var)] + prefix, matrix
        if isinstance(f, ForAll):
            prefix, matrix = pull(f.body)
            return [(ForAll, f.var)] + prefix, matrix
        if isinstance(f, And):
            prefixes: List[Tuple[type, str]] = []
            matrices = []
            for c in f.conjuncts:
                p, m = pull(c)
                prefixes.extend(p)
                matrices.append(m)
            return prefixes, conj(*matrices)
        if isinstance(f, Or):
            prefixes = []
            matrices = []
            for d in f.disjuncts:
                p, m = pull(d)
                prefixes.extend(p)
                matrices.append(m)
            return prefixes, disj(*matrices)
        raise TypeError(f"unexpected connective in NNF: {f!r}")

    prefix, matrix = pull(rectified)
    result = matrix
    for cls, name in reversed(prefix):
        result = cls(name, result)
    return result


def matrix_and_prefix(formula: Formula) -> Tuple[List[Tuple[type, str]], Formula]:
    """Split a prenex formula into its quantifier prefix and matrix."""
    prefix: List[Tuple[type, str]] = []
    current = formula
    while isinstance(current, (Exists, ForAll)):
        prefix.append((type(current), current.var))
        current = current.body
    return prefix, current


def to_dnf(formula: Formula) -> Formula:
    """Disjunctive normal form of a quantifier-free formula."""
    if not is_quantifier_free(formula):
        raise ValueError("to_dnf expects a quantifier-free formula")
    nnf = to_nnf(formula)

    def dnf(f: Formula) -> Formula:
        if isinstance(f, Or):
            return disj(*(dnf(d) for d in f.disjuncts))
        if isinstance(f, And):
            parts = [dnf(c) for c in f.conjuncts]
            clauses: List[List[Formula]] = [[]]
            for part in parts:
                options = part.disjuncts if isinstance(part, Or) else (part,)
                clauses = [clause + [opt] for clause in clauses for opt in options]
            return disj(*(conj(*clause) for clause in clauses))
        return f

    return simplify(dnf(nnf))


def dnf_clauses(formula: Formula) -> List[List[Formula]]:
    """The clauses of the DNF of a quantifier-free formula, as lists of literals.

    The result is a list of conjunctive clauses; each clause is a list of
    literals.  ``Top`` yields one empty clause; ``Bottom`` yields no clauses.
    """
    dnf = to_dnf(formula)
    if isinstance(dnf, Bottom):
        return []
    if isinstance(dnf, Top):
        return [[]]
    disjuncts = dnf.disjuncts if isinstance(dnf, Or) else (dnf,)
    clauses = []
    for d in disjuncts:
        literals = list(d.conjuncts) if isinstance(d, And) else [d]
        clauses.append(literals)
    return clauses


def push_quantifiers_to_dnf(var: str, body: Formula) -> List[List[Formula]]:
    """Prepare ``exists var . body`` for clause-wise elimination.

    Returns the DNF clauses of ``body``; the existential quantifier
    distributes over the disjunction, so a quantifier-elimination procedure
    only needs to handle one conjunctive clause at a time.
    """
    return dnf_clauses(body)


def eliminate_quantifiers(
    formula: Formula,
    eliminate_exists_clause: Callable[[str, List[Formula]], Formula],
) -> Formula:
    """Generic quantifier elimination driver.

    ``eliminate_exists_clause(var, literals)`` must return a quantifier-free
    formula equivalent to ``exists var . conj(*literals)`` where every literal
    is quantifier-free.  Universal quantifiers are handled by dualisation and
    inner quantifiers are eliminated first.
    """

    def walk(f: Formula) -> Formula:
        if isinstance(f, (Atom, Equals, Top, Bottom)):
            return f
        if isinstance(f, Not):
            return neg(walk(f.body))
        if isinstance(f, And):
            return conj(*(walk(c) for c in f.conjuncts))
        if isinstance(f, Or):
            return disj(*(walk(d) for d in f.disjuncts))
        if isinstance(f, Implies):
            return walk(disj(neg(f.antecedent), f.consequent))
        if isinstance(f, Iff):
            return walk(conj(Implies(f.left, f.right), Implies(f.right, f.left)))
        if isinstance(f, Exists):
            body = walk(f.body)
            if Var(f.var) not in free_variables(body):
                return simplify(body)
            clauses = dnf_clauses(body)
            eliminated = [eliminate_exists_clause(f.var, clause) for clause in clauses]
            return simplify(disj(*eliminated))
        if isinstance(f, ForAll):
            return neg(walk(Exists(f.var, neg(f.body))))
        raise TypeError(f"not a formula: {f!r}")

    return simplify(walk(simplify(formula)))
