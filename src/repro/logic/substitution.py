"""Substitution of terms for variables and constants.

Two operations matter for the paper:

* ordinary capture-avoiding substitution of terms for free variables, used by
  every quantifier-elimination procedure; and
* the ``[z/c]`` operation of Theorem 3.1 — replacing a *constant symbol* by a
  *variable* throughout a formula, which turns a database query into a pure
  domain formula with one extra free variable.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Mapping, Set

from .analysis import all_variables, free_variables
from .formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)
from .terms import Apply, Const, Term, Var

__all__ = [
    "substitute_term",
    "substitute",
    "substitute_constant",
    "replace_constant_with_variable",
    "fresh_variable",
    "fresh_variables",
    "rename_bound_variables",
]


def substitute_term(term: Term, mapping: Mapping[Var, Term]) -> Term:
    """Apply a variable-to-term substitution inside a term."""
    if isinstance(term, Var):
        return mapping.get(term, term)
    if isinstance(term, Const):
        return term
    if isinstance(term, Apply):
        return Apply(term.function, tuple(substitute_term(a, mapping) for a in term.args))
    raise TypeError(f"not a term: {term!r}")


def fresh_variable(used: Iterable[Var], stem: str = "v") -> Var:
    """A variable whose name does not clash with any variable in ``used``."""
    used_names = {v.name for v in used}
    if stem not in used_names:
        return Var(stem)
    for i in itertools.count():
        candidate = f"{stem}_{i}"
        if candidate not in used_names:
            return Var(candidate)
    raise AssertionError("unreachable")


def fresh_variables(count: int, used: Iterable[Var], stem: str = "v") -> list:
    """A list of ``count`` pairwise-distinct fresh variables."""
    used_set: Set[Var] = set(used)
    result = []
    for _ in range(count):
        v = fresh_variable(used_set, stem)
        used_set.add(v)
        result.append(v)
    return result


def substitute(formula: Formula, mapping: Mapping[Var, Term]) -> Formula:
    """Capture-avoiding substitution of terms for free variables.

    Bound variables that would capture a variable of a substituted term are
    renamed to fresh names first.
    """
    if not mapping:
        return formula
    if isinstance(formula, Atom):
        return Atom(formula.predicate, tuple(substitute_term(a, mapping) for a in formula.args))
    if isinstance(formula, Equals):
        return Equals(substitute_term(formula.left, mapping), substitute_term(formula.right, mapping))
    if isinstance(formula, Not):
        return Not(substitute(formula.body, mapping))
    if isinstance(formula, And):
        return And(tuple(substitute(c, mapping) for c in formula.conjuncts))
    if isinstance(formula, Or):
        return Or(tuple(substitute(d, mapping) for d in formula.disjuncts))
    if isinstance(formula, Implies):
        return Implies(substitute(formula.antecedent, mapping), substitute(formula.consequent, mapping))
    if isinstance(formula, Iff):
        return Iff(substitute(formula.left, mapping), substitute(formula.right, mapping))
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, (Exists, ForAll)):
        bound = Var(formula.var)
        relevant = {v: t for v, t in mapping.items() if v != bound and v in free_variables(formula)}
        if not relevant:
            return formula
        # Rename the bound variable if any substituted term mentions it.
        from .terms import term_variables

        captured = any(bound in term_variables(t) for t in relevant.values())
        body = formula.body
        if captured:
            used = set(all_variables(formula))
            for t in relevant.values():
                used |= term_variables(t)
            new_bound = fresh_variable(used, stem=formula.var)
            body = substitute(body, {bound: new_bound})
            bound = new_bound
        new_body = substitute(body, relevant)
        cls = Exists if isinstance(formula, Exists) else ForAll
        return cls(bound.name, new_body)
    raise TypeError(f"not a formula: {formula!r}")


def _map_terms(formula: Formula, term_map) -> Formula:
    """Apply a term-rewriting function to every term in ``formula``."""
    if isinstance(formula, Atom):
        return Atom(formula.predicate, tuple(term_map(a) for a in formula.args))
    if isinstance(formula, Equals):
        return Equals(term_map(formula.left), term_map(formula.right))
    if isinstance(formula, Not):
        return Not(_map_terms(formula.body, term_map))
    if isinstance(formula, And):
        return And(tuple(_map_terms(c, term_map) for c in formula.conjuncts))
    if isinstance(formula, Or):
        return Or(tuple(_map_terms(d, term_map) for d in formula.disjuncts))
    if isinstance(formula, Implies):
        return Implies(_map_terms(formula.antecedent, term_map), _map_terms(formula.consequent, term_map))
    if isinstance(formula, Iff):
        return Iff(_map_terms(formula.left, term_map), _map_terms(formula.right, term_map))
    if isinstance(formula, Exists):
        return Exists(formula.var, _map_terms(formula.body, term_map))
    if isinstance(formula, ForAll):
        return ForAll(formula.var, _map_terms(formula.body, term_map))
    if isinstance(formula, (Top, Bottom)):
        return formula
    raise TypeError(f"not a formula: {formula!r}")


def substitute_constant(formula: Formula, constant: Const, replacement: Term) -> Formula:
    """Replace every occurrence of a constant by the given term."""

    def rewrite(term: Term) -> Term:
        if isinstance(term, Const):
            return replacement if term == constant else term
        if isinstance(term, Apply):
            return Apply(term.function, tuple(rewrite(a) for a in term.args))
        return term

    return _map_terms(formula, rewrite)


def replace_constant_with_variable(formula: Formula, constant: Const, variable: Var) -> Formula:
    """The ``[z/c]`` operation of Theorem 3.1: substitute a variable for a constant.

    The caller is responsible for choosing a variable that does not already
    occur in the formula (the theorem's "without loss of generality" step);
    a ``ValueError`` is raised otherwise.
    """
    if variable in all_variables(formula):
        raise ValueError(
            f"variable {variable} already occurs in the formula; choose a fresh one"
        )
    return substitute_constant(formula, constant, variable)


def rename_bound_variables(formula: Formula, suffix: str = "_r") -> Formula:
    """Rename every bound variable apart, producing a rectified formula.

    After renaming, no variable is bound twice and no variable occurs both
    free and bound, which several transformations (prenexing in particular)
    rely on.
    """
    used: Set[Var] = set(all_variables(formula))
    counter = itertools.count()

    def rename(f: Formula, env: Dict[Var, Var]) -> Formula:
        if isinstance(f, Atom):
            return Atom(f.predicate, tuple(substitute_term(a, env) for a in f.args))
        if isinstance(f, Equals):
            return Equals(substitute_term(f.left, env), substitute_term(f.right, env))
        if isinstance(f, Not):
            return Not(rename(f.body, env))
        if isinstance(f, And):
            return And(tuple(rename(c, env) for c in f.conjuncts))
        if isinstance(f, Or):
            return Or(tuple(rename(d, env) for d in f.disjuncts))
        if isinstance(f, Implies):
            return Implies(rename(f.antecedent, env), rename(f.consequent, env))
        if isinstance(f, Iff):
            return Iff(rename(f.left, env), rename(f.right, env))
        if isinstance(f, (Top, Bottom)):
            return f
        if isinstance(f, (Exists, ForAll)):
            old = Var(f.var)
            new = Var(f"{f.var}{suffix}{next(counter)}")
            while new in used:
                new = Var(f"{f.var}{suffix}{next(counter)}")
            used.add(new)
            new_env = dict(env)
            new_env[old] = new
            cls = Exists if isinstance(f, Exists) else ForAll
            return cls(new.name, rename(f.body, new_env))
        raise TypeError(f"not a formula: {f!r}")

    return rename(formula, {})
