"""First-order logic substrate: terms, formulas, parsing, transformations.

This package implements the relational-calculus query language used by the
paper (first-order logic over a domain signature plus database relation
symbols) together with the generic machinery every quantifier-elimination
procedure in :mod:`repro.domains` relies on.
"""

from .analysis import (
    all_variables,
    atoms_of,
    bound_variables,
    constants_of,
    formula_size,
    free_variables,
    functions_of,
    predicates_of,
    quantifier_depth,
)
from .builders import (
    apply,
    atom,
    conj,
    const,
    disj,
    eq,
    exists,
    exists_many,
    forall,
    forall_many,
    iff,
    implies,
    neg,
    neq,
    term,
    var,
)
from .formulas import (
    BOTTOM,
    TOP,
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    is_atomic,
    is_literal,
    is_quantifier_free,
    walk_formulas,
)
from .parser import ParseError, parse_formula, parse_term
from .printer import print_formula, print_term
from .substitution import (
    fresh_variable,
    fresh_variables,
    rename_bound_variables,
    replace_constant_with_variable,
    substitute,
    substitute_constant,
    substitute_term,
)
from .terms import Apply, Const, Term, Var, is_ground, term_constants, term_variables
from .transform import (
    dnf_clauses,
    eliminate_quantifiers,
    matrix_and_prefix,
    simplify,
    to_dnf,
    to_nnf,
    to_prenex,
)

__all__ = [
    # terms
    "Term", "Var", "Const", "Apply", "is_ground", "term_constants", "term_variables",
    # formulas
    "Formula", "Atom", "Equals", "Not", "And", "Or", "Implies", "Iff",
    "Exists", "ForAll", "Top", "Bottom", "TOP", "BOTTOM",
    "walk_formulas", "is_quantifier_free", "is_literal", "is_atomic",
    # builders
    "term", "var", "const", "apply", "atom", "eq", "neq", "neg", "conj", "disj",
    "implies", "iff", "exists", "forall", "exists_many", "forall_many",
    # analysis
    "free_variables", "bound_variables", "all_variables", "constants_of",
    "predicates_of", "functions_of", "quantifier_depth", "formula_size", "atoms_of",
    # substitution
    "substitute", "substitute_term", "substitute_constant",
    "replace_constant_with_variable", "fresh_variable", "fresh_variables",
    "rename_bound_variables",
    # transforms
    "simplify", "to_nnf", "to_prenex", "to_dnf", "dnf_clauses",
    "matrix_and_prefix", "eliminate_quantifiers",
    # parsing / printing
    "parse_formula", "parse_term", "print_formula", "print_term", "ParseError",
]
