"""First-order terms.

Terms are the building blocks of atoms: variables, constants (which carry a
concrete domain value such as an ``int`` or ``str``), and applications of
function symbols to argument terms.

All term classes are immutable (frozen dataclasses), hashable and comparable,
so they can be used as dictionary keys and set members throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

__all__ = [
    "Term",
    "Var",
    "Const",
    "Apply",
    "is_ground",
    "term_variables",
    "term_constants",
    "term_functions",
    "term_size",
    "walk_terms",
]


@dataclass(frozen=True, order=True)
class Var:
    """A first-order variable, identified by its name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Const:
    """A constant symbol denoting a concrete domain element.

    The ``value`` is the domain element itself (an ``int`` for numeric
    domains, a ``str`` for word domains).  The paper assumes "constants for
    all the elements of the domain", which this design realises directly.
    """

    value: Union[int, str]

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


@dataclass(frozen=True)
class Apply:
    """Application of a function symbol to argument terms, e.g. ``succ(x)``."""

    function: str
    args: Tuple["Term", ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.function}({inner})"


Term = Union[Var, Const, Apply]


def walk_terms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and all of its subterms, in pre-order."""
    yield term
    if isinstance(term, Apply):
        for arg in term.args:
            yield from walk_terms(arg)


def term_variables(term: Term) -> frozenset:
    """The set of variables occurring in ``term``."""
    return frozenset(t for t in walk_terms(term) if isinstance(t, Var))


def term_constants(term: Term) -> frozenset:
    """The set of constants occurring in ``term``."""
    return frozenset(t for t in walk_terms(term) if isinstance(t, Const))


def term_functions(term: Term) -> frozenset:
    """The set of function symbol names occurring in ``term``."""
    return frozenset(t.function for t in walk_terms(term) if isinstance(t, Apply))


def is_ground(term: Term) -> bool:
    """True iff ``term`` contains no variables."""
    return not term_variables(term)


def term_size(term: Term) -> int:
    """Number of nodes in the term tree."""
    return sum(1 for _ in walk_terms(term))
