"""First-order formulas.

The formula AST follows the relational-calculus dialect used in the paper:
atoms over a mixed signature (domain predicates plus database relation
symbols), equality, the boolean connectives, and the two quantifiers.

Formulas are immutable and hashable.  ``And``/``Or`` are n-ary with a tuple of
operands; the nullary cases are the logical constants ``Top`` and ``Bottom``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

from .terms import Term

__all__ = [
    "Formula",
    "Atom",
    "Equals",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "ForAll",
    "Top",
    "Bottom",
    "TOP",
    "BOTTOM",
    "walk_formulas",
    "is_quantifier_free",
    "is_literal",
    "is_atomic",
]


@dataclass(frozen=True)
class Atom:
    """An atomic formula ``predicate(args...)``.

    The predicate name may belong to the domain signature (e.g. ``P``, ``<``)
    or to the database scheme (e.g. ``F`` for the father/son relation of the
    paper's introduction).  Which is which is determined by the schema and the
    domain, not by the AST.
    """

    predicate: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class Equals:
    """The equality atom ``left = right`` (equality is always available)."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} = {self.right})"


@dataclass(frozen=True)
class Not:
    """Negation."""

    body: "Formula"

    def __str__(self) -> str:
        return f"~{self.body}"


@dataclass(frozen=True)
class And:
    """N-ary conjunction."""

    conjuncts: Tuple["Formula", ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "conjuncts", tuple(self.conjuncts))

    def __str__(self) -> str:
        if not self.conjuncts:
            return "true"
        return "(" + " & ".join(str(c) for c in self.conjuncts) + ")"


@dataclass(frozen=True)
class Or:
    """N-ary disjunction."""

    disjuncts: Tuple["Formula", ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "disjuncts", tuple(self.disjuncts))

    def __str__(self) -> str:
        if not self.disjuncts:
            return "false"
        return "(" + " | ".join(str(d) for d in self.disjuncts) + ")"


@dataclass(frozen=True)
class Implies:
    """Implication ``antecedent -> consequent``."""

    antecedent: "Formula"
    consequent: "Formula"

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


@dataclass(frozen=True)
class Iff:
    """Biconditional ``left <-> right``."""

    left: "Formula"
    right: "Formula"

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


@dataclass(frozen=True)
class Exists:
    """Existential quantification ``exists var . body``."""

    var: str
    body: "Formula"

    def __str__(self) -> str:
        return f"(exists {self.var}. {self.body})"


@dataclass(frozen=True)
class ForAll:
    """Universal quantification ``forall var . body``."""

    var: str
    body: "Formula"

    def __str__(self) -> str:
        return f"(forall {self.var}. {self.body})"


@dataclass(frozen=True)
class Top:
    """The logical constant true."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Bottom:
    """The logical constant false."""

    def __str__(self) -> str:
        return "false"


TOP = Top()
BOTTOM = Bottom()

Formula = Union[
    Atom, Equals, Not, And, Or, Implies, Iff, Exists, ForAll, Top, Bottom
]


def walk_formulas(formula: Formula) -> Iterator[Formula]:
    """Yield ``formula`` and all of its subformulas, in pre-order."""
    yield formula
    if isinstance(formula, Not):
        yield from walk_formulas(formula.body)
    elif isinstance(formula, And):
        for c in formula.conjuncts:
            yield from walk_formulas(c)
    elif isinstance(formula, Or):
        for d in formula.disjuncts:
            yield from walk_formulas(d)
    elif isinstance(formula, Implies):
        yield from walk_formulas(formula.antecedent)
        yield from walk_formulas(formula.consequent)
    elif isinstance(formula, Iff):
        yield from walk_formulas(formula.left)
        yield from walk_formulas(formula.right)
    elif isinstance(formula, (Exists, ForAll)):
        yield from walk_formulas(formula.body)


def is_atomic(formula: Formula) -> bool:
    """True iff ``formula`` is an atom, an equality, or a logical constant."""
    return isinstance(formula, (Atom, Equals, Top, Bottom))


def is_literal(formula: Formula) -> bool:
    """True iff ``formula`` is atomic or the negation of an atomic formula."""
    if is_atomic(formula):
        return True
    return isinstance(formula, Not) and is_atomic(formula.body)


def is_quantifier_free(formula: Formula) -> bool:
    """True iff ``formula`` contains no quantifiers."""
    return not any(
        isinstance(sub, (Exists, ForAll)) for sub in walk_formulas(formula)
    )
