"""Static analysis of formulas: free variables, quantifier rank, symbols used.

These analyses drive several pieces of the paper's machinery, in particular
the quantifier-depth-dependent radius ``2^q`` of the extended active domain in
Section 2.2 and the constant-collection step of the active-domain translation
of Section 1.1.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from .formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    walk_formulas,
)
from .terms import Const, Var, term_constants, term_functions, term_variables

__all__ = [
    "free_variables",
    "bound_variables",
    "all_variables",
    "constants_of",
    "predicates_of",
    "functions_of",
    "quantifier_depth",
    "formula_size",
    "atoms_of",
]


def free_variables(formula: Formula) -> FrozenSet[Var]:
    """The set of variables occurring free in ``formula``."""
    if isinstance(formula, Atom):
        result: Set[Var] = set()
        for arg in formula.args:
            result |= term_variables(arg)
        return frozenset(result)
    if isinstance(formula, Equals):
        return term_variables(formula.left) | term_variables(formula.right)
    if isinstance(formula, Not):
        return free_variables(formula.body)
    if isinstance(formula, And):
        result = set()
        for c in formula.conjuncts:
            result |= free_variables(c)
        return frozenset(result)
    if isinstance(formula, Or):
        result = set()
        for d in formula.disjuncts:
            result |= free_variables(d)
        return frozenset(result)
    if isinstance(formula, Implies):
        return free_variables(formula.antecedent) | free_variables(formula.consequent)
    if isinstance(formula, Iff):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (Exists, ForAll)):
        return free_variables(formula.body) - {Var(formula.var)}
    if isinstance(formula, (Top, Bottom)):
        return frozenset()
    raise TypeError(f"not a formula: {formula!r}")


def bound_variables(formula: Formula) -> FrozenSet[Var]:
    """The set of variables bound by some quantifier in ``formula``."""
    return frozenset(
        Var(sub.var)
        for sub in walk_formulas(formula)
        if isinstance(sub, (Exists, ForAll))
    )


def all_variables(formula: Formula) -> FrozenSet[Var]:
    """All variables occurring in ``formula``, free or bound."""
    result: Set[Var] = set(bound_variables(formula))
    for sub in walk_formulas(formula):
        if isinstance(sub, Atom):
            for arg in sub.args:
                result |= term_variables(arg)
        elif isinstance(sub, Equals):
            result |= term_variables(sub.left) | term_variables(sub.right)
    return frozenset(result)


def constants_of(formula: Formula) -> FrozenSet[Const]:
    """All constants occurring in ``formula``."""
    result: Set[Const] = set()
    for sub in walk_formulas(formula):
        if isinstance(sub, Atom):
            for arg in sub.args:
                result |= term_constants(arg)
        elif isinstance(sub, Equals):
            result |= term_constants(sub.left) | term_constants(sub.right)
    return frozenset(result)


def predicates_of(formula: Formula) -> FrozenSet[str]:
    """All predicate symbols (excluding equality) occurring in ``formula``."""
    return frozenset(
        sub.predicate for sub in walk_formulas(formula) if isinstance(sub, Atom)
    )


def functions_of(formula: Formula) -> FrozenSet[str]:
    """All function symbols occurring in ``formula``."""
    result: Set[str] = set()
    for sub in walk_formulas(formula):
        if isinstance(sub, Atom):
            for arg in sub.args:
                result |= term_functions(arg)
        elif isinstance(sub, Equals):
            result |= term_functions(sub.left) | term_functions(sub.right)
    return frozenset(result)


def atoms_of(formula: Formula) -> tuple:
    """All atomic subformulas (atoms and equalities), in pre-order."""
    return tuple(
        sub for sub in walk_formulas(formula) if isinstance(sub, (Atom, Equals))
    )


def quantifier_depth(formula: Formula) -> int:
    """The quantifier rank (maximum nesting depth of quantifiers)."""
    if isinstance(formula, (Atom, Equals, Top, Bottom)):
        return 0
    if isinstance(formula, Not):
        return quantifier_depth(formula.body)
    if isinstance(formula, And):
        return max((quantifier_depth(c) for c in formula.conjuncts), default=0)
    if isinstance(formula, Or):
        return max((quantifier_depth(d) for d in formula.disjuncts), default=0)
    if isinstance(formula, Implies):
        return max(
            quantifier_depth(formula.antecedent),
            quantifier_depth(formula.consequent),
        )
    if isinstance(formula, Iff):
        return max(quantifier_depth(formula.left), quantifier_depth(formula.right))
    if isinstance(formula, (Exists, ForAll)):
        return 1 + quantifier_depth(formula.body)
    raise TypeError(f"not a formula: {formula!r}")


def formula_size(formula: Formula) -> int:
    """Number of formula nodes (atoms, connectives, quantifiers)."""
    return sum(1 for _ in walk_formulas(formula))
