"""Ergonomic constructors for formulas and terms.

These helpers flatten nested conjunctions/disjunctions, absorb the logical
constants, and accept bare strings/ints where a term is expected, which keeps
examples and tests close to the notation of the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from .formulas import (
    BOTTOM,
    TOP,
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)
from .terms import Apply, Const, Term, Var

__all__ = [
    "term",
    "var",
    "const",
    "apply",
    "atom",
    "eq",
    "neq",
    "neg",
    "conj",
    "disj",
    "implies",
    "iff",
    "exists",
    "forall",
    "exists_many",
    "forall_many",
]

TermLike = Union[Term, str, int]


def term(value: TermLike) -> Term:
    """Coerce a Python value into a term.

    Strings are treated as variable names when they are valid identifiers that
    start with a lowercase letter, otherwise as string constants; integers are
    integer constants; terms pass through unchanged.
    """
    if isinstance(value, (Var, Const, Apply)):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not terms")
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        if value.isidentifier():
            return Var(value)
        return Const(value)
    raise TypeError(f"cannot coerce {value!r} into a term")


def var(name: str) -> Var:
    """A variable with the given name."""
    return Var(name)


def const(value: Union[int, str]) -> Const:
    """A constant with the given domain value."""
    return Const(value)


def apply(function: str, *args: TermLike) -> Apply:
    """Apply a function symbol to argument terms."""
    return Apply(function, tuple(term(a) for a in args))


def atom(predicate: str, *args: TermLike) -> Atom:
    """An atomic formula over the given predicate symbol."""
    return Atom(predicate, tuple(term(a) for a in args))


def eq(left: TermLike, right: TermLike) -> Equals:
    """The equality atom."""
    return Equals(term(left), term(right))


def neq(left: TermLike, right: TermLike) -> Not:
    """The negated equality atom."""
    return Not(eq(left, right))


def neg(formula: Formula) -> Formula:
    """Negation, with double negations and constants absorbed."""
    if isinstance(formula, Not):
        return formula.body
    if isinstance(formula, Top):
        return BOTTOM
    if isinstance(formula, Bottom):
        return TOP
    return Not(formula)


def _flatten(parts: Iterable[Formula], cls) -> list:
    flat: list = []
    for part in parts:
        if isinstance(part, cls):
            attr = part.conjuncts if cls is And else part.disjuncts
            flat.extend(attr)
        else:
            flat.append(part)
    return flat


def conj(*parts: Formula) -> Formula:
    """Conjunction of the given formulas, flattened, deduplicated and simplified."""
    flat = _flatten(parts, And)
    flat = [p for p in flat if not isinstance(p, Top)]
    if any(isinstance(p, Bottom) for p in flat):
        return BOTTOM
    flat = list(dict.fromkeys(flat))
    if not flat:
        return TOP
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*parts: Formula) -> Formula:
    """Disjunction of the given formulas, flattened, deduplicated and simplified."""
    flat = _flatten(parts, Or)
    flat = [p for p in flat if not isinstance(p, Bottom)]
    if any(isinstance(p, Top) for p in flat):
        return TOP
    flat = list(dict.fromkeys(flat))
    if not flat:
        return BOTTOM
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """Implication."""
    return Implies(antecedent, consequent)


def iff(left: Formula, right: Formula) -> Formula:
    """Biconditional."""
    return Iff(left, right)


def exists(variable: Union[str, Var], body: Formula) -> Exists:
    """Existential quantification."""
    name = variable.name if isinstance(variable, Var) else variable
    return Exists(name, body)


def forall(variable: Union[str, Var], body: Formula) -> ForAll:
    """Universal quantification."""
    name = variable.name if isinstance(variable, Var) else variable
    return ForAll(name, body)


def exists_many(variables: Sequence[Union[str, Var]], body: Formula) -> Formula:
    """Existential quantification over a block of variables."""
    result = body
    for variable in reversed(list(variables)):
        result = exists(variable, result)
    return result


def forall_many(variables: Sequence[Union[str, Var]], body: Formula) -> Formula:
    """Universal quantification over a block of variables."""
    result = body
    for variable in reversed(list(variables)):
        result = forall(variable, result)
    return result
