"""The unified session API: compile → analyze → plan → execute.

:func:`repro.connect` opens a :class:`Session` against a named domain (via
the :mod:`repro.domains.registry`) and an optional database schema.  The
session owns the whole pipeline the paper describes:

1. **compile** — accept a query as calculus text (parsed by
   :mod:`repro.logic.parser`) or as a :class:`~repro.logic.formulas.Formula`,
   and check its symbols against the schema and the domain signature;
2. **analyze** — free variables, database predicates, theory decidability,
   and (when the domain has a decidable relative-safety problem) a safety
   verdict in the given state;
3. **plan** — pick an evaluation strategy as a first-class
   :class:`~repro.engine.plans.Plan` with an ``explain()``;
4. **execute** — run the plan under a :class:`~repro.engine.budget.Budget`
   and return an :class:`~repro.engine.answers.Answer`.

Example::

    import repro

    session = repro.connect(domain="presburger")
    answer = session.query("x < 5", budget=repro.Budget(max_rows=10))
    assert answer.rows() == ((0,), (1,), (2,), (3,), (4,))
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import used only by annotations
    from ..relational.columnar import EncodeCacheInfo

from ..domains.base import Domain
from ..domains.registry import DomainEntry, get_entry
from ..engine.answer_cache import AnswerCache, AnswerCacheInfo
from ..engine.answers import Answer
from ..engine.budget import Budget, CancelToken
from ..engine.plan_cache import PlanCache, PlanCacheInfo
from ..engine.plans import GuardedPlan, Plan, decide_or_semidecide
from ..logic.analysis import free_variables, functions_of, predicates_of
from ..logic.formulas import Atom, Formula, walk_formulas
from ..logic.parser import ParseError, parse_formula
from ..relational.schema import DatabaseSchema
from ..relational.state import DatabaseState, Delta, Element
from ..safety.classes import SafetyVerdict
from ..safety.effective_syntax import EffectiveSyntax
from ..safety.relative_safety import RelativeSafetyDecider
from .planner import Planner

__all__ = ["Session", "SessionError", "QueryAnalysis", "QueryResult", "connect"]

QueryLike = Union[str, Formula]


class SessionError(ValueError):
    """Raised when a query cannot be compiled against the session."""


@dataclass(frozen=True)
class QueryAnalysis:
    """What the session learned about a query before executing it."""

    formula: Formula
    free_variables: Tuple[str, ...]
    database_predicates: Tuple[str, ...]
    theory_decidable: bool
    verdict: Optional[SafetyVerdict] = None

    def explain(self) -> str:
        parts = [
            f"free variables: {', '.join(self.free_variables) or '(none — a sentence)'}",
            f"database predicates: {', '.join(self.database_predicates) or '(pure domain formula)'}",
            "domain theory decidable" if self.theory_decidable else "domain theory undecidable",
        ]
        if self.verdict is not None:
            parts.append(
                f"relative safety: {self.verdict.status.value} "
                f"via {self.verdict.method}"
            )
        return "; ".join(parts)


@dataclass(frozen=True)
class QueryResult:
    """A full pipeline trace: formula, plan, answer, and guard decisions."""

    formula: Formula
    plan: Plan
    answer: Answer
    admitted_query: Formula
    verdict: Optional[SafetyVerdict] = None
    rewritten: bool = False
    elapsed: float = 0.0

    def explain(self) -> str:
        lines = [self.plan.explain(), self.answer.explain()]
        if self.rewritten:
            lines.append("the query was rewritten into the effective syntax")
        if self.verdict is not None:
            lines.append(
                f"safety verdict: {self.verdict.status.value} via {self.verdict.method}"
            )
        lines.append(f"elapsed: {self.elapsed * 1000:.2f} ms")
        return "\n".join(lines)


class Session:
    """A connection to one domain and schema, owning the query pipeline."""

    def __init__(
        self,
        domain: Union[str, Domain],
        schema: Optional[DatabaseSchema] = None,
        *,
        budget: Optional[Budget] = None,
        syntax: Optional[EffectiveSyntax] = None,
        safety: Optional[RelativeSafetyDecider] = None,
        guard: bool = True,
        restrict: bool = False,
        plan_cache_size: int = 128,
        plan_cache: Optional[PlanCache] = None,
        incremental: bool = False,
        answer_cache_size: int = 32,
    ):
        entry: Optional[DomainEntry] = None
        if isinstance(domain, str):
            entry = get_entry(domain)
            self._domain = entry.factory()
        else:
            self._domain = domain
            try:
                entry = get_entry(domain.name)
            except LookupError:
                entry = None
        self._schema = schema if schema is not None else DatabaseSchema()
        self._budget = budget if budget is not None else Budget()

        # The relative-safety guard is installed by default (it only ever
        # *rejects* provably infinite answers); the effective-syntax rewrite
        # changes query semantics, so it is opt-in via ``restrict=True`` or an
        # explicit ``syntax=``.
        if not guard and (restrict or syntax is not None or safety is not None):
            raise SessionError(
                "guard=False disables all guards, which contradicts the "
                "explicit restrict/syntax/safety arguments"
            )
        if guard:
            if safety is None and entry is not None and entry.safety_factory is not None:
                safety = entry.safety_factory(self._domain)
            if syntax is None and restrict:
                if entry is None or entry.syntax_factory is None:
                    raise SessionError(
                        f"restrict=True, but domain {self._domain.name!r} has no "
                        "registered effective syntax (for the trace domain this "
                        "is Theorem 3.1: none exists)"
                    )
                syntax = entry.syntax_factory(self._schema)
        self._safety = safety if guard else None
        self._syntax = syntax if guard else None
        # The plan cache makes repeated queries skip calculus→algebra
        # compilation; it is keyed by (formula, schema fingerprint, domain,
        # substrate), so states may vary freely between calls and the two
        # algebra substrates never collide.  Passing ``plan_cache=`` shares
        # one (thread-safe) cache across sessions — the serving layer uses
        # this so every session warms every other's plans.
        self._plan_cache = (
            plan_cache if plan_cache is not None else PlanCache(maxsize=plan_cache_size)
        )
        # Incremental sessions additionally keep an *answer* cache: whole
        # materialised executions, patched by ΔQ rules when the state mutates
        # through :meth:`apply_delta` (or ``DatabaseState.apply`` directly).
        # Unlike the plan cache it is never shared across sessions — the
        # materialisations are mutated in place during maintenance.
        self._answer_cache = AnswerCache(maxsize=answer_cache_size) if incremental else None
        self._planner = Planner(
            self._domain,
            syntax=self._syntax,
            safety=self._safety,
            finite_is_domain_independent=(
                entry is not None and entry.finite_implies_domain_independent
            ),
            supports_compiled_algebra=(
                entry is not None and entry.supports_compiled_algebra
            ),
            supports_vectorized=(
                entry is not None and entry.supports_vectorized
            ),
            supports_parallel=(
                entry is not None and entry.supports_parallel
            ),
            finite_carrier=(
                entry is not None and entry.finite_carrier
            ),
            plan_cache=self._plan_cache,
            answer_cache=self._answer_cache,
        )

    # -- introspection -------------------------------------------------------

    @property
    def domain(self) -> Domain:
        """The domain queries are interpreted over."""
        return self._domain

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema states must conform to."""
        return self._schema

    @property
    def budget(self) -> Budget:
        """The session's default budget (overridable per query)."""
        return self._budget

    @property
    def safety(self) -> Optional[RelativeSafetyDecider]:
        """The relative-safety decider guarding this session, if any."""
        return self._safety

    @property
    def syntax(self) -> Optional[EffectiveSyntax]:
        """The effective syntax guarding this session, if any."""
        return self._syntax

    @property
    def plan_cache(self) -> PlanCache:
        """The session's LRU cache of compiled algebra plans."""
        return self._plan_cache

    def plan_cache_info(self) -> PlanCacheInfo:
        """Hit/miss/eviction counters for the compiled-plan cache."""
        return self._plan_cache.info()

    @property
    def incremental(self) -> bool:
        """True iff the session maintains answers incrementally across deltas."""
        return self._answer_cache is not None

    @property
    def answer_cache(self) -> Optional[AnswerCache]:
        """The session's answer cache (``None`` unless ``incremental=True``)."""
        return self._answer_cache

    def answer_cache_info(self) -> AnswerCacheInfo:
        """Hit/maintained/recompute counters for the answer cache."""
        if self._answer_cache is None:
            raise SessionError(
                "the session was not opened with incremental=True, so it has "
                "no answer cache"
            )
        return self._answer_cache.info()

    def encode_cache_info(self) -> "EncodeCacheInfo":
        """Counters for the per-state columnar encode cache.

        Unlike the plan cache, the encode cache is process-wide (encoded
        columns are a property of the state, not of the session), so these
        counters aggregate across sessions.
        """
        from ..relational.columnar import encode_cache_info

        return encode_cache_info()

    def __repr__(self) -> str:
        return (
            f"Session(domain={self._domain.name!r}, "
            f"schema={len(self._schema)} relation(s), "
            f"guarded={self._planner.guarded})"
        )

    # -- pipeline stage 1: compile ------------------------------------------

    def compile(self, query: QueryLike) -> Formula:
        """Parse (if text) and validate a query against schema and signature."""
        if isinstance(query, str):
            try:
                formula = parse_formula(query)
            except ParseError as error:
                raise SessionError(f"cannot parse query {query!r}: {error}") from error
        elif isinstance(query, Formula):
            formula = query
        else:
            raise SessionError(
                f"expected calculus text or a Formula, got {type(query).__name__}"
            )
        known_predicates = set(self._schema.names) | set(self._domain.signature.predicates)
        unknown = sorted(predicates_of(formula) - known_predicates)
        if unknown:
            raise SessionError(
                f"unknown predicate(s) {', '.join(map(repr, unknown))}; known "
                f"relations: {sorted(self._schema.names)!r}, domain predicates: "
                f"{sorted(self._domain.signature.predicates)!r}"
            )
        unknown_functions = sorted(
            functions_of(formula) - set(self._domain.signature.functions)
        )
        if unknown_functions:
            raise SessionError(
                f"unknown function(s) {', '.join(map(repr, unknown_functions))}; "
                f"domain functions: {sorted(self._domain.signature.functions)!r}"
            )
        for sub in walk_formulas(formula):
            if not isinstance(sub, Atom):
                continue
            if sub.predicate in self._schema:
                expected = self._schema.arity(sub.predicate)
            elif self._domain.signature.has_predicate(sub.predicate):
                expected = self._domain.signature.predicate_arity(sub.predicate)
            else:
                continue
            if len(sub.args) != expected:
                raise SessionError(
                    f"predicate {sub.predicate!r} expects {expected} "
                    f"argument(s), got {len(sub.args)} in {sub}"
                )
        return formula

    # -- pipeline stage 2: analyze ------------------------------------------

    def analyze(
        self,
        query: QueryLike,
        state: Optional[DatabaseState] = None,
    ) -> QueryAnalysis:
        """Static + state-dependent facts about the query."""
        formula = self.compile(query)
        state = state if state is not None else self.state()
        verdict: Optional[SafetyVerdict] = None
        if self._safety is not None:
            verdict = decide_or_semidecide(
                self._safety, formula, state, self._budget.fuel
            )
        schema_names = set(self._schema.names)
        return QueryAnalysis(
            formula=formula,
            free_variables=tuple(sorted(v.name for v in free_variables(formula))),
            database_predicates=tuple(
                sorted(predicates_of(formula) & schema_names)
            ),
            theory_decidable=self._domain.has_decidable_theory,
            verdict=verdict,
        )

    # -- pipeline stage 3: plan ---------------------------------------------

    def plan(
        self,
        strategy: str = "auto",
        budget: Optional[Budget] = None,
        extra_elements: Iterable[Element] = (),
        cancel_token: Optional[CancelToken] = None,
    ) -> Plan:
        """The plan the session would execute for ``strategy``.

        ``cancel_token`` makes the execution cooperatively cancellable from
        another thread (used by the serving layer's ``/cancel``).
        """
        return self._planner.plan(
            strategy,
            budget if budget is not None else self._budget,
            extra_elements,
            cancel_token,
        )

    # -- pipeline stage 4: execute ------------------------------------------

    def execute(
        self,
        plan: Plan,
        query: QueryLike,
        state: Optional[DatabaseState] = None,
    ) -> Answer:
        """Run an already-built plan on a query."""
        formula = self.compile(query)
        state = state if state is not None else self.state()
        return plan.execute(formula, state)

    # -- the whole pipeline --------------------------------------------------

    def run(
        self,
        query: QueryLike,
        state: Optional[DatabaseState] = None,
        *,
        strategy: str = "auto",
        budget: Optional[Budget] = None,
        extra_elements: Iterable[Element] = (),
        cancel_token: Optional[CancelToken] = None,
    ) -> QueryResult:
        """Compile, plan, and execute; return the full pipeline trace."""
        formula = self.compile(query)
        state = state if state is not None else self.state()
        plan = self.plan(strategy, budget, extra_elements, cancel_token)
        started = time.perf_counter()
        if isinstance(plan, GuardedPlan):
            outcome = plan.run(formula, state)
            answer = outcome.answer
            admitted = outcome.admitted_query
            verdict = outcome.verdict
            rewritten = outcome.rewritten
        else:
            answer = plan.execute(formula, state)
            admitted = formula
            verdict = None
            rewritten = False
        elapsed = time.perf_counter() - started
        return QueryResult(
            formula=formula,
            plan=plan,
            answer=answer,
            admitted_query=admitted,
            verdict=verdict,
            rewritten=rewritten,
            elapsed=elapsed,
        )

    def query(
        self,
        query: QueryLike,
        state: Optional[DatabaseState] = None,
        *,
        strategy: str = "auto",
        budget: Optional[Budget] = None,
        extra_elements: Iterable[Element] = (),
    ) -> Answer:
        """Answer a query (text or formula); the one-call front door."""
        return self.run(
            query,
            state,
            strategy=strategy,
            budget=budget,
            extra_elements=extra_elements,
        ).answer

    def explain(
        self,
        query: QueryLike,
        state: Optional[DatabaseState] = None,
        strategy: str = "auto",
    ) -> str:
        """A human-readable account of how the session would answer ``query``."""
        analysis = self.analyze(query, state)
        plan = self.plan(strategy)
        return analysis.explain() + "\n" + plan.explain()

    # -- conveniences --------------------------------------------------------

    def state(self, relations=None, **named_relations) -> DatabaseState:
        """Build a database state over the session's schema.

        Accepts a mapping or keyword arguments of ``name -> rows``.
        """
        table = dict(relations or {})
        table.update(named_relations)
        return DatabaseState(self._schema, table)

    def apply_delta(self, state: DatabaseState, delta: Delta) -> DatabaseState:
        """Mutate ``state`` by ``delta``; return the new state.

        A convenience over :meth:`DatabaseState.apply
        <repro.relational.state.DatabaseState.apply>` that additionally keeps
        the process-wide columnar encode cache coherent: on an insert-only
        delta the old state's encoded columns are *grown* in place of being
        re-encoded (appended codes, shared untouched arrays); any delete
        invalidates them.  The returned state carries the lineage the
        session's answer cache walks to re-answer at O(Δ) cost.
        """
        new_state = state.apply(delta)
        if new_state is state:
            return state
        from ..relational.columnar import encode_cache

        effective = new_state.lineage[-1][1] if new_state.lineage else delta
        encode_cache().migrate(state, new_state, effective)
        return new_state


def connect(
    domain: Union[str, Domain] = "equality",
    schema: Optional[DatabaseSchema] = None,
    **options,
) -> Session:
    """Open a :class:`Session` against a registered domain.

    ``domain`` is a registry name or alias (``"eq"``, ``"nat<"``,
    ``"presburger"``, ``"succ"``, ``"traces"``, ...) or a
    :class:`~repro.domains.base.Domain` instance; ``schema`` defaults to the
    empty schema (pure domain queries).  Keyword options are forwarded to
    :class:`Session` (``budget``, ``syntax``, ``safety``, ``guard``,
    ``restrict``, ``plan_cache_size``, ``plan_cache``, ``incremental``,
    ``answer_cache_size``).
    """
    return Session(domain, schema, **options)
