"""The planner: strategy selection as a first-class, explainable object.

Given a domain (plus optional guards), :class:`Planner` turns a strategy
request into a concrete :class:`~repro.engine.plans.Plan`:

* ``"auto"`` — the default pipeline: guard with the domain's relative-safety
  decider / effective syntax when the registry provides one, then evaluate by
  enumeration (decidable theory) or active-domain semantics (otherwise);
* ``"guarded"`` — like ``"auto"`` but fails loudly when no guard exists
  (e.g. the trace domain, Theorems 3.1/3.3);
* ``"active-domain"`` / ``"compiled"`` / ``"vectorized"`` / ``"parallel"`` /
  ``"enumeration"`` — force a bare strategy, bypassing the guards (useful for
  studying budget exhaustion on infinite queries, or for benchmarking one
  execution substrate directly).

Every returned plan answers :meth:`~repro.engine.plans.Plan.explain` with the
reason for the choice.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..domains.base import Domain
from ..engine.answer_cache import AnswerCache
from ..engine.budget import Budget, CancelToken
from ..engine.plan_cache import PlanCache
from ..engine.plans import STRATEGIES, Plan, plan_for_strategy
from ..relational.state import Element
from ..safety.effective_syntax import EffectiveSyntax
from ..safety.relative_safety import RelativeSafetyDecider

__all__ = ["Planner", "PlanError"]


class PlanError(ValueError):
    """Raised when no plan can satisfy the requested strategy."""


class Planner:
    """Choose evaluation plans for one domain / guard configuration."""

    def __init__(
        self,
        domain: Domain,
        *,
        syntax: Optional[EffectiveSyntax] = None,
        safety: Optional[RelativeSafetyDecider] = None,
        finite_is_domain_independent: bool = False,
        supports_compiled_algebra: bool = False,
        supports_vectorized: bool = False,
        supports_parallel: bool = False,
        finite_carrier: bool = False,
        plan_cache: Optional[PlanCache] = None,
        answer_cache: Optional[AnswerCache] = None,
    ):
        self._domain = domain
        self._syntax = syntax
        self._safety = safety
        self._finite_is_di = finite_is_domain_independent
        self._compilable = supports_compiled_algebra
        self._vectorizable = supports_vectorized
        self._parallelizable = supports_parallel
        self._finite_carrier = finite_carrier
        self._plan_cache = plan_cache
        self._answer_cache = answer_cache

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def guarded(self) -> bool:
        """True iff the planner has at least one guard to install."""
        return self._syntax is not None or self._safety is not None

    def plan(
        self,
        strategy: str = "auto",
        budget: Optional[Budget] = None,
        extra_elements: Iterable[Element] = (),
        cancel_token: Optional[CancelToken] = None,
    ) -> Plan:
        """The plan for ``strategy``, with its :meth:`explain` filled in.

        ``cancel_token`` makes the returned plan's execution cooperatively
        cancellable from another thread (the serving layer's ``/cancel``).
        """
        if strategy not in STRATEGIES:
            raise PlanError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if strategy == "guarded" and not self.guarded:
            raise PlanError(
                f"strategy 'guarded' requested, but domain {self._domain.name!r} "
                "has no registered relative-safety decider or effective syntax "
                "(for the trace domain this is Theorems 3.1/3.3: neither exists)"
            )
        if (
            strategy in ("auto", "guarded")
            and self._safety is not None
            and (self._finite_is_di or self._finite_carrier)
        ):
            # Section 2: over this domain every finite query is
            # domain-independent, so once the guard certifies finiteness,
            # active-domain evaluation is exact — and far cheaper than the
            # Section 1.1 enumeration.  The same ladder is exact for domains
            # whose *carrier* is finite: the active domain is extended with
            # the whole carrier, so evaluation ranges over every element the
            # semantics ranges over.  When the domain additionally supports
            # the compiled relational-algebra backend, prefer it: same
            # active-domain answer, computed set-at-a-time — when its
            # carriers also encode to int64 columns, prefer the vectorized
            # columnar executor over the set executor — and when the registry
            # additionally flags the domain parallel-capable, put the
            # morsel-parallel substrate on top of the ladder (its size
            # heuristic keeps small states single-threaded).
            from ..engine.plans import (
                ActiveDomainPlan,
                CompiledAlgebraPlan,
                GuardedPlan,
                IncrementalAlgebraPlan,
                ParallelAlgebraPlan,
                VectorizedAlgebraPlan,
            )

            extras = tuple(extra_elements)
            if self._finite_carrier:
                extras += tuple(self._domain.carrier_elements())
                basis = (
                    f"the carrier of {self._domain.name!r} is finite, so "
                    "evaluation over the whole carrier is exact"
                )
            else:
                basis = (
                    f"over {self._domain.name!r} every finite query is "
                    "domain-independent"
                )
            if self._answer_cache is not None and self._compilable:
                # An incremental session: answers are materialised once and
                # patched by ΔQ rules across mutations, so answer reuse beats
                # even the columnar substrates on the repeat-query path.
                inner: Plan = IncrementalAlgebraPlan(
                    domain=self._domain,
                    budget=budget if budget is not None else Budget(),
                    extra_elements=extras,
                    cache=self._plan_cache,
                    answer_cache=self._answer_cache,
                    reason=f"{basis} and the session opted into incremental "
                    "evaluation, so guard-certified answers are materialised "
                    "once and patched by ΔQ rules when the state mutates",
                    cancel_token=cancel_token,
                )
            elif self._compilable and self._vectorizable and self._parallelizable:
                inner = ParallelAlgebraPlan(
                    domain=self._domain,
                    budget=budget if budget is not None else Budget(),
                    extra_elements=extras,
                    cache=self._plan_cache,
                    reason=f"{basis} and carriers encode to int64 columns, "
                    "so guard-certified queries are answered by the vectorized "
                    "columnar executor, morsel-parallel on large states "
                    "(exact, set semantics)",
                    cancel_token=cancel_token,
                )
            elif self._compilable and self._vectorizable:
                inner = VectorizedAlgebraPlan(
                    domain=self._domain,
                    budget=budget if budget is not None else Budget(),
                    extra_elements=extras,
                    cache=self._plan_cache,
                    reason=f"{basis} and carriers encode to int64 columns, "
                    "so guard-certified queries are answered by the vectorized "
                    "NumPy columnar executor (exact, set semantics)",
                    cancel_token=cancel_token,
                )
            elif self._compilable:
                inner = CompiledAlgebraPlan(
                    domain=self._domain,
                    budget=budget if budget is not None else Budget(),
                    extra_elements=extras,
                    cache=self._plan_cache,
                    reason=f"{basis}, so guard-certified queries are "
                    "answered by the compiled relational-algebra backend "
                    "(set-at-a-time, exact)",
                    cancel_token=cancel_token,
                )
            else:
                inner = ActiveDomainPlan(
                    domain=self._domain,
                    budget=budget if budget is not None else Budget(),
                    extra_elements=extras,
                    reason=f"{basis}, so active-domain evaluation is exact for "
                    "guard-certified finite queries",
                    cancel_token=cancel_token,
                )
            return GuardedPlan(
                inner=inner,
                syntax=self._syntax,
                safety=self._safety,
                reason=f"relative safety over {self._domain.name!r} is decidable "
                f"via {self._safety.name!r}, so provably infinite answers are "
                "rejected before evaluation",
            )
        return plan_for_strategy(
            strategy,
            self._domain,
            budget,
            extra_elements=tuple(extra_elements),
            syntax=self._syntax,
            safety=self._safety,
            cache=self._plan_cache,
            answer_cache=self._answer_cache,
            cancel_token=cancel_token,
        )
