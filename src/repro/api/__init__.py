"""The public front door: ``repro.connect`` and the Session pipeline.

See ``API.md`` at the repository root for the full guide.  In short::

    import repro

    session = repro.connect(domain="presburger")
    answer = session.query("x < 5", budget=repro.Budget(max_rows=10))

The subsystem re-exports everything a caller needs: the session itself, the
budget, the plan hierarchy, the answer hierarchy, and the domain registry.
"""

from ..domains.registry import (
    DomainEntry,
    UnknownDomainError,
    available_domains,
    domain_aliases,
    get_domain,
    get_entry,
    register_domain,
    resolve_domain_name,
)
from ..engine.answer_cache import AnswerCache, AnswerCacheInfo
from ..engine.answers import Answer, FiniteAnswer, InfiniteAnswer, UnknownAnswer
from ..engine.budget import Budget, BudgetClock
from ..engine.plan_cache import PlanCache, PlanCacheInfo
from ..engine.plans import (
    STRATEGIES,
    ActiveDomainPlan,
    CompiledAlgebraPlan,
    EnumerationPlan,
    GuardedOutcome,
    GuardedPlan,
    IncrementalAlgebraPlan,
    Plan,
)
from ..relational.state import Delta
from .planner import PlanError, Planner
from .session import QueryAnalysis, QueryResult, Session, SessionError, connect

__all__ = [
    "connect", "Session", "SessionError", "QueryAnalysis", "QueryResult",
    "Planner", "PlanError",
    "Budget", "BudgetClock",
    "Plan", "ActiveDomainPlan", "CompiledAlgebraPlan", "EnumerationPlan",
    "IncrementalAlgebraPlan",
    "GuardedPlan", "GuardedOutcome", "STRATEGIES",
    "PlanCache", "PlanCacheInfo",
    "AnswerCache", "AnswerCacheInfo", "Delta",
    "Answer", "FiniteAnswer", "InfiniteAnswer", "UnknownAnswer",
    "DomainEntry", "UnknownDomainError", "register_domain", "get_domain",
    "get_entry", "resolve_domain_name", "available_domains", "domain_aliases",
]
