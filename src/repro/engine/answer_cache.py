"""Per-session answer caching with delta maintenance.

The :class:`AnswerCache` stores one :class:`~repro.relational.delta.MaterializedPlan`
per (query, schema, domain, extras) key — the whole operator-by-operator row
materialisation of the last execution, stamped with the state fingerprint it
answers for.  A repeat query then costs:

* **fingerprint unchanged** — O(answer): the cached root rows are returned;
* **state mutated through** :meth:`~repro.relational.state.DatabaseState.apply`
  — O(Δ · answer): the state's lineage is walked back to the cached
  fingerprint, the intervening effective deltas are composed
  (:meth:`~repro.relational.state.Delta.then`), and the materialisation is
  patched by the ΔQ rules of :mod:`repro.relational.delta`;
* **anything else** (unrelated state, lineage longer than the states' bounded
  chain, a delta the algebra cannot maintain) — one full materialising
  execution, replacing the entry.

Which of the three happened — and why — is reported as a decision string that
:class:`~repro.engine.plans.IncrementalAlgebraPlan` surfaces in ``explain()``.

Keying on the 64-bit mixed fingerprint (not the full state) keeps hits O(1);
the standard birthday argument makes a collision across a cache of dozens of
entries vanishingly unlikely, and a collision can only ever serve a stale
answer, never corrupt the materialisation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Set, Tuple

from ..relational.compile import CompiledQuery
from .budget import Deadline, EvaluationInterrupted
from ..relational.delta import (
    DeltaUnsupported,
    MaintenanceStats,
    MaterializedPlan,
    maintain_plan,
    materialize_plan,
)
from ..relational.state import DatabaseState, Delta, Row

__all__ = ["AnswerCache", "AnswerCacheInfo"]


@dataclass(frozen=True)
class AnswerCacheInfo:
    """A point-in-time snapshot of answer-cache effectiveness."""

    hits: int
    maintained: int
    misses: int
    rematerialized: int
    evictions: int
    size: int
    maxsize: int
    #: total rows touched by all delta-maintenance passes (the O(Δ) work)
    maintained_rows: int = 0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} maintained={self.maintained} "
            f"misses={self.misses} rematerialized={self.rematerialized} "
            f"evictions={self.evictions} size={self.size}/{self.maxsize}"
        )


class AnswerCache:
    """An LRU cache of materialised plan executions, patched by deltas.

    Thread-safe: serving sessions serialise their own queries, but the cache
    still guards its structures so a shared session cannot corrupt a
    materialisation mid-maintenance.
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize!r}")
        self._maxsize = maxsize
        self._entries: "OrderedDict[Any, MaterializedPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._maintained = 0
        self._misses = 0
        self._rematerialized = 0
        self._evictions = 0
        self._maintained_rows = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def answer(
        self,
        key: Any,
        compiled: CompiledQuery,
        state: DatabaseState,
        extras: Tuple[Any, ...],
        domain: Any,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[Set[Row], str]:
        """The answer rows for ``compiled`` in ``state``, plus the decision.

        The decision string says whether the answer was served from cache,
        delta-maintained (and at what cost), or recomputed in full (and
        why) — :class:`~repro.engine.plans.IncrementalAlgebraPlan` surfaces
        it verbatim in ``explain()``.

        A ``deadline`` is threaded into both maintenance and materialising
        executions.  An interrupted maintenance leaves the materialisation
        undefined, so the entry is dropped before the interruption
        propagates.
        """
        fingerprint = state.fingerprint()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                if entry.fingerprint == fingerprint:
                    self._hits += 1
                    return set(entry.rows), (
                        "answer cache hit: state fingerprint unchanged "
                        f"(version {state.version})"
                    )
                chain = _delta_chain(state, entry.fingerprint)
                if chain is not None:
                    composed = chain[0]
                    for link in chain[1:]:
                        composed = composed.then(link)
                    stats = MaintenanceStats()
                    try:
                        maintain_plan(
                            entry,
                            composed,
                            state,
                            compiled.universe(state, extras),
                            domain,
                            stats,
                            deadline,
                        )
                    except EvaluationInterrupted:
                        # A half-maintained materialisation is undefined:
                        # drop it, then surface the deadline/cancel upward.
                        del self._entries[key]
                        raise
                    except Exception as error:  # DeltaUnsupported or corruption
                        del self._entries[key]
                        reason = (
                            f"delta maintenance unsupported: {error}"
                            if isinstance(error, DeltaUnsupported)
                            else f"delta maintenance failed: {error}"
                        )
                    else:
                        self._maintained += 1
                        self._maintained_rows += stats.rows_touched
                        decision = (
                            "delta-maintained: "
                            f"{composed.row_count()} changed row(s) across "
                            f"{len(chain)} delta(s); touched {stats.describe()}"
                        )
                        return set(entry.rows), decision
                else:
                    reason = (
                        "no lineage path from the cached state "
                        "(unrelated state or more than the bounded chain of "
                        "mutations apart)"
                    )
                self._rematerialized += 1
            else:
                self._misses += 1
                reason = "first execution for this plan (answer cache miss)"
        # Materialise outside the lock: it is the expensive path, and an
        # idempotent one (a racing duplicate just wastes one execution).
        fresh = materialize_plan(
            compiled.plan, state, compiled.universe(state, extras), domain,
            deadline,
        )
        with self._lock:
            self._entries[key] = fresh
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
        return set(fresh.rows), f"recomputed in full: {reason}"

    def clear(self) -> None:
        """Drop every materialisation (the counters survive)."""
        with self._lock:
            self._entries.clear()

    def info(self) -> AnswerCacheInfo:
        """Hit/maintained/miss counters and current occupancy."""
        with self._lock:
            return AnswerCacheInfo(
                hits=self._hits,
                maintained=self._maintained,
                misses=self._misses,
                rematerialized=self._rematerialized,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self._maxsize,
                maintained_rows=self._maintained_rows,
            )


def _delta_chain(
    state: DatabaseState, fingerprint: int
) -> Optional[Tuple[Delta, ...]]:
    """The effective deltas from the state fingerprinted ``fingerprint`` to
    ``state``, oldest first — or ``None`` when no lineage link reaches it."""
    lineage = state.lineage
    for start, (parent_fingerprint, _) in enumerate(lineage):
        if parent_fingerprint == fingerprint:
            return tuple(delta for _, delta in lineage[start:])
    return None
