"""An LRU cache for compiled query plans.

Compiling a calculus query into an algebra plan
(:func:`repro.relational.compile.compile_query`) walks the whole formula;
for repeated queries — the common case for a long-lived
:class:`~repro.api.session.Session` — that work is pure overhead, because a
:class:`~repro.relational.compile.CompiledQuery` is immutable and
state-independent (the active domain is resolved at execution time).

The cache key is ``(formula, schema fingerprint, domain name)``: formulas
and schemas are frozen, hashable dataclasses, so the fingerprint is simply
the pair itself, and a schema change (or a different domain) can never serve
a stale plan.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

__all__ = ["PlanCache", "PlanCacheInfo"]


@dataclass(frozen=True)
class PlanCacheInfo:
    """A point-in-time snapshot of cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} evictions={self.evictions} "
            f"size={self.size}/{self.maxsize}"
        )


class PlanCache:
    """A small LRU map from (formula, schema, domain) keys to compiled plans."""

    def __init__(self, maxsize: int = 128):
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize!r}")
        self._maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key`` (refreshing its recency), or ``None``."""
        try:
            value = self._entries[key]
        except KeyError:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value`` under ``key``, evicting the least recently used."""
        if self._maxsize == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (the counters survive)."""
        self._entries.clear()

    def info(self) -> PlanCacheInfo:
        """Hit/miss/eviction counters and current occupancy."""
        return PlanCacheInfo(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            maxsize=self._maxsize,
        )
