"""An LRU cache for compiled query plans.

Compiling a calculus query into an algebra plan
(:func:`repro.relational.compile.compile_query`) walks the whole formula;
for repeated queries — the common case for a long-lived
:class:`~repro.api.session.Session` — that work is pure overhead, because a
:class:`~repro.relational.compile.CompiledQuery` is immutable and
state-independent (the active domain is resolved at execution time).

The cache key is ``(formula, schema fingerprint, domain name)``: formulas
and schemas are frozen, hashable dataclasses, so the fingerprint is simply
the pair itself, and a schema change (or a different domain) can never serve
a stale plan.

The cache is **thread-safe**: the serving layer (:mod:`repro.serve`) shares
one process-wide instance across every session, so concurrent sessions warm
each other's plans.  All bookkeeping (the LRU order *and* the counters)
happens under one internal :class:`threading.Lock`; the critical sections
are a handful of dict operations, so the single-threaded fast path stays an
uncontended lock acquisition — cheap enough that the library path through
:class:`~repro.api.session.Session` uses the same code.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

__all__ = ["PlanCache", "PlanCacheInfo"]


@dataclass(frozen=True)
class PlanCacheInfo:
    """A point-in-time snapshot of cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 before any lookup).

        The headline serving metric: a zipfian query mix should keep this
        above 0.9 once the popular plans are resident.
        """
        lookups = self.hits + self.misses
        if lookups == 0:
            return 0.0
        return self.hits / lookups

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} evictions={self.evictions} "
            f"size={self.size}/{self.maxsize} hit_rate={self.hit_rate:.2f}"
        )


class PlanCache:
    """A small, thread-safe LRU map from (formula, schema, domain) keys to plans."""

    def __init__(self, maxsize: int = 128):
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize!r}")
        self._maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key`` (refreshing its recency), or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value`` under ``key``, evicting the least recently used."""
        if self._maxsize == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (the counters survive)."""
        with self._lock:
            self._entries.clear()

    def info(self) -> PlanCacheInfo:
        """Hit/miss/eviction counters and current occupancy."""
        with self._lock:
            return PlanCacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self._maxsize,
            )
