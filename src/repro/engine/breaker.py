"""Per-substrate failure breakers for the transparent fallback ladder.

The accelerated execution substrates (``"parallel"``, ``"vectorized"``) sit
above the reference implementations (set executor, tree walker) in the
fallback ladder.  A *fault* — any unexpected exception out of an accelerated
substrate, e.g. an injected kernel failure or a broken worker pool — already
degrades one query transparently; the breaker makes *repeated* faults cheap
by demoting the substrate for a cooldown, so a persistently broken
accelerator stops being retried on every request.

Classic three-state circuit breaker, per substrate name:

* **closed** — normal operation; faults increment a counter, a success
  resets it;
* **open** — the counter reached ``threshold``: :meth:`allow` answers False
  (plans skip the substrate, recording the demotion in ``explain()``) until
  ``cooldown`` seconds have passed;
* **half-open** — the cooldown elapsed: the next :meth:`allow` admits a
  recovery probe.  A success closes the breaker; a fault reopens it for
  another cooldown.

The reference substrates are never demoted — they *are* the floor of the
ladder.  One process-wide default breaker (:func:`default_breaker`) is
shared by every plan that is not handed an explicit instance; the serving
layer configures its thresholds from ``ServerPolicy`` and surfaces
:meth:`snapshot` under ``/stats``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

__all__ = ["SubstrateBreaker", "default_breaker", "configure_default_breaker"]

#: breaker states, as the strings ``snapshot()`` reports
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class _Entry:
    __slots__ = ("faults", "total_faults", "successes", "state", "opened_at",
                 "last_fault", "trips")

    def __init__(self) -> None:
        self.faults = 0          # consecutive faults since the last success
        self.total_faults = 0
        self.successes = 0
        self.state = CLOSED
        self.opened_at = 0.0
        self.last_fault: Optional[str] = None
        self.trips = 0           # closed→open transitions


class SubstrateBreaker:
    """Thread-safe per-substrate circuit breakers (see the module docstring)."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be positive, got {threshold!r}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be non-negative, got {cooldown!r}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.Lock()

    def _entry(self, substrate: str) -> _Entry:
        entry = self._entries.get(substrate)
        if entry is None:
            entry = self._entries[substrate] = _Entry()
        return entry

    def allow(self, substrate: str) -> bool:
        """May the substrate run?  Admits a half-open recovery probe after
        the cooldown."""
        with self._lock:
            entry = self._entries.get(substrate)
            if entry is None or entry.state == CLOSED:
                return True
            if entry.state == OPEN:
                if self._clock() - entry.opened_at >= self.cooldown:
                    entry.state = HALF_OPEN
                    return True
                return False
            return True  # half-open: probe in flight, let it run

    def record_fault(self, substrate: str, error: Optional[BaseException] = None) -> None:
        """A substrate execution failed unexpectedly (not a static obstacle)."""
        with self._lock:
            entry = self._entry(substrate)
            entry.faults += 1
            entry.total_faults += 1
            if error is not None:
                entry.last_fault = f"{type(error).__name__}: {error}"
            if entry.state == HALF_OPEN or entry.faults >= self.threshold:
                if entry.state != OPEN:
                    entry.trips += 1
                entry.state = OPEN
                entry.opened_at = self._clock()

    def record_success(self, substrate: str) -> None:
        """A substrate execution completed; closes a half-open breaker."""
        with self._lock:
            entry = self._entries.get(substrate)
            if entry is None:
                entry = self._entry(substrate)
            entry.successes += 1
            entry.faults = 0
            entry.state = CLOSED

    def state(self, substrate: str) -> str:
        """``"closed"`` / ``"open"`` / ``"half-open"`` (cooldown-aware)."""
        with self._lock:
            entry = self._entries.get(substrate)
            if entry is None:
                return CLOSED
            if entry.state == OPEN and self._clock() - entry.opened_at >= self.cooldown:
                return HALF_OPEN
            return entry.state

    def describe(self, substrate: str) -> str:
        """One line for ``explain()``: why the substrate is demoted."""
        with self._lock:
            entry = self._entries.get(substrate)
            if entry is None:
                return "closed"
            text = (
                f"{entry.state} after {entry.faults} consecutive fault(s), "
                f"threshold {self.threshold}"
            )
            if entry.last_fault:
                text += f", last: {entry.last_fault}"
            if entry.state == OPEN:
                wait = max(0.0, self.cooldown - (self._clock() - entry.opened_at))
                text += f"; recovery probe in {wait:.1f}s"
            return text

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state of every tracked substrate (for ``/stats``)."""
        with self._lock:
            return {
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "substrates": {
                    name: {
                        "state": entry.state,
                        "consecutive_faults": entry.faults,
                        "total_faults": entry.total_faults,
                        "successes": entry.successes,
                        "trips": entry.trips,
                        "last_fault": entry.last_fault,
                    }
                    for name, entry in self._entries.items()
                },
            }

    def reset(self) -> None:
        """Forget every substrate's history (tests, operator intervention)."""
        with self._lock:
            self._entries.clear()


_DEFAULT = SubstrateBreaker()


def default_breaker() -> SubstrateBreaker:
    """The process-wide breaker used by plans without an explicit one."""
    return _DEFAULT


def configure_default_breaker(
    threshold: Optional[int] = None, cooldown: Optional[float] = None
) -> SubstrateBreaker:
    """Adjust the default breaker's knobs in place (serving layer start-up).

    Existing fault history is kept; only the thresholds move.
    """
    if threshold is not None:
        if threshold < 1:
            raise ValueError(f"threshold must be positive, got {threshold!r}")
        _DEFAULT.threshold = threshold
    if cooldown is not None:
        if cooldown < 0:
            raise ValueError(f"cooldown must be non-negative, got {cooldown!r}")
        _DEFAULT.cooldown = cooldown
    return _DEFAULT
