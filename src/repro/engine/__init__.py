"""Query answering: plans, budgets, the Section 1.1 algorithm, guards.

The modern front door is :func:`repro.connect` (see :mod:`repro.api`); the
``QueryEngine`` / ``GuardedEngine`` classes are retained as compatibility
shims over the same :class:`~repro.engine.plans.Plan` machinery.
"""

from .answer_cache import AnswerCache, AnswerCacheInfo
from .answers import Answer, FiniteAnswer, InfiniteAnswer, UnknownAnswer
from .budget import Budget, BudgetClock
from .enumeration import answer_by_enumeration, enumerate_tuples
from .evaluator import QueryEngine
from .plan_cache import PlanCache, PlanCacheInfo
from .plans import (
    STRATEGIES,
    ActiveDomainPlan,
    CompiledAlgebraPlan,
    EnumerationPlan,
    GuardedOutcome,
    GuardedPlan,
    IncrementalAlgebraPlan,
    Plan,
    VectorizedAlgebraPlan,
    plan_for_strategy,
)
from .safety_guard import GuardedEngine, GuardResult

__all__ = [
    "Answer", "FiniteAnswer", "InfiniteAnswer", "UnknownAnswer",
    "Budget", "BudgetClock",
    "Plan", "ActiveDomainPlan", "CompiledAlgebraPlan", "VectorizedAlgebraPlan",
    "IncrementalAlgebraPlan", "EnumerationPlan",
    "AnswerCache", "AnswerCacheInfo",
    "GuardedPlan", "GuardedOutcome", "plan_for_strategy", "STRATEGIES",
    "PlanCache", "PlanCacheInfo",
    "answer_by_enumeration", "enumerate_tuples",
    "QueryEngine", "GuardedEngine", "GuardResult",
]
