"""Query answering: the Section 1.1 algorithm, active-domain evaluation, guards."""

from .answers import Answer, FiniteAnswer, InfiniteAnswer, UnknownAnswer
from .enumeration import answer_by_enumeration, enumerate_tuples
from .evaluator import QueryEngine
from .safety_guard import GuardedEngine, GuardResult

__all__ = [
    "Answer", "FiniteAnswer", "InfiniteAnswer", "UnknownAnswer",
    "answer_by_enumeration", "enumerate_tuples",
    "QueryEngine", "GuardedEngine", "GuardResult",
]
