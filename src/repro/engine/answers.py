"""Answer objects returned by the query engine.

The paper's central tension — finite answers are computable over decidable
domains, but finiteness itself may be undecidable — is reflected in the three
possible outcomes: a fully materialised finite answer, a certified-infinite
answer carrying sample witnesses, or an unknown answer when the engine's
budget ran out before the question was settled.

:class:`Answer` is the abstract base of the hierarchy.  Every answer exposes

* ``rows()`` — the materialised rows (the full answer, a sample of an
  infinite one, or the partial rows found before a budget expired);
* ``is_finite`` — three-valued finiteness (``True`` / ``False`` / ``None``);
* ``method`` — the evaluation method that produced it; and
* ``explain()`` — a human-readable account of what the answer means.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..relational.state import Relation, Row

__all__ = ["Answer", "FiniteAnswer", "InfiniteAnswer", "UnknownAnswer"]


class Answer(ABC):
    """Abstract base class of the three query outcomes."""

    @property
    @abstractmethod
    def method(self) -> str:
        """The evaluation method that produced this answer."""

    @property
    @abstractmethod
    def is_finite(self) -> Optional[bool]:
        """``True`` / ``False`` when finiteness is settled, ``None`` otherwise."""

    @abstractmethod
    def rows(self) -> Tuple[Row, ...]:
        """The materialised rows, sorted."""

    @abstractmethod
    def explain(self) -> str:
        """A human-readable account of the answer."""

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    @property
    def row_count(self) -> int:
        """The number of materialised rows."""
        return len(self.rows())


@dataclass(frozen=True)
class FiniteAnswer(Answer):
    """A completely materialised finite answer."""

    relation: Relation
    # The field satisfies the abstract read-only property of the base class.
    method: str = ""  # type: ignore

    @property
    def is_finite(self) -> Optional[bool]:
        return True

    def rows(self) -> Tuple[Row, ...]:
        return tuple(self.relation)

    def explain(self) -> str:
        text = f"finite answer with {len(self.relation)} row(s)"
        if self.method:
            text += f", computed by {self.method}"
        return text

    def __len__(self) -> int:
        return len(self.relation)


@dataclass(frozen=True)
class InfiniteAnswer(Answer):
    """The answer is certified infinite; ``sample`` holds finitely many rows of it."""

    sample: Relation
    reason: str = ""
    method: str = ""  # type: ignore

    @property
    def is_finite(self) -> Optional[bool]:
        return False

    def rows(self) -> Tuple[Row, ...]:
        return tuple(self.sample)

    def explain(self) -> str:
        text = "the answer is infinite"
        if self.sample:
            text += f" ({len(self.sample)} sample row(s) materialised)"
        if self.method:
            text += f"; certified by {self.method}"
        if self.reason:
            text += f": {self.reason}"
        return text


@dataclass(frozen=True)
class UnknownAnswer(Answer):
    """The engine could not settle the answer within its resource budget."""

    partial: Relation
    reason: str = ""
    method: str = ""  # type: ignore

    @property
    def is_finite(self) -> Optional[bool]:
        return None

    def rows(self) -> Tuple[Row, ...]:
        return tuple(self.partial)

    def explain(self) -> str:
        text = (
            f"finiteness undetermined; {len(self.partial)} row(s) found "
            "before the budget ran out"
        )
        if self.method:
            text += f" (method: {self.method})"
        if self.reason:
            text += f": {self.reason}"
        return text
