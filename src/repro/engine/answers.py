"""Answer objects returned by the query engine.

The paper's central tension — finite answers are computable over decidable
domains, but finiteness itself may be undecidable — is reflected in the three
possible outcomes: a fully materialised finite answer, a certified-infinite
answer carrying sample witnesses, or an unknown answer when the engine's fuel
ran out before the question was settled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..relational.state import Relation

__all__ = ["Answer", "FiniteAnswer", "InfiniteAnswer", "UnknownAnswer"]


@dataclass(frozen=True)
class FiniteAnswer:
    """A completely materialised finite answer."""

    relation: Relation
    method: str = ""

    @property
    def is_finite(self) -> Optional[bool]:
        return True

    def __len__(self) -> int:
        return len(self.relation)


@dataclass(frozen=True)
class InfiniteAnswer:
    """The answer is certified infinite; ``sample`` holds finitely many rows of it."""

    sample: Relation
    reason: str = ""
    method: str = ""

    @property
    def is_finite(self) -> Optional[bool]:
        return False


@dataclass(frozen=True)
class UnknownAnswer:
    """The engine could not settle the answer within its resource budget."""

    partial: Relation
    reason: str = ""
    method: str = ""

    @property
    def is_finite(self) -> Optional[bool]:
        return None


Answer = object  # union of the three classes above
