"""First-class query plans.

A :class:`Plan` is an executable strategy object replacing the old
``strategy: str`` flag of ``QueryEngine.answer``.  The concrete plans mirror
the paper's evaluation disciplines across three execution substrates:

* :class:`ActiveDomainPlan` — active-domain semantics by tree walking:
  quantifiers and answer variables range over the active domain, so every
  answer is finite by construction (sound and complete for
  domain-independent queries);
* :class:`CompiledAlgebraPlan` — the same active-domain answer via the
  calculus→algebra compiler and the set-at-a-time executor (hash joins,
  antijoins, selection pushdown);
* :class:`VectorizedAlgebraPlan` — the same algebra plans lowered to
  vectorized NumPy column kernels, with a transparent fallback ladder
  (vectorized → set executor → tree walker) recorded in ``explain()``;
* :class:`ParallelAlgebraPlan` — the same vectorized kernels partitioned
  into morsels and run on a shared worker pool, with a size heuristic so
  small states stay single-threaded (ladder: parallel → vectorized → set
  executor → tree walker);
* :class:`EnumerationPlan` — the Section 1.1 enumeration algorithm, complete
  for arbitrary finite queries over a domain with a decidable theory, bounded
  by a :class:`~repro.engine.budget.Budget`;
* :class:`GuardedPlan` — wraps an inner plan with an effective-syntax
  restriction and/or a relative-safety check, rejecting provably infinite
  answers before evaluation starts.

Every plan carries an :meth:`~Plan.explain` describing *why* the strategy was
chosen (theory decidability, availability of a safety decider, explicit user
request), so the choice is auditable rather than buried in a string flag.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar, Optional, Tuple

from ..domains.base import Domain, TheoryUndecidableError
from ..logic.analysis import free_variables
from ..logic.formulas import Formula
from ..relational.bounds import NarrowingStats
from ..relational.calculus import evaluate_query_active_domain
from ..relational.columnar import (
    HAVE_NUMPY,
    VectorizationError,
    encode_cache_info,
    run_plan_vectorized,
    vectorization_obstacle,
)
from ..relational.compile import CompilationError, CompiledQuery, compile_query
from ..relational.parallel import DEFAULT_MORSEL_ROWS, MorselStats, run_plan_parallel
from ..relational.state import DatabaseState, Element, Relation
from ..safety.classes import FinitenessStatus, SafetyVerdict
from ..safety.effective_syntax import EffectiveSyntax
from ..safety.relative_safety import RelativeSafetyDecider, RelativeSafetyUndecidable
from .answer_cache import AnswerCache
from .answers import Answer, FiniteAnswer, InfiniteAnswer
from .breaker import SubstrateBreaker, default_breaker
from .budget import Budget, CancelToken, Deadline, EvaluationInterrupted
from .plan_cache import PlanCache

__all__ = [
    "Plan",
    "ActiveDomainPlan",
    "CompiledAlgebraPlan",
    "VectorizedAlgebraPlan",
    "ParallelAlgebraPlan",
    "IncrementalAlgebraPlan",
    "EnumerationPlan",
    "GuardedPlan",
    "GuardedOutcome",
    "plan_for_strategy",
    "decide_or_semidecide",
    "STRATEGIES",
]


def decide_or_semidecide(
    safety: RelativeSafetyDecider,
    formula: Formula,
    state: DatabaseState,
    fuel: int,
) -> SafetyVerdict:
    """Run a relative-safety decider, degrading gracefully.

    When the decider provably cannot decide (Theorem 3.3 — the trace domain),
    fall back to its fuel-bounded ``semi_decide`` when it has one and the
    instance fits; otherwise report an UNKNOWN verdict instead of raising, so
    evaluation can proceed under the budget.
    """
    try:
        return safety.decide(formula, state)
    except RelativeSafetyUndecidable as error:
        semi = getattr(safety, "semi_decide", None)
        if semi is not None:
            try:
                return semi(formula, state, fuel=fuel)
            except (ValueError, RelativeSafetyUndecidable):
                pass
        return SafetyVerdict.unknown(
            method=getattr(safety, "name", "relative-safety"), details=str(error)
        )

#: the strategy names understood by :func:`plan_for_strategy`
STRATEGIES = (
    "auto", "active-domain", "compiled", "vectorized", "parallel",
    "incremental", "enumeration", "guarded",
)


class Plan(ABC):
    """An executable query-evaluation strategy."""

    #: short machine-readable strategy name
    strategy: str = "plan"
    #: how the last execution was interrupted (deadline/cancel), if it was
    last_interruption: Optional[str] = None

    @abstractmethod
    def execute(self, query: Formula, state: DatabaseState) -> Answer:
        """Run the plan on ``query`` in ``state``."""

    def _start_deadline(self) -> Optional[Deadline]:
        """The cooperative deadline for one execution, or ``None``.

        A :class:`~repro.engine.budget.Deadline` is only constructed when
        the budget carries a wall-clock limit or the plan carries a cancel
        token — otherwise every checkpoint stays a single ``is None`` test.
        """
        budget = getattr(self, "budget", None)
        token = getattr(self, "cancel_token", None)
        if budget is None or (budget.time_limit is None and token is None):
            return None
        return budget.start_deadline(token)

    def _record_interruption(self, error: EvaluationInterrupted) -> None:
        self.last_interruption = error.describe()

    def explain(self) -> str:
        """Why this strategy was chosen, and what it will do."""
        reason = getattr(self, "reason", "")
        text = f"strategy {self.strategy!r}"
        if reason:
            text += f": {reason}"
        if self.last_interruption:
            text += f"; interrupted: {self.last_interruption}"
        return text


@dataclass(eq=False)
class ActiveDomainPlan(Plan):
    """Evaluate under active-domain semantics (always finite by construction).

    On registry-flagged ordered carriers the tree walker narrows each
    quantifier's candidate range to the interval union inferred by the
    shared bound analysis (:mod:`repro.relational.bounds`) — bisected over
    the value-sorted active domain — instead of iterating the full domain
    per quantifier; :meth:`explain` reports what the narrowing did.
    """

    domain: Domain
    budget: Budget = field(default_factory=Budget)
    extra_elements: Tuple[Element, ...] = ()
    reason: str = "active-domain semantics keeps every answer finite by construction"
    #: cooperative cancellation flag checked at the walker's checkpoints
    cancel_token: Optional[CancelToken] = None
    #: what quantifier-range narrowing did during the last execution
    last_narrowing: Optional[str] = None

    strategy = "active-domain"

    def execute(self, query: Formula, state: DatabaseState) -> Answer:
        stats = NarrowingStats()
        self.last_interruption = None
        try:
            relation = evaluate_query_active_domain(
                query,
                state,
                interpretation=self.domain,
                extra_elements=self.extra_elements,
                stats=stats,
                deadline=self._start_deadline(),
            )
        except EvaluationInterrupted as error:
            self._record_interruption(error)
            raise
        self.last_narrowing = stats.describe() if stats.enabled else None
        return FiniteAnswer(relation, method="active-domain")

    def explain(self) -> str:
        text = super().explain()
        if self.last_narrowing:
            text += "; " + self.last_narrowing
        return text


@dataclass(eq=False)
class CompiledAlgebraPlan(Plan):
    """Compile to relational algebra and execute set-at-a-time.

    Computes exactly the same active-domain answer as
    :class:`ActiveDomainPlan`, but via the
    :mod:`repro.relational.compile` → :mod:`repro.relational.exec` pipeline
    (hash joins, antijoins, selection pushdown) instead of tuple-at-a-time
    tree walking.  When compilation bails (function symbols, exotic terms)
    the plan falls back to the tree-walking evaluator transparently and
    :meth:`explain` records why.
    """

    domain: Domain
    budget: Budget = field(default_factory=Budget)
    extra_elements: Tuple[Element, ...] = ()
    cache: Optional[PlanCache] = None
    reason: str = (
        "the query compiles to relational algebra, so it is answered "
        "set-at-a-time with hash joins instead of tuple-at-a-time tree walking"
    )
    #: cooperative cancellation flag checked at the substrate checkpoints
    cancel_token: Optional[CancelToken] = None
    #: failure breaker demoting faulty accelerated substrates (the shared
    #: process-wide default when ``None``)
    breaker: Optional[SubstrateBreaker] = None
    #: why the last execution fell back to the tree walker, if it did
    fallback_reason: Optional[str] = None
    #: operator census of the last compiled plan, for explain()
    last_summary: Optional[str] = None

    strategy = "compiled-algebra"
    #: component of the plan-cache key separating execution substrates
    _substrate: ClassVar[str] = "compiled"

    def execute(self, query: Formula, state: DatabaseState) -> Answer:
        self.last_interruption = None
        deadline = self._start_deadline()
        try:
            return self._execute_with(query, state, deadline)
        except EvaluationInterrupted as error:
            self._record_interruption(error)
            raise

    def _execute_with(
        self, query: Formula, state: DatabaseState, deadline: Optional[Deadline]
    ) -> Answer:
        try:
            compiled = self._compiled(query, state)
        except CompilationError as error:
            self.fallback_reason = str(error)
            self.last_summary = None
            return self._tree_walk_answer(query, state, deadline)
        self.fallback_reason = None
        self.last_summary = compiled.summary()
        relation = compiled.execute(
            state, self.domain, self.extra_elements, deadline=deadline
        )
        return FiniteAnswer(relation, method="compiled-algebra")

    def _breaker(self) -> SubstrateBreaker:
        return self.breaker if self.breaker is not None else default_breaker()

    def _tree_walk_answer(
        self,
        query: Formula,
        state: DatabaseState,
        deadline: Optional[Deadline] = None,
    ) -> Answer:
        """The tree-walking fallback shared by both algebra substrates."""
        relation = evaluate_query_active_domain(
            query,
            state,
            interpretation=self.domain,
            extra_elements=self.extra_elements,
            deadline=deadline,
        )
        return FiniteAnswer(relation, method="active-domain")

    def _compiled(self, query: Formula, state: DatabaseState) -> CompiledQuery:
        """Compile ``query`` for the state's schema, via the cache if present.

        Compilation *failures* are cached too (as the raised error), so a hot
        loop over a non-compilable query pays the formula walk only once.
        """
        if self.cache is None:
            return compile_query(query, state.schema, self.domain)
        key = (query, state.schema, self.domain.name, self._substrate)
        cached = self.cache.get(key)
        if cached is None:
            try:
                cached = compile_query(query, state.schema, self.domain)
            except CompilationError as error:
                cached = error
            self.cache.put(key, cached)
        if isinstance(cached, CompilationError):
            raise cached
        return cached

    def explain(self) -> str:
        text = f"strategy {self.strategy!r}: {self.reason}"
        if self.last_summary:
            text += f" (last plan: {self.last_summary})"
        if self.fallback_reason:
            text += self._fallback_note()
        if self.last_interruption:
            text += f"; interrupted: {self.last_interruption}"
        for substrate in ("parallel", "vectorized"):
            if self._breaker().state(substrate) != "closed":
                text += (
                    f"; {substrate} breaker "
                    + self._breaker().describe(substrate)
                )
        if self.cache is not None:
            text += f"; plan cache {self.cache.info()}"
        return text

    def _fallback_note(self) -> str:
        return (
            "; fell back to the tree-walking active-domain evaluator: "
            + (self.fallback_reason or "")
        )


@dataclass(eq=False)
class VectorizedAlgebraPlan(CompiledAlgebraPlan):
    """Compile to relational algebra and execute on NumPy column arrays.

    The third execution substrate: the same algebra plan a
    :class:`CompiledAlgebraPlan` interprets set-at-a-time is lowered to the
    vectorized columnar executor (:mod:`repro.relational.columnar`) —
    ``int64`` code columns, sort-based joins via ``np.searchsorted``,
    antijoin membership masks, adom padding as broadcasts.  The answer is
    always exactly the active-domain answer; when a plan or carrier resists
    vectorization (a domain predicate without a kernel, a non-integer carrier
    under a domain predicate, numpy missing) execution falls back to the set
    executor, and when compilation itself bails it falls all the way back to
    the tree walker — either way :meth:`explain` records the reason.
    """

    reason: str = (
        "the query compiles to relational algebra and lowers to vectorized "
        "NumPy kernels, so scans, joins, and antijoins run on int64 column "
        "arrays instead of Python sets of tuples"
    )

    strategy = "vectorized"
    _substrate: ClassVar[str] = "vectorized"

    def _execute_with(
        self, query: Formula, state: DatabaseState, deadline: Optional[Deadline]
    ) -> Answer:
        try:
            compiled, obstacle = self._vectorized(query, state)
        except CompilationError as error:
            self.fallback_reason = (
                str(error) + "; answered by the tree-walking active-domain "
                "evaluator instead"
            )
            self.last_summary = None
            return self._tree_walk_answer(query, state, deadline)
        self.last_summary = compiled.summary()
        breaker = self._breaker()
        if obstacle is None and not breaker.allow("vectorized"):
            obstacle = (
                "the vectorized substrate is demoted by its failure breaker "
                f"({breaker.describe('vectorized')})"
            )
        elif obstacle is None:
            try:
                rows = run_plan_vectorized(
                    compiled.plan,
                    state,
                    compiled.universe(state, self.extra_elements),
                    self.domain,
                    deadline=deadline,
                )
            except VectorizationError as error:
                obstacle = str(error)
            except EvaluationInterrupted:
                raise
            except Exception as error:
                breaker.record_fault("vectorized", error)
                obstacle = (
                    "the vectorized substrate faulted "
                    f"({type(error).__name__}: {error}); breaker "
                    + breaker.state("vectorized")
                )
            else:
                breaker.record_success("vectorized")
                self.fallback_reason = None
                relation = Relation(len(compiled.output), rows)
                return FiniteAnswer(relation, method="vectorized")
        self.fallback_reason = (
            obstacle + "; executed by the set-at-a-time executor instead"
        )
        relation = compiled.execute(
            state, self.domain, self.extra_elements, deadline=deadline
        )
        return FiniteAnswer(relation, method="compiled-algebra")

    def _vectorized(
        self, query: Formula, state: DatabaseState
    ) -> Tuple[CompiledQuery, Optional[str]]:
        """The compiled plan plus its *static* vectorization obstacle.

        Both are state-independent, so the pair is what the plan cache
        stores under this substrate's key — which is why the ``"vectorized"``
        and ``"compiled"`` cache entries genuinely differ.  Compilation
        failures are cached as the raised error, like the parent's.
        """
        if self.cache is None:
            compiled = compile_query(query, state.schema, self.domain)
            return compiled, vectorization_obstacle(compiled.plan)
        key = (query, state.schema, self.domain.name, self._substrate)
        cached = self.cache.get(key)
        if cached is None:
            try:
                compiled = compile_query(query, state.schema, self.domain)
                cached = (compiled, vectorization_obstacle(compiled.plan))
            except CompilationError as error:
                cached = error
            self.cache.put(key, cached)
        if isinstance(cached, CompilationError):
            raise cached
        return cached

    def _fallback_note(self) -> str:
        return "; fell back: " + (self.fallback_reason or "")

    def explain(self) -> str:
        text = super().explain()
        if HAVE_NUMPY:
            text += f"; encode cache {encode_cache_info()}"
        return text


@dataclass(eq=False)
class ParallelAlgebraPlan(VectorizedAlgebraPlan):
    """Run the vectorized kernels morsel-parallel on a shared worker pool.

    The fourth execution substrate, and the top of the transparent fallback
    ladder (parallel → vectorized → set executor → tree walker).  The same
    algebra plan a :class:`VectorizedAlgebraPlan` lowers to NumPy kernels is
    partitioned into fixed-size row chunks ("morsels") and dispatched to the
    process-wide thread pool of :mod:`repro.relational.parallel` — NumPy
    releases the GIL inside its kernels, so the chunks genuinely run on
    multiple cores.  Tiny states skip the pool: below
    ``parallel_threshold`` total input rows the plan answers through the
    single-threaded vectorized path, because thread dispatch would cost more
    than it saves.  :meth:`explain` records worker counts, morsel counts,
    and per-stage merge statistics of the last parallel execution.
    """

    reason: str = (
        "the query compiles to relational algebra, lowers to vectorized "
        "NumPy kernels, and runs them morsel-parallel on the shared worker "
        "pool; small states stay single-threaded"
    )
    #: rows per morsel handed to the worker pool
    morsel_rows: int = DEFAULT_MORSEL_ROWS
    #: total input rows (stored + active domain) below which the pool is skipped
    parallel_threshold: int = 2048
    #: morsel/merge accounting of the last parallel execution, for explain()
    last_morsels: Optional[str] = None

    strategy = "parallel"
    _substrate: ClassVar[str] = "parallel"

    def _execute_with(  # noqa: C901 - the ladder is one deliberate sequence
        self, query: Formula, state: DatabaseState, deadline: Optional[Deadline]
    ) -> Answer:
        self.last_morsels = None
        try:
            compiled, obstacle = self._vectorized(query, state)
        except CompilationError as error:
            self.fallback_reason = (
                str(error) + "; answered by the tree-walking active-domain "
                "evaluator instead"
            )
            self.last_summary = None
            return self._tree_walk_answer(query, state, deadline)
        self.last_summary = compiled.summary()
        breaker = self._breaker()
        if obstacle is None:
            universe = compiled.universe(state, self.extra_elements)
            size = state.total_rows() + len(universe)
            # Rung 1: the worker pool — skipped for tiny states and while
            # the parallel breaker is open.
            pool_skip: Optional[str] = None
            if size < self.parallel_threshold:
                pool_skip = (
                    f"state too small for the pool ({size} < "
                    f"{self.parallel_threshold} rows); ran the "
                    "single-threaded vectorized kernels instead"
                )
            elif not breaker.allow("parallel"):
                pool_skip = (
                    "the parallel substrate is demoted by its failure "
                    f"breaker ({breaker.describe('parallel')}); ran the "
                    "single-threaded vectorized kernels instead"
                )
            if pool_skip is None:
                stats = MorselStats()
                try:
                    rows = run_plan_parallel(
                        compiled.plan,
                        state,
                        universe,
                        self.domain,
                        morsel_rows=self.morsel_rows,
                        stats=stats,
                        deadline=deadline,
                    )
                except VectorizationError as error:
                    obstacle = str(error)
                except EvaluationInterrupted:
                    raise
                except Exception as error:
                    breaker.record_fault("parallel", error)
                    pool_skip = (
                        "the parallel substrate faulted "
                        f"({type(error).__name__}: {error}); demoted to the "
                        "single-threaded vectorized kernels"
                    )
                else:
                    breaker.record_success("parallel")
                    self.fallback_reason = None
                    self.last_morsels = stats.describe()
                    relation = Relation(len(compiled.output), rows)
                    return FiniteAnswer(relation, method="parallel")
            # Rung 2: the single-threaded vectorized kernels.
            if obstacle is None:
                assert pool_skip is not None
                if not breaker.allow("vectorized"):
                    obstacle = (
                        "the vectorized substrate is demoted by its failure "
                        f"breaker ({breaker.describe('vectorized')})"
                    )
                else:
                    try:
                        rows = run_plan_vectorized(
                            compiled.plan, state, universe, self.domain,
                            deadline=deadline,
                        )
                    except VectorizationError as error:
                        obstacle = str(error)
                    except EvaluationInterrupted:
                        raise
                    except Exception as error:
                        breaker.record_fault("vectorized", error)
                        obstacle = (
                            "the vectorized substrate faulted "
                            f"({type(error).__name__}: {error}); breaker "
                            + breaker.state("vectorized")
                        )
                    else:
                        breaker.record_success("vectorized")
                        self.fallback_reason = pool_skip
                        relation = Relation(len(compiled.output), rows)
                        return FiniteAnswer(relation, method="vectorized")
        # Rung 3: the reference set-at-a-time executor (never demoted).
        self.fallback_reason = (
            obstacle + "; executed by the set-at-a-time executor instead"
        )
        relation = compiled.execute(
            state, self.domain, self.extra_elements, deadline=deadline
        )
        return FiniteAnswer(relation, method="compiled-algebra")

    def explain(self) -> str:
        text = super().explain()
        if self.last_morsels:
            text += "; morsels: " + self.last_morsels
        return text


@dataclass(eq=False)
class IncrementalAlgebraPlan(CompiledAlgebraPlan):
    """Answer from a per-session answer cache, patched by state deltas.

    The write-path substrate: the same compiled algebra plan a
    :class:`CompiledAlgebraPlan` executes is *materialised* — every
    operator's output retained — and stored in an
    :class:`~repro.engine.answer_cache.AnswerCache` keyed by (query, schema,
    domain, extras) and stamped with the state fingerprint.  A repeat query
    against the same state is O(answer); against a state mutated through
    :meth:`~repro.relational.state.DatabaseState.apply` the materialisation
    is patched by the ΔQ rules of :mod:`repro.relational.delta` at
    O(Δ · answer) cost; everything else falls back to one full materialising
    execution.  :meth:`explain` records which of the three happened (and
    why) after every execution.

    Plan compilation is shared with the ``"compiled"`` substrate's cache
    entries (the algebra plan is identical); only the answer materialisation
    is new.
    """

    answer_cache: Optional[AnswerCache] = None
    reason: str = (
        "the session opted into incremental evaluation, so answers are "
        "materialised once and patched by ΔQ rules when the state mutates"
    )
    #: what the answer cache did on the last execution, and why
    last_decision: Optional[str] = None

    strategy = "incremental"
    #: shares the set-at-a-time substrate's compiled-plan cache entries
    _substrate: ClassVar[str] = "compiled"

    def _execute_with(
        self, query: Formula, state: DatabaseState, deadline: Optional[Deadline]
    ) -> Answer:
        try:
            compiled = self._compiled(query, state)
        except CompilationError as error:
            self.fallback_reason = str(error)
            self.last_summary = None
            self.last_decision = (
                "recomputed in full: compilation failed, answered by the "
                "tree-walking active-domain evaluator"
            )
            return self._tree_walk_answer(query, state, deadline)
        self.fallback_reason = None
        self.last_summary = compiled.summary()
        if self.answer_cache is None:
            self.last_decision = "recomputed in full: no answer cache configured"
            relation = compiled.execute(
                state, self.domain, self.extra_elements, deadline=deadline
            )
            return FiniteAnswer(relation, method="compiled-algebra")
        key = (query, state.schema, self.domain.name, self.extra_elements)
        rows, decision = self.answer_cache.answer(
            key, compiled, state, self.extra_elements, self.domain, deadline
        )
        self.last_decision = decision
        relation = Relation(len(compiled.output), rows)
        return FiniteAnswer(relation, method="incremental")

    def explain(self) -> str:
        text = super().explain()
        if self.answer_cache is not None:
            text += f"; answer cache {self.answer_cache.info()}"
        if self.last_decision:
            text += f"; last answer: {self.last_decision}"
        return text


@dataclass(eq=False)
class EnumerationPlan(Plan):
    """Run the Section 1.1 enumeration algorithm (needs a decidable theory).

    The candidate search is seeded with the compiled active-domain superset
    intersected with the inferred interval bounds of the free variables
    (:mod:`repro.relational.bounds`), so on decidable ordered domains the
    number of decision-procedure calls is bounded by the compiled answer
    instead of ``max_candidates``; :meth:`explain` reports which generator
    ran and how many candidates it tested.
    """

    domain: Domain
    budget: Budget = field(default_factory=Budget)
    reason: str = "the enumeration algorithm answers any finite query exactly"
    #: cooperative cancellation flag (time expiry stays an UnknownAnswer)
    cancel_token: Optional[CancelToken] = None
    #: candidate-generator report of the last execution
    last_candidates: Optional[str] = None

    strategy = "enumeration"

    def execute(self, query: Formula, state: DatabaseState) -> Answer:
        if not self.domain.has_decidable_theory:
            raise TheoryUndecidableError(
                f"domain {self.domain.name!r} has no decision procedure; "
                "enumeration-based answering is unavailable"
            )
        from .enumeration import CandidateStats, answer_by_enumeration

        stats = CandidateStats()
        self.last_interruption = None
        try:
            answer = answer_by_enumeration(
                query, state, self.domain, budget=self.budget, stats=stats,
                deadline=self._start_deadline(),
            )
        except EvaluationInterrupted as error:
            self._record_interruption(error)
            raise
        self.last_candidates = stats.describe()
        return answer

    def explain(self) -> str:
        text = super().explain()
        if self.last_candidates:
            text += "; " + self.last_candidates
        return text


@dataclass(frozen=True)
class GuardedOutcome:
    """What a guarded execution did: the answer plus the guard's decisions."""

    answer: Answer
    admitted_query: Formula
    verdict: Optional[SafetyVerdict] = None
    rewritten: bool = False


@dataclass(frozen=True)
class GuardedPlan(Plan):
    """Apply an effective-syntax restriction and/or a relative-safety check,
    then delegate to an inner plan."""

    inner: Plan
    syntax: Optional[EffectiveSyntax] = None
    safety: Optional[RelativeSafetyDecider] = None
    reason: str = ""

    strategy = "guarded"

    @property
    def budget(self) -> Budget:
        return getattr(self.inner, "budget", Budget())

    def run(self, query: Formula, state: DatabaseState) -> GuardedOutcome:
        """Execute with full guard metadata (verdict, rewriting)."""
        admitted = query
        rewritten = False
        if self.syntax is not None and not self.syntax.contains(query):
            admitted = self.syntax.restrict(query)
            rewritten = True

        verdict: Optional[SafetyVerdict] = None
        if self.safety is not None:
            verdict = decide_or_semidecide(self.safety, admitted, state, self.budget.fuel)
            if verdict.status is FinitenessStatus.INFINITE:
                arity = len(free_variables(admitted))
                answer = InfiniteAnswer(
                    Relation(arity, []),
                    reason="rejected by the relative-safety guard: " + verdict.details,
                    method=verdict.method,
                )
                return GuardedOutcome(answer, admitted, verdict, rewritten)

        return GuardedOutcome(self.inner.execute(admitted, state), admitted, verdict, rewritten)

    def execute(self, query: Formula, state: DatabaseState) -> Answer:
        return self.run(query, state).answer

    def explain(self) -> str:
        guards = []
        if self.syntax is not None:
            guards.append(f"effective syntax {self.syntax.name!r}")
        if self.safety is not None:
            guards.append(f"relative-safety decider {self.safety.name!r}")
        text = f"strategy 'guarded' ({' + '.join(guards) if guards else 'no guards configured'})"
        if self.reason:
            text += f": {self.reason}"
        return text + "; inner " + self.inner.explain()


def plan_for_strategy(
    strategy: str,
    domain: Domain,
    budget: Optional[Budget] = None,
    *,
    extra_elements: Tuple[Element, ...] = (),
    syntax: Optional[EffectiveSyntax] = None,
    safety: Optional[RelativeSafetyDecider] = None,
    cache: Optional[PlanCache] = None,
    answer_cache: Optional[AnswerCache] = None,
    cancel_token: Optional[CancelToken] = None,
    breaker: Optional[SubstrateBreaker] = None,
) -> Plan:
    """Build the :class:`Plan` for a strategy name.

    This is the planner behind the legacy string-flag API.  ``"auto"`` picks
    enumeration when the domain theory is decidable and active-domain
    semantics otherwise, and wraps the choice in a :class:`GuardedPlan` when a
    syntax or safety guard is supplied.  A ``cancel_token`` aborts the
    execution cooperatively from another thread; ``breaker`` overrides the
    process-wide default substrate failure breaker.
    """
    budget = budget if budget is not None else Budget()
    if strategy == "active-domain":
        inner: Plan = ActiveDomainPlan(
            domain=domain,
            budget=budget,
            extra_elements=tuple(extra_elements),
            reason="requested explicitly; every answer is finite by construction",
            cancel_token=cancel_token,
        )
    elif strategy == "compiled":
        inner = CompiledAlgebraPlan(
            domain=domain,
            budget=budget,
            extra_elements=tuple(extra_elements),
            cache=cache,
            reason="requested explicitly; compiles to relational algebra and "
            "falls back to tree walking when compilation bails",
            cancel_token=cancel_token,
            breaker=breaker,
        )
    elif strategy == "vectorized":
        inner = VectorizedAlgebraPlan(
            domain=domain,
            budget=budget,
            extra_elements=tuple(extra_elements),
            cache=cache,
            reason="requested explicitly; lowers the algebra plan to NumPy "
            "column kernels, falling back to the set executor (and, when "
            "compilation bails, the tree walker)",
            cancel_token=cancel_token,
            breaker=breaker,
        )
    elif strategy == "parallel":
        inner = ParallelAlgebraPlan(
            domain=domain,
            budget=budget,
            extra_elements=tuple(extra_elements),
            cache=cache,
            reason="requested explicitly; runs the vectorized NumPy kernels "
            "morsel-parallel on the shared worker pool (small states stay "
            "single-threaded), falling back to the set executor (and, when "
            "compilation bails, the tree walker)",
            cancel_token=cancel_token,
            breaker=breaker,
        )
    elif strategy == "incremental":
        inner = IncrementalAlgebraPlan(
            domain=domain,
            budget=budget,
            extra_elements=tuple(extra_elements),
            cache=cache,
            answer_cache=answer_cache if answer_cache is not None else AnswerCache(),
            reason="requested explicitly; materialises answers and patches "
            "them by ΔQ rules when the state mutates, falling back to a full "
            "re-execution (and, when compilation bails, the tree walker)",
            cancel_token=cancel_token,
            breaker=breaker,
        )
    elif strategy == "enumeration":
        inner = EnumerationPlan(
            domain=domain,
            budget=budget,
            reason="requested explicitly; requires a decidable domain theory",
            cancel_token=cancel_token,
        )
    elif strategy in ("auto", "guarded"):
        if domain.has_decidable_theory:
            inner = EnumerationPlan(
                domain=domain,
                budget=budget,
                reason=f"the first-order theory of {domain.name!r} is decidable, so "
                "the Section 1.1 enumeration algorithm answers any finite query",
                cancel_token=cancel_token,
            )
        else:
            inner = ActiveDomainPlan(
                domain=domain,
                budget=budget,
                extra_elements=tuple(extra_elements),
                reason=f"the theory of {domain.name!r} has no decision procedure; "
                "falling back to active-domain semantics",
                cancel_token=cancel_token,
            )
    else:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")

    if strategy == "guarded" and syntax is None and safety is None:
        raise ValueError(
            "strategy 'guarded' requires an effective syntax and/or a "
            "relative-safety decider"
        )
    if syntax is None and safety is None:
        return inner
    if strategy in (
        "active-domain", "compiled", "vectorized", "parallel", "incremental",
        "enumeration",
    ):
        # Explicit single-strategy requests bypass the guards.
        return inner
    parts = []
    if safety is not None:
        parts.append(
            f"relative safety over {domain.name!r} is decidable via "
            f"{safety.name!r}, so provably infinite answers are rejected "
            "before evaluation"
        )
    if syntax is not None:
        parts.append(
            f"queries outside the effective syntax {syntax.name!r} are "
            "restricted to it first"
        )
    return GuardedPlan(inner=inner, syntax=syntax, safety=safety, reason="; ".join(parts))
