"""The generic query-answering algorithm of Section 1.1.

"Suppose we know somehow that F(x) gives a finite answer in the given database
state. ... the formula F(x) can be translated into a pure domain formula
F'(x). ... Now let us order all tuples of elements of the domain of the size
of x.  Consider the formula ∃x F'(x).  If it is false, then the answer is the
empty relation. ... by checking F(a1), F(a2), ..., one at a time, we find the
first a_k that makes the formula F(a_k) true. ... Now take the formula
∃x (x ≠ a_k ∧ F'(x)). ... Thus, we just described an algorithm (as inefficient
as it is) for answering queries."

The implementation below is that algorithm, with three pragmatic additions: a
bound on the number of answer rows (so that infinite queries do not loop
forever — instead an :class:`~repro.engine.answers.UnknownAnswer` is
returned), a bound on the number of candidate tuples examined between two
rows, and an optional wall-clock limit.  All three live in a single
:class:`~repro.engine.budget.Budget`.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from ..domains.base import Domain
from ..logic.analysis import free_variables
from ..logic.builders import conj, exists_many, neg
from ..logic.formulas import Equals, Formula
from ..logic.substitution import substitute
from ..logic.terms import Const, Var
from ..relational.state import DatabaseState, Element, Relation
from ..relational.translate import expand_database_atoms
from .answers import Answer, FiniteAnswer, UnknownAnswer
from .budget import Budget

__all__ = ["enumerate_tuples", "answer_by_enumeration"]


def enumerate_tuples(domain: Domain, arity: int, limit: int) -> Iterator[Tuple[Element, ...]]:
    """Enumerate up to ``limit`` tuples of domain elements of the given arity.

    Tuples are produced in non-decreasing order of the maximum enumeration
    index of their components (a fair, dovetailing order), so every tuple is
    eventually reached.
    """
    if arity == 0:
        yield ()
        return
    produced = 0
    elements: List[Element] = []
    element_iterator = domain.enumerate_elements()
    for radius in itertools.count(1):
        while len(elements) < radius:
            elements.append(next(element_iterator))
        for candidate in itertools.product(elements, repeat=arity):
            if max(elements.index(c) for c in candidate) != radius - 1:
                continue  # already produced at a smaller radius
            yield candidate
            produced += 1
            if produced >= limit:
                return


def answer_by_enumeration(
    query: Formula,
    state: DatabaseState,
    domain: Domain,
    max_rows: int = 1000,
    max_candidates: int = 10_000,
    free_order: Optional[Sequence[Var]] = None,
    budget: Optional[Budget] = None,
) -> Answer:
    """Answer ``query`` in ``state`` using the Section 1.1 algorithm.

    Requires a domain with a decision procedure.  Returns a
    :class:`FiniteAnswer` when the algorithm terminates (which it always does
    for finite queries, given enough budget), and an :class:`UnknownAnswer`
    carrying the rows found so far when the budget is exhausted.  ``budget``
    takes precedence over the legacy ``max_rows`` / ``max_candidates``
    keywords.
    """
    if budget is None:
        budget = Budget(max_rows=max_rows, max_candidates=max_candidates)
    clock = budget.start()
    pure = expand_database_atoms(query, state)
    if free_order is None:
        variables = sorted(free_variables(pure), key=lambda v: v.name)
    else:
        variables = list(free_order)
    arity = len(variables)

    found: List[Tuple[Element, ...]] = []

    def excluded_formula() -> Formula:
        exclusions = []
        for row in found:
            row_equalities = conj(
                *(Equals(v, Const(value)) for v, value in zip(variables, row))
            )
            exclusions.append(neg(row_equalities))
        return conj(pure, *exclusions)

    def out_of_time() -> UnknownAnswer:
        return UnknownAnswer(
            Relation(arity, found),
            reason=f"time budget of {budget.time_limit}s exhausted",
            method="enumeration",
        )

    while len(found) < budget.max_rows:
        if clock.expired:
            return out_of_time()
        remaining = excluded_formula()
        more_exists = exists_many([v.name for v in variables], remaining)
        if not domain.decide(more_exists):
            return FiniteAnswer(Relation(arity, found), method="enumeration")
        # Some further tuple satisfies the query; search for it.
        located = False
        for candidate in enumerate_tuples(domain, arity, budget.max_candidates):
            if clock.expired:
                return out_of_time()
            if candidate in found:
                continue
            instantiated = substitute(
                pure, {v: Const(value) for v, value in zip(variables, candidate)}
            )
            if domain.decide(instantiated):
                found.append(candidate)
                located = True
                break
        if not located:
            return UnknownAnswer(
                Relation(arity, found),
                reason=f"a further answer row exists but was not found among the "
                f"first {budget.max_candidates} candidate tuples",
                method="enumeration",
            )
    return UnknownAnswer(
        Relation(arity, found),
        reason=f"row budget of {budget.max_rows} exhausted; the answer may be infinite",
        method="enumeration",
    )
