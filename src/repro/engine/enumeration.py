"""The generic query-answering algorithm of Section 1.1.

"Suppose we know somehow that F(x) gives a finite answer in the given database
state. ... the formula F(x) can be translated into a pure domain formula
F'(x). ... Now let us order all tuples of elements of the domain of the size
of x.  Consider the formula ∃x F'(x).  If it is false, then the answer is the
empty relation. ... by checking F(a1), F(a2), ..., one at a time, we find the
first a_k that makes the formula F(a_k) true. ... Now take the formula
∃x (x ≠ a_k ∧ F'(x)). ... Thus, we just described an algorithm (as inefficient
as it is) for answering queries."

The implementation below is that algorithm, with three pragmatic additions: a
bound on the number of answer rows (so that infinite queries do not loop
forever — instead an :class:`~repro.engine.answers.UnknownAnswer` is
returned), a bound on the number of candidate tuples examined between two
rows, and an optional wall-clock limit.  All three live in a single
:class:`~repro.engine.budget.Budget`.

The candidate search is additionally *compiled*: where the paper's algorithm
dovetails blindly over all tuples of domain elements, this implementation
first offers the rows of the **compiled active-domain answer** (the algebra
backend's answer is where the witnesses overwhelmingly live), intersected
with the per-variable **interval bounds** the shared bound analysis
(:mod:`repro.relational.bounds`) infers from the query's comparison
literals; when every free variable is finitely bounded the generator
enumerates exactly the bounded grid.  Every candidate is still verified with
the domain's decision procedure, so the seeding is a pure optimisation —
exhausting it falls back to the blind dovetail, preserving the original
algorithm's guarantees while collapsing its ``max_candidates`` pressure on
decidable ordered domains.  A :class:`CandidateStats` records which
generator ran and how many candidates were decision-tested
(``EnumerationPlan.explain()`` surfaces it).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..domains.base import Domain
from ..logic.analysis import free_variables
from ..logic.builders import conj, exists_many, neg
from ..logic.formulas import Equals, Formula
from ..logic.substitution import substitute
from ..logic.terms import Const, Var
from ..relational.bounds import (
    BoundAnalysis,
    IntervalSet,
    domain_is_ordered,
    registry_capability,
)
from ..relational.state import DatabaseState, Element, Relation
from ..relational.translate import expand_database_atoms
from .answers import Answer, FiniteAnswer, UnknownAnswer
from .budget import Budget, Deadline

__all__ = [
    "enumerate_tuples",
    "answer_by_enumeration",
    "CandidateStats",
]


def enumerate_tuples(domain: Domain, arity: int, limit: int) -> Iterator[Tuple[Element, ...]]:
    """Enumerate up to ``limit`` tuples of domain elements of the given arity.

    Tuples are produced in non-decreasing order of the maximum enumeration
    index of their components (a fair, dovetailing order), so every tuple is
    eventually reached.
    """
    if arity == 0:
        yield ()
        return
    produced = 0
    elements: List[Element] = []
    element_iterator = domain.enumerate_elements()
    for radius in itertools.count(1):
        while len(elements) < radius:
            elements.append(next(element_iterator))
        for candidate in itertools.product(elements, repeat=arity):
            if max(elements.index(c) for c in candidate) != radius - 1:
                continue  # already produced at a smaller radius
            yield candidate
            produced += 1
            if produced >= limit:
                return


@dataclass
class CandidateStats:
    """Which candidate generator one enumeration run used, and how hard.

    ``examined`` counts candidates actually submitted to the domain's
    decision procedure — the number the ISSUE's acceptance criterion bounds
    by the compiled superset instead of ``max_candidates``.
    """

    #: "compiled+bounded", "compiled+dovetail", "bounded", or "dovetail"
    generator: str = "dovetail"
    #: candidates decision-tested across all search rounds
    examined: int = 0
    #: size of the compiled active-domain superset, when one was computed
    compiled_rows: Optional[int] = None
    #: free variables whose inferred bounds were finite on both sides
    bounded_variables: Tuple[str, ...] = ()

    def describe(self) -> str:
        parts = [f"candidate generator {self.generator!r}"]
        if self.compiled_rows is not None:
            parts.append(f"compiled superset of {self.compiled_rows} row(s)")
        if self.bounded_variables:
            parts.append(
                "finitely bounded variable(s): "
                + ", ".join(self.bounded_variables)
            )
        parts.append(f"{self.examined} candidate(s) decision-tested")
        return "; ".join(parts)


def _compiled_superset(
    query: Formula,
    state: DatabaseState,
    domain: Domain,
    variables: Sequence[Var],
) -> Optional[List[Tuple[Element, ...]]]:
    """The compiled active-domain answer as prioritized candidate rows.

    Witnesses of database-bound (domain-independent) query parts live in the
    active-domain answer, so testing those rows first usually finds every
    answer row without touching the blind dovetail.  Returns ``None`` when
    the domain lacks the compiled backend or the query does not compile.
    """
    if not registry_capability(domain, "supports_compiled_algebra"):
        return None
    from ..relational.compile import CompilationError, compile_query

    try:
        compiled = compile_query(query, state.schema, domain)
    except CompilationError:
        return None
    names = [variable.name for variable in variables]
    if sorted(names) != list(compiled.output):
        return None  # an exotic free_order: do not risk misaligned columns
    order = [compiled.output.index(name) for name in names]
    rows = [
        tuple(row[position] for position in order)
        for row in compiled.execute(state, domain).rows
    ]
    rows.sort(key=repr)
    return rows


def _inferred_bounds(
    pure: Formula, variables: Sequence[Var], domain: Domain
) -> Optional[List[IntervalSet]]:
    """Per-variable interval bounds of the expanded query, carrier-clipped."""
    if not variables or not domain_is_ordered(domain):
        return None
    analysis = BoundAnalysis(assume_nonempty=True)
    inferred = analysis.free_variable_intervals(
        pure, [variable.name for variable in variables]
    )
    try:
        natural_floor = domain.contains(0) and not domain.contains(-1)
    except NotImplementedError:  # pragma: no cover - all shipped domains answer
        natural_floor = False
    sets = []
    for variable in variables:
        interval_set = inferred[variable.name]
        if natural_floor:
            interval_set = interval_set.intersect(IntervalSet.at_least(0))
        sets.append(interval_set)
    return sets


def _bounded_columns(
    bounds: Optional[List[IntervalSet]],
    variables: Sequence[Var],
    domain: Domain,
    cap: int,
) -> Tuple[Optional[List[List[Element]]], Tuple[str, ...]]:
    """Finite per-variable candidate columns, when every bound is two-sided.

    The grid product is *complete* for the natural-semantics answer (the
    bounds are implied by the query), so on fully bounded queries the
    dovetail never runs.  Bails to ``(None, names)`` when any variable stays
    unbounded or the grid would exceed ``cap``.
    """
    if bounds is None:
        return None, ()
    bounded_names = tuple(
        variable.name
        for variable, interval_set in zip(variables, bounds)
        if interval_set.is_empty or interval_set.bounded
    )
    if len(bounded_names) < len(variables):
        return None, bounded_names
    columns: List[List[Element]] = []
    volume = 1
    for interval_set in bounds:
        if interval_set.is_empty:
            empties: List[List[Element]] = [[] for _ in variables]
            return empties, bounded_names
        if interval_set.size() > cap:
            return None, bounded_names
        values: List[Element] = [
            value for value in interval_set.values() if domain.contains(value)
        ]
        columns.append(values)
        volume *= max(1, len(values))
        if volume > cap:
            return None, bounded_names
    return columns, bounded_names


def answer_by_enumeration(
    query: Formula,
    state: DatabaseState,
    domain: Domain,
    max_rows: int = 1000,
    max_candidates: int = 10_000,
    free_order: Optional[Sequence[Var]] = None,
    budget: Optional[Budget] = None,
    candidate_source: str = "auto",
    stats: Optional[CandidateStats] = None,
    deadline: Optional[Deadline] = None,
) -> Answer:
    """Answer ``query`` in ``state`` using the Section 1.1 algorithm.

    Requires a domain with a decision procedure.  Returns a
    :class:`FiniteAnswer` when the algorithm terminates (which it always does
    for finite queries, given enough budget), and an :class:`UnknownAnswer`
    carrying the rows found so far when the budget is exhausted.  ``budget``
    takes precedence over the legacy ``max_rows`` / ``max_candidates``
    keywords.

    ``candidate_source`` selects the witness generator: ``"auto"`` (the
    default) seeds the search with the compiled active-domain superset
    intersected with the inferred per-variable bounds, falling back to the
    blind dovetail; ``"dovetail"`` forces the paper's original enumeration
    (kept for differential testing and benchmarking).  Pass a
    :class:`CandidateStats` to observe what ran.

    A ``deadline`` (carrying a cancel token) replaces the internally started
    clock.  Enumeration keeps its contract of *returning* an
    :class:`UnknownAnswer` when time runs out — only an explicit
    cancellation raises (:class:`~repro.engine.budget.Cancelled`).
    """
    if budget is None:
        budget = Budget(max_rows=max_rows, max_candidates=max_candidates)
    if candidate_source not in ("auto", "dovetail"):
        raise ValueError(
            f"candidate_source must be 'auto' or 'dovetail', got "
            f"{candidate_source!r}"
        )
    clock = deadline if deadline is not None else budget.start()
    pure = expand_database_atoms(query, state)
    if free_order is None:
        variables = sorted(free_variables(pure), key=lambda v: v.name)
    else:
        variables = list(free_order)
    arity = len(variables)
    stats = stats if stats is not None else CandidateStats()

    compiled_rows: Optional[List[Tuple[Element, ...]]] = None
    box_columns: Optional[List[List[Element]]] = None
    if candidate_source == "auto":
        bounds = _inferred_bounds(pure, variables, domain)
        compiled_rows = _compiled_superset(query, state, domain, variables)
        if compiled_rows is not None and bounds is not None:
            # The compiled superset, intersected with the inferred bounds.
            compiled_rows = [
                row
                for row in compiled_rows
                if all(
                    not isinstance(value, int)
                    or isinstance(value, bool)
                    or interval_set.contains(value)
                    for value, interval_set in zip(row, bounds)
                )
            ]
        box_columns, bounded_names = _bounded_columns(
            bounds, variables, domain, budget.max_candidates
        )
        stats.bounded_variables = bounded_names
        if compiled_rows is not None:
            stats.compiled_rows = len(compiled_rows)
    stats.generator = "+".join(
        part
        for part in (
            "compiled" if compiled_rows is not None else "",
            "bounded" if box_columns is not None else "dovetail",
        )
        if part
    )

    def candidate_stream() -> Iterator[Tuple[Element, ...]]:
        if compiled_rows:
            yield from compiled_rows
        if box_columns is not None:
            yield from itertools.product(*box_columns)
        else:
            yield from enumerate_tuples(domain, arity, budget.max_candidates)

    found: List[Tuple[Element, ...]] = []
    #: candidates that already failed the decision procedure — ``pure`` is
    #: fixed across rounds, so a rejection is permanent and each candidate
    #: is decision-tested at most once over the whole run
    rejected: Set[Tuple[Element, ...]] = set()

    def excluded_formula() -> Formula:
        exclusions = []
        for row in found:
            row_equalities = conj(
                *(Equals(v, Const(value)) for v, value in zip(variables, row))
            )
            exclusions.append(neg(row_equalities))
        return conj(pure, *exclusions)

    def out_of_time() -> UnknownAnswer:
        return UnknownAnswer(
            Relation(arity, found),
            reason=f"time budget of {budget.time_limit}s exhausted",
            method="enumeration",
        )

    while len(found) < budget.max_rows:
        if deadline is not None:
            deadline.check_cancelled("enumeration round")
        if clock.expired:
            return out_of_time()
        remaining = excluded_formula()
        more_exists = exists_many([v.name for v in variables], remaining)
        if not domain.decide(more_exists):
            return FiniteAnswer(Relation(arity, found), method="enumeration")
        # Some further tuple satisfies the query; search for it.
        located = False
        seen_this_round: Set[Tuple[Element, ...]] = set()
        for candidate in candidate_stream():
            if len(seen_this_round) >= budget.max_candidates:
                break
            if deadline is not None:
                deadline.check_cancelled("enumeration candidate")
            if clock.expired:
                return out_of_time()
            if candidate in seen_this_round:
                continue  # the generators may overlap; test each tuple once
            seen_this_round.add(candidate)
            if candidate in found or candidate in rejected:
                continue
            instantiated = substitute(
                pure, {v: Const(value) for v, value in zip(variables, candidate)}
            )
            stats.examined += 1
            if domain.decide(instantiated):
                found.append(candidate)
                located = True
                break
            rejected.add(candidate)
        if not located:
            return UnknownAnswer(
                Relation(arity, found),
                reason=f"a further answer row exists but was not found among the "
                f"first {budget.max_candidates} candidate tuples",
                method="enumeration",
            )
    return UnknownAnswer(
        Relation(arity, found),
        reason=f"row budget of {budget.max_rows} exhausted; the answer may be infinite",
        method="enumeration",
    )
