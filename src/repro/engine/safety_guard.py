"""Safety-guarded query answering (a thin shim over :class:`GuardedPlan`).

The paper discusses two disciplines for keeping answers finite:

* restrict queries to an *effective syntax* before they reach the engine
  (every admitted query is finite, and no expressive power over the finite
  queries is lost — when such a syntax exists); or
* run a *relative safety* check against the actual state and refuse to
  materialise infinite answers.

``GuardedEngine`` packages both disciplines around a
:class:`~repro.engine.evaluator.QueryEngine`.

.. deprecated::
   New code should use :func:`repro.connect` / :class:`repro.api.Session`,
   which install these guards automatically from the domain registry and
   expose the guard's decisions through first-class
   :class:`~repro.engine.plans.GuardedPlan` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..logic.formulas import Formula
from ..relational.state import DatabaseState, Element
from ..safety.classes import SafetyVerdict
from ..safety.effective_syntax import EffectiveSyntax
from ..safety.relative_safety import RelativeSafetyDecider
from .answers import Answer
from .budget import Budget
from .evaluator import QueryEngine
from .plans import GuardedPlan, plan_for_strategy

__all__ = ["GuardedEngine", "GuardResult"]


@dataclass(frozen=True)
class GuardResult:
    """The outcome of a guarded query: the answer plus what the guard did."""

    answer: Answer
    admitted_query: Formula
    verdict: Optional[SafetyVerdict] = None
    rewritten: bool = False


class GuardedEngine:
    """A query engine that applies a syntax restriction and/or a safety check."""

    def __init__(
        self,
        engine: QueryEngine,
        syntax: Optional[EffectiveSyntax] = None,
        safety: Optional[RelativeSafetyDecider] = None,
    ):
        self._engine = engine
        self._syntax = syntax
        self._safety = safety

    def plan(
        self,
        strategy: str = "auto",
        budget: Optional[Budget] = None,
        extra_elements: Iterable[Element] = (),
    ) -> GuardedPlan:
        """The :class:`GuardedPlan` this engine would execute."""
        inner = plan_for_strategy(
            strategy, self._engine.domain, budget, extra_elements=tuple(extra_elements)
        )
        return GuardedPlan(inner=inner, syntax=self._syntax, safety=self._safety)

    def answer(
        self,
        query: Formula,
        state: DatabaseState,
        strategy: str = "auto",
        budget: Optional[Budget] = None,
        **engine_options,
    ) -> GuardResult:
        """Answer ``query`` after applying the configured guards.

        ``budget`` takes precedence over the legacy ``max_rows`` /
        ``max_candidates`` keywords.
        """
        max_rows = engine_options.pop("max_rows", 1000)
        max_candidates = engine_options.pop("max_candidates", 10_000)
        if budget is None:
            budget = Budget(max_rows=max_rows, max_candidates=max_candidates)
        extra_elements = tuple(engine_options.pop("extra_elements", ()))
        if engine_options:
            raise TypeError(f"unknown engine options: {sorted(engine_options)}")
        plan = self.plan(strategy, budget, extra_elements)
        outcome = plan.run(query, state)
        return GuardResult(
            answer=outcome.answer,
            admitted_query=outcome.admitted_query,
            verdict=outcome.verdict,
            rewritten=outcome.rewritten,
        )
