"""Safety-guarded query answering.

The paper discusses two disciplines for keeping answers finite:

* restrict queries to an *effective syntax* before they reach the engine
  (every admitted query is finite, and no expressive power over the finite
  queries is lost — when such a syntax exists); or
* run a *relative safety* check against the actual state and refuse to
  materialise infinite answers.

``GuardedEngine`` packages both disciplines around a
:class:`~repro.engine.evaluator.QueryEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..logic.formulas import Formula
from ..relational.state import DatabaseState
from ..safety.classes import FinitenessStatus, SafetyVerdict
from ..safety.effective_syntax import EffectiveSyntax
from ..safety.relative_safety import RelativeSafetyDecider
from .answers import Answer, InfiniteAnswer, UnknownAnswer
from .evaluator import QueryEngine

__all__ = ["GuardedEngine", "GuardResult"]


@dataclass(frozen=True)
class GuardResult:
    """The outcome of a guarded query: the answer plus what the guard did."""

    answer: Answer
    admitted_query: Formula
    verdict: Optional[SafetyVerdict] = None
    rewritten: bool = False


class GuardedEngine:
    """A query engine that applies a syntax restriction and/or a safety check."""

    def __init__(
        self,
        engine: QueryEngine,
        syntax: Optional[EffectiveSyntax] = None,
        safety: Optional[RelativeSafetyDecider] = None,
    ):
        self._engine = engine
        self._syntax = syntax
        self._safety = safety

    def answer(
        self,
        query: Formula,
        state: DatabaseState,
        strategy: str = "auto",
        **engine_options,
    ) -> GuardResult:
        """Answer ``query`` after applying the configured guards."""
        admitted = query
        rewritten = False
        if self._syntax is not None and not self._syntax.contains(query):
            admitted = self._syntax.restrict(query)
            rewritten = True

        verdict: Optional[SafetyVerdict] = None
        if self._safety is not None:
            verdict = self._safety.decide(admitted, state)
            if verdict.status is FinitenessStatus.INFINITE:
                from ..relational.state import Relation
                from ..logic.analysis import free_variables

                arity = len(free_variables(admitted))
                return GuardResult(
                    answer=InfiniteAnswer(
                        Relation(arity, []),
                        reason="rejected by the relative-safety guard: "
                        + verdict.details,
                        method=verdict.method,
                    ),
                    admitted_query=admitted,
                    verdict=verdict,
                    rewritten=rewritten,
                )

        answer = self._engine.answer(admitted, state, strategy=strategy, **engine_options)
        return GuardResult(
            answer=answer, admitted_query=admitted, verdict=verdict, rewritten=rewritten
        )
