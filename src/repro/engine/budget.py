"""Resource budgets for query answering.

The Section 1.1 enumeration algorithm terminates on finite queries but can
run forever on infinite ones, and the trace-domain safety checks can only
*semi*-decide halting.  Every evaluation entry point therefore accepts a
:class:`Budget` bounding the work it may perform; when a budget is exhausted
the engine returns an :class:`~repro.engine.answers.UnknownAnswer` instead of
looping.

``Budget`` replaces the ``max_rows`` / ``max_candidates`` / ``fuel`` keyword
arguments that used to be threaded separately through the evaluator, the
enumeration algorithm, and the safety guards.  The old keywords remain
accepted by the legacy shims for backwards compatibility.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

__all__ = [
    "Budget",
    "BudgetClock",
    "CancelToken",
    "Deadline",
    "EvaluationInterrupted",
    "DeadlineExceeded",
    "Cancelled",
]


@dataclass(frozen=True)
class Budget:
    """Bounds on the work a single query evaluation may perform.

    * ``max_rows`` — answer rows materialised before giving up (the answer
      may be infinite);
    * ``max_candidates`` — candidate tuples examined between two answer rows
      during enumeration;
    * ``fuel`` — simulation steps granted to fuel-bounded semi-decision of
      relative safety (the trace domain's ``semi_decide``);
    * ``time_limit`` — optional wall-clock bound in seconds.  Enumeration
      returns an ``UnknownAnswer`` when it runs out; every other strategy
      raises :class:`DeadlineExceeded` from a cooperative checkpoint (see
      :class:`Deadline`).
    """

    max_rows: int = 1000
    max_candidates: int = 10_000
    fuel: int = 10_000
    time_limit: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("max_rows", "max_candidates", "fuel"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
        if self.time_limit is not None and self.time_limit < 0:
            raise ValueError(f"time_limit must be non-negative, got {self.time_limit!r}")

    def start(self) -> "BudgetClock":
        """Start a wall clock for this budget (a no-op without a time limit)."""
        return BudgetClock(self)

    def start_deadline(self, token: "Optional[CancelToken]" = None) -> "Deadline":
        """Start a :class:`Deadline` — a budget clock that *raises* on expiry
        and honours cooperative cancellation through ``token``."""
        return Deadline(self, token)

    def replace(self, **changes) -> "Budget":
        """A copy of this budget with the given fields changed."""
        return replace(self, **changes)

    def describe(self) -> str:
        """A one-line human-readable summary of the bounds."""
        parts = [
            f"max_rows={self.max_rows}",
            f"max_candidates={self.max_candidates}",
            f"fuel={self.fuel}",
        ]
        if self.time_limit is not None:
            parts.append(f"time_limit={self.time_limit}s")
        return "Budget(" + ", ".join(parts) + ")"


class BudgetClock:
    """A started budget: tracks wall-clock expiry for one evaluation."""

    __slots__ = ("budget", "_deadline")

    def __init__(self, budget: Budget):
        self.budget = budget
        if budget.time_limit is None:
            self._deadline: Optional[float] = None
        else:
            self._deadline = time.monotonic() + budget.time_limit

    @property
    def expired(self) -> bool:
        """True iff the budget's wall-clock limit has been reached."""
        return self._deadline is not None and time.monotonic() >= self._deadline

    def remaining(self) -> Optional[float]:
        """Seconds left on the clock, or ``None`` when there is no time limit."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())


class EvaluationInterrupted(RuntimeError):
    """Base of the structured interruptions a :class:`Deadline` raises.

    Carries the operator (or loop label) the execution had reached and the
    partial statistics object the substrate was filling when the checkpoint
    fired — surfaced by ``Plan.explain()`` and the serving layer's error
    bodies, so an aborted query still says how far it got.
    """

    def __init__(
        self,
        message: str,
        *,
        operator: Optional[str] = None,
        stats: Optional[Any] = None,
    ) -> None:
        super().__init__(message)
        self.operator = operator
        self.stats = stats

    def describe(self) -> str:
        """One line for ``explain()``: what stopped the run, and where."""
        text = str(self)
        if self.operator:
            text += f" (reached operator {self.operator})"
        summary = self.stats_summary()
        if summary:
            partial = ", ".join(f"{k}={v}" for k, v in summary.items())
            text += f"; partial stats: {partial}"
        return text

    def stats_summary(self) -> Dict[str, int]:
        """JSON-ready integer counters from the partial stats, best effort."""
        summary: Dict[str, int] = {}
        stats = self.stats
        if stats is None:
            return summary
        for name in (
            "peak_rows", "total_rows", "nodes_touched", "rows_touched",
            "tested", "narrowed",
        ):
            value = getattr(stats, name, None)
            if isinstance(value, int):
                summary[name] = value
        operator_rows = getattr(stats, "operator_rows", None)
        if isinstance(operator_rows, list):
            summary["operators_completed"] = len(operator_rows)
        return summary

    def payload(self) -> Dict[str, Any]:
        """The JSON body the server attaches to 504/499 responses."""
        return {
            "error": type(self).__name__,
            "message": str(self),
            "operator": self.operator,
            "partial_stats": self.stats_summary(),
        }


class DeadlineExceeded(EvaluationInterrupted):
    """The budget's wall-clock limit expired at a cooperative checkpoint."""


class Cancelled(EvaluationInterrupted):
    """The evaluation's :class:`CancelToken` was tripped by another thread."""


class CancelToken:
    """A cooperative cancellation flag, settable from any thread.

    The execution substrates never poll the token directly — they call
    :meth:`Deadline.check` / :meth:`Deadline.tick` at their checkpoints, and
    the deadline consults its token.  ``cancel()`` is idempotent; the first
    call wins and records the reason.
    """

    __slots__ = ("_event", "_reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled by caller") -> bool:
        """Trip the token; returns True on the first (effective) call."""
        if self._event.is_set():
            return False
        self._reason = reason
        self._event.set()
        return True

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str:
        return self._reason or "cancelled"


class Deadline(BudgetClock):
    """A started budget clock that raises at cooperative checkpoints.

    Extends :class:`BudgetClock` with two things every execution substrate
    threads through its hot loops:

    * :meth:`check` — raise :class:`Cancelled` when the token tripped, then
      :class:`DeadlineExceeded` when the wall clock expired; called between
      operators / kernel stages / morsel dispatch waves;
    * :meth:`tick` — a strided :meth:`check` for per-candidate loops (the
      tree walker's grids, interval pads): only every ``stride``-th call pays
      the ``time.monotonic()`` read, so instrumentation stays cheap.

    A deadline without a time limit *and* without a token never raises;
    callers skip constructing one entirely in that case (plans pass
    ``deadline=None`` down, and the substrates check ``is not None`` once).
    """

    __slots__ = ("token", "_stride", "_countdown")

    #: checkpoints between clock reads in strided (per-candidate) loops
    DEFAULT_STRIDE = 256

    def __init__(
        self,
        budget: Budget,
        token: Optional[CancelToken] = None,
        stride: int = DEFAULT_STRIDE,
    ) -> None:
        super().__init__(budget)
        self.token = token
        self._stride = max(1, stride)
        self._countdown = self._stride

    @property
    def active(self) -> bool:
        """True when this deadline can ever interrupt an execution."""
        return self._deadline is not None or self.token is not None

    def check(
        self, operator: str = "", stats: Optional[Any] = None
    ) -> None:
        """Raise :class:`Cancelled` / :class:`DeadlineExceeded` if due."""
        token = self.token
        if token is not None and token.cancelled:
            raise Cancelled(token.reason, operator=operator or None, stats=stats)
        if self._deadline is not None and time.monotonic() >= self._deadline:
            raise DeadlineExceeded(
                f"time limit of {self.budget.time_limit}s exceeded",
                operator=operator or None,
                stats=stats,
            )

    def check_cancelled(
        self, operator: str = "", stats: Optional[Any] = None
    ) -> None:
        """Raise only on cancellation (enumeration keeps its own expiry
        contract: time exhaustion degrades to an ``UnknownAnswer``)."""
        token = self.token
        if token is not None and token.cancelled:
            raise Cancelled(token.reason, operator=operator or None, stats=stats)

    def tick(self, operator: str = "", stats: Optional[Any] = None) -> None:
        """A strided :meth:`check` for tight per-candidate loops."""
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self._stride
            self.check(operator, stats)
