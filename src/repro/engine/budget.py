"""Resource budgets for query answering.

The Section 1.1 enumeration algorithm terminates on finite queries but can
run forever on infinite ones, and the trace-domain safety checks can only
*semi*-decide halting.  Every evaluation entry point therefore accepts a
:class:`Budget` bounding the work it may perform; when a budget is exhausted
the engine returns an :class:`~repro.engine.answers.UnknownAnswer` instead of
looping.

``Budget`` replaces the ``max_rows`` / ``max_candidates`` / ``fuel`` keyword
arguments that used to be threaded separately through the evaluator, the
enumeration algorithm, and the safety guards.  The old keywords remain
accepted by the legacy shims for backwards compatibility.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["Budget", "BudgetClock"]


@dataclass(frozen=True)
class Budget:
    """Bounds on the work a single query evaluation may perform.

    * ``max_rows`` — answer rows materialised before giving up (the answer
      may be infinite);
    * ``max_candidates`` — candidate tuples examined between two answer rows
      during enumeration;
    * ``fuel`` — simulation steps granted to fuel-bounded semi-decision of
      relative safety (the trace domain's ``semi_decide``);
    * ``time_limit`` — optional wall-clock bound in seconds for
      enumeration-based evaluation (active-domain evaluation is a single
      finite pass and is not interruptible).
    """

    max_rows: int = 1000
    max_candidates: int = 10_000
    fuel: int = 10_000
    time_limit: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("max_rows", "max_candidates", "fuel"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
        if self.time_limit is not None and self.time_limit < 0:
            raise ValueError(f"time_limit must be non-negative, got {self.time_limit!r}")

    def start(self) -> "BudgetClock":
        """Start a wall clock for this budget (a no-op without a time limit)."""
        return BudgetClock(self)

    def replace(self, **changes) -> "Budget":
        """A copy of this budget with the given fields changed."""
        return replace(self, **changes)

    def describe(self) -> str:
        """A one-line human-readable summary of the bounds."""
        parts = [
            f"max_rows={self.max_rows}",
            f"max_candidates={self.max_candidates}",
            f"fuel={self.fuel}",
        ]
        if self.time_limit is not None:
            parts.append(f"time_limit={self.time_limit}s")
        return "Budget(" + ", ".join(parts) + ")"


class BudgetClock:
    """A started budget: tracks wall-clock expiry for one evaluation."""

    __slots__ = ("budget", "_deadline")

    def __init__(self, budget: Budget):
        self.budget = budget
        if budget.time_limit is None:
            self._deadline: Optional[float] = None
        else:
            self._deadline = time.monotonic() + budget.time_limit

    @property
    def expired(self) -> bool:
        """True iff the budget's wall-clock limit has been reached."""
        return self._deadline is not None and time.monotonic() >= self._deadline

    def remaining(self) -> Optional[float]:
        """Seconds left on the clock, or ``None`` when there is no time limit."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())
