"""The legacy query-engine facade (a thin shim over :mod:`repro.engine.plans`).

``QueryEngine`` answers relational-calculus queries against a database state
over a chosen domain, picking between the two strategies the paper discusses:

* **active-domain evaluation** — sound and complete for domain-independent
  queries (and for queries already restricted by an effective syntax such as
  the active-domain restriction);
* **enumeration with the domain's decision procedure** — the Section 1.1
  algorithm, which computes the answer of *any* finite query over a decidable
  domain, at the price of a budget when the query might be infinite.

.. deprecated::
   New code should use :func:`repro.connect` / :class:`repro.api.Session`,
   which expose the same pipeline with first-class
   :class:`~repro.engine.plans.Plan` objects and
   :class:`~repro.engine.budget.Budget` bounds.  This class remains as a
   compatibility shim; its string ``strategy`` flag and ``max_rows`` /
   ``max_candidates`` keywords map directly onto plans and budgets.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..domains.base import Domain
from ..logic.formulas import Formula
from ..relational.schema import DatabaseSchema
from ..relational.state import DatabaseState, Element
from .answers import Answer, FiniteAnswer
from .budget import Budget
from .plans import ActiveDomainPlan, EnumerationPlan, Plan, plan_for_strategy

__all__ = ["QueryEngine"]


class QueryEngine:
    """Answer queries over a fixed domain and database schema."""

    def __init__(self, domain: Domain, schema: DatabaseSchema):
        self._domain = domain
        self._schema = schema

    @property
    def domain(self) -> Domain:
        """The domain queries are interpreted over."""
        return self._domain

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema states must conform to."""
        return self._schema

    def plan(
        self,
        strategy: str = "auto",
        budget: Optional[Budget] = None,
        extra_elements: Iterable[Element] = (),
    ) -> Plan:
        """The :class:`Plan` this engine would execute for ``strategy``."""
        return plan_for_strategy(
            strategy, self._domain, budget, extra_elements=tuple(extra_elements)
        )

    def answer_active_domain(
        self,
        query: Formula,
        state: DatabaseState,
        extra_elements: Iterable[Element] = (),
    ) -> FiniteAnswer:
        """Evaluate under active-domain semantics (always finite by construction)."""
        plan = ActiveDomainPlan(domain=self._domain, extra_elements=tuple(extra_elements))
        answer = plan.execute(query, state)
        assert isinstance(answer, FiniteAnswer)
        return answer

    def answer_by_enumeration(
        self,
        query: Formula,
        state: DatabaseState,
        max_rows: int = 1000,
        max_candidates: int = 10_000,
        budget: Optional[Budget] = None,
    ) -> Answer:
        """Run the Section 1.1 enumeration algorithm (needs a decidable theory).

        Raises :class:`~repro.domains.base.TheoryUndecidableError` when the
        domain has no decision procedure.
        """
        if budget is None:
            budget = Budget(max_rows=max_rows, max_candidates=max_candidates)
        return EnumerationPlan(domain=self._domain, budget=budget).execute(query, state)

    def answer(
        self,
        query: Formula,
        state: DatabaseState,
        strategy: str = "auto",
        max_rows: int = 1000,
        max_candidates: int = 10_000,
        extra_elements: Iterable[Element] = (),
        budget: Optional[Budget] = None,
    ) -> Answer:
        """Answer ``query`` in ``state`` using the requested strategy.

        ``strategy`` is ``"active-domain"``, ``"enumeration"``, or ``"auto"``
        (enumeration when the domain theory is decidable, active-domain
        semantics otherwise).  ``budget`` takes precedence over the legacy
        ``max_rows`` / ``max_candidates`` keywords.
        """
        if budget is None:
            budget = Budget(max_rows=max_rows, max_candidates=max_candidates)
        plan = plan_for_strategy(
            strategy, self._domain, budget, extra_elements=tuple(extra_elements)
        )
        return plan.execute(query, state)
