"""The query engine facade.

``QueryEngine`` answers relational-calculus queries against a database state
over a chosen domain, picking between the two strategies the paper discusses:

* **active-domain evaluation** — sound and complete for domain-independent
  queries (and for queries already restricted by an effective syntax such as
  the active-domain restriction);
* **enumeration with the domain's decision procedure** — the Section 1.1
  algorithm, which computes the answer of *any* finite query over a decidable
  domain, at the price of a fuel budget when the query might be infinite.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..domains.base import Domain, TheoryUndecidableError
from ..logic.formulas import Formula
from ..relational.calculus import evaluate_query_active_domain
from ..relational.schema import DatabaseSchema
from ..relational.state import DatabaseState, Element
from .answers import Answer, FiniteAnswer, UnknownAnswer
from .enumeration import answer_by_enumeration

__all__ = ["QueryEngine"]


class QueryEngine:
    """Answer queries over a fixed domain and database schema."""

    def __init__(self, domain: Domain, schema: DatabaseSchema):
        self._domain = domain
        self._schema = schema

    @property
    def domain(self) -> Domain:
        """The domain queries are interpreted over."""
        return self._domain

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema states must conform to."""
        return self._schema

    def answer_active_domain(
        self,
        query: Formula,
        state: DatabaseState,
        extra_elements: Iterable[Element] = (),
    ) -> FiniteAnswer:
        """Evaluate under active-domain semantics (always finite by construction)."""
        relation = evaluate_query_active_domain(
            query, state, interpretation=self._domain, extra_elements=extra_elements
        )
        return FiniteAnswer(relation, method="active-domain")

    def answer_by_enumeration(
        self,
        query: Formula,
        state: DatabaseState,
        max_rows: int = 1000,
        max_candidates: int = 10_000,
    ) -> Answer:
        """Run the Section 1.1 enumeration algorithm (needs a decidable theory)."""
        if not self._domain.has_decidable_theory:
            raise TheoryUndecidableError(
                f"domain {self._domain.name!r} has no decision procedure; "
                "enumeration-based answering is unavailable"
            )
        return answer_by_enumeration(
            query,
            state,
            self._domain,
            max_rows=max_rows,
            max_candidates=max_candidates,
        )

    def answer(
        self,
        query: Formula,
        state: DatabaseState,
        strategy: str = "auto",
        max_rows: int = 1000,
        max_candidates: int = 10_000,
        extra_elements: Iterable[Element] = (),
    ) -> Answer:
        """Answer ``query`` in ``state`` using the requested strategy.

        ``strategy`` is ``"active-domain"``, ``"enumeration"``, or ``"auto"``
        (enumeration when the domain theory is decidable, active-domain
        semantics otherwise).
        """
        if strategy == "active-domain":
            return self.answer_active_domain(query, state, extra_elements)
        if strategy == "enumeration":
            return self.answer_by_enumeration(query, state, max_rows, max_candidates)
        if strategy != "auto":
            raise ValueError(f"unknown strategy {strategy!r}")
        if self._domain.has_decidable_theory:
            return self.answer_by_enumeration(query, state, max_rows, max_candidates)
        return self.answer_active_domain(query, state, extra_elements)
