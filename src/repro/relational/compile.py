"""Compilation of relational-calculus queries into executable algebra plans.

This is the set-level reading of the paper's Section 1.1 query-answering
story: a safe calculus query is not a recipe for testing candidate tuples one
at a time but a finite relational object, and it can be *computed* as one.
The compiler turns a formula into the operator IR of
:mod:`repro.relational.exec` under **active-domain semantics** — the same
semantics as :func:`repro.relational.calculus.evaluate_query_active_domain`,
so for guard-certified (finite, domain-independent) queries the compiled
answer is exact:

* database atoms become fused scans (constant and repeated-variable filters
  applied in the same pass);
* conjunctions become n-ary hash joins, with equality and domain-predicate
  conjuncts pushed down onto the deepest operator that binds them;
* negated conjuncts become antijoins, and bare negation becomes set
  difference against an active-domain power;
* existentials become projections, universals the classical ``¬∃¬`` double
  difference, and disjunctions unions padded to a common attribute list.

Compilation is deliberately partial: formulas using domain *function*
symbols (e.g. ``succ(x)``) or unknown predicates raise
:class:`CompilationError`, and callers fall back to the tree-walking
evaluator.  A :class:`CompiledQuery` is immutable and state-independent
(the active domain is resolved at execution time), which is what makes it
cacheable across repeated queries.

Two invariants tie the compiler to every executor that consumes its plans
(the set-at-a-time interpreter in :mod:`repro.relational.exec` and the
vectorized columnar executor in :mod:`repro.relational.columnar`):

* **set semantics** — a plan node denotes a *set* of rows over its ``attrs``;
  operators may not let duplicates change answers;
* **active-domain closure** — plans reference the active domain only
  symbolically (``AdomScan``, ``CrossPad``), and every element an execution
  can produce comes from the state, the query's constants, or the explicitly
  supplied extra elements; nothing escapes that universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..logic.analysis import free_variables, functions_of
from ..logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    walk_formulas,
)
from ..logic.substitution import rename_bound_variables
from ..logic.terms import Const, Term, Var
from .active_domain import active_domain
from .exec import (
    AdomScan,
    AntiJoin,
    AttrRef,
    Comparison,
    Condition,
    ConstRef,
    CrossPad,
    DomainCondition,
    Join,
    Literal,
    PlanNode,
    Project,
    Scan,
    Select,
    UnionAll,
    ValueRef,
    plan_summary,
    run_plan,
)
from .optimize import domain_is_ordered, next_pad_column, optimize_plan
from .schema import DatabaseSchema
from .state import DatabaseState, Element, Relation

__all__ = ["CompilationError", "CompiledQuery", "compile_query"]

_UNIT = Literal((), ((),))


class CompilationError(ValueError):
    """Raised when a query has no algebra translation; callers fall back."""


@dataclass(frozen=True)
class CompiledQuery:
    """An executable algebra plan for one formula over one schema.

    >>> from repro.domains.equality import EqualityDomain
    >>> from repro.experiments.corpora import family_schema
    >>> from repro.logic.parser import parse_formula
    >>> from repro.relational.state import DatabaseState
    >>> grandfather = parse_formula("exists y. (F(x, y) & F(y, z))")
    >>> compiled = compile_query(grandfather, family_schema(), EqualityDomain())
    >>> state = DatabaseState(family_schema(), {"F": [(0, 1), (1, 2)]})
    >>> sorted(compiled.execute(state, EqualityDomain()))
    [(0, 2)]
    """

    formula: Formula
    #: output attribute order: the free variables, sorted by name (the same
    #: column order the tree-walking evaluator uses)
    output: Tuple[str, ...]
    plan: PlanNode
    #: human-readable notes from the plan optimizer (empty when the plan was
    #: compiled with ``optimize=False`` or nothing rewrote)
    notes: Tuple[str, ...] = ()

    def universe(
        self, state: DatabaseState, extra_elements: Iterable[Element] = ()
    ) -> List[Element]:
        """The explicit active domain the plan quantifies over in ``state``:
        stored elements + query constants + ``extra_elements``, in a
        deterministic order shared by every execution substrate."""
        universe = set(active_domain(state, self.formula)) | set(extra_elements)
        return sorted(universe, key=repr)

    def execute(
        self,
        state: DatabaseState,
        domain,
        extra_elements: Iterable[Element] = (),
        *,
        stats=None,
        deadline=None,
    ) -> Relation:
        """Run the plan under active-domain semantics in ``state``.

        ``stats`` and ``deadline`` are forwarded to the set executor's
        :func:`~repro.relational.exec.run_plan` (cooperative checkpoints run
        between operators when a deadline is given).
        """
        rows = run_plan(
            self.plan, state, self.universe(state, extra_elements), domain,
            stats, deadline,
        )
        return Relation(len(self.output), rows)

    def summary(self) -> str:
        """A compact census of the plan's operators, plus optimizer notes."""
        census = plan_summary(self.plan)
        if self.notes:
            census += "; optimizer: " + ", ".join(self.notes)
        return census


def compile_query(
    formula: Formula,
    schema: DatabaseSchema,
    domain,
    *,
    optimize: bool = True,
) -> CompiledQuery:
    """Compile ``formula`` into an algebra plan over ``schema``.

    ``domain`` supplies the predicate signature (checked at compile time) and
    the evaluation of domain atoms (at run time).  Raises
    :class:`CompilationError` when the formula uses function symbols or
    predicates that are neither database relations nor domain predicates.

    The emitted plan is rewritten by the logical optimizer
    (:mod:`repro.relational.optimize`) unless ``optimize=False`` — the
    unoptimized plan is kept reachable for benchmarking and differential
    testing, since both must compute the same answer.

    >>> from repro.domains.equality import EqualityDomain
    >>> from repro.experiments.corpora import family_schema
    >>> from repro.logic.parser import parse_formula
    >>> grandfather = parse_formula("exists y. (F(x, y) & F(y, z))")
    >>> compiled = compile_query(grandfather, family_schema(), EqualityDomain())
    >>> compiled.output
    ('x', 'z')
    >>> compiled.summary()
    '2 scans, 1 project, 1 join'
    """
    functions = sorted(functions_of(formula))
    if functions:
        raise CompilationError(
            f"function symbol(s) {', '.join(map(repr, functions))} have no "
            "algebra translation; only relational atoms compile"
        )
    signature = getattr(domain, "signature", None)
    for sub in walk_formulas(formula):
        if isinstance(sub, Atom) and sub.predicate not in schema:
            if signature is None or not signature.has_predicate(sub.predicate):
                raise CompilationError(
                    f"predicate {sub.predicate!r} is neither a database "
                    "relation nor a domain predicate"
                )
    compiler = _Compiler(schema)
    root = compiler.compile(rename_bound_variables(formula))
    output = tuple(sorted(v.name for v in free_variables(formula)))
    plan = _align(root, output)
    notes: Tuple[str, ...] = ()
    if optimize:
        plan, notes = optimize_plan(plan, ordered=domain_is_ordered(domain))
    return CompiledQuery(formula, output, plan, notes)


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


def _fv(formula: Formula) -> Set[str]:
    return {v.name for v in free_variables(formula)}


def _align(node: PlanNode, attrs: Sequence[str]) -> PlanNode:
    attrs = tuple(attrs)
    return node if node.attrs == attrs else Project(node, attrs)


def _term_ref(term: Term) -> ValueRef:
    if isinstance(term, Var):
        return AttrRef(term.name)
    if isinstance(term, Const):
        return ConstRef(term.value)
    raise CompilationError(f"term {term!r} has no algebra translation")


class _Compiler:
    def __init__(self, schema: DatabaseSchema) -> None:
        self._schema = schema

    def compile(self, formula: Formula) -> PlanNode:
        """A plan whose attribute set is exactly the formula's free variables."""
        if isinstance(formula, And):
            return self._conjunction(_flatten_and(formula))
        if isinstance(formula, Or):
            return self._disjunction(formula)
        if isinstance(formula, Exists):
            return self._exists(formula)
        if isinstance(formula, ForAll):
            return self.compile(Not(Exists(formula.var, Not(formula.body))))
        if isinstance(formula, Implies):
            return self.compile(Or((Not(formula.antecedent), formula.consequent)))
        if isinstance(formula, Iff):
            return self.compile(Or((
                And((formula.left, formula.right)),
                And((Not(formula.left), Not(formula.right))),
            )))
        return self._conjunction([formula])

    # -- quantifiers and disjunction ----------------------------------------

    def _exists(self, formula: Exists) -> PlanNode:
        inner = self.compile(formula.body)
        if formula.var in inner.attrs:
            return Project(
                inner, tuple(a for a in inner.attrs if a != formula.var)
            )
        # Vacuous quantifier: under active-domain semantics it still requires
        # a witness, so an empty universe makes the formula false.
        witness = Project(AdomScan((formula.var,)), ())
        return Join((inner, witness), inner.attrs)

    def _disjunction(self, formula: Or) -> PlanNode:
        target = tuple(sorted(_fv(formula)))
        parts = []
        for disjunct in formula.disjuncts:
            node = self.compile(disjunct)
            missing = tuple(a for a in target if a not in node.attrs)
            if missing:
                node = CrossPad(node, missing, node.attrs + missing)
            parts.append(_align(node, target))
        return UnionAll(tuple(parts), target)

    # -- conjunctions (the workhorse) ---------------------------------------

    def _conjunction(self, conjuncts: Sequence[Formula]) -> PlanNode:
        generators: List[PlanNode] = []
        #: (condition, attribute names it needs bound)
        deferred: List[Tuple[Condition, Set[str]]] = []
        #: plans for negated conjuncts, applied as antijoins
        antijoins: List[PlanNode] = []
        #: variables that must range over the active domain (e.g. from x = x)
        required: Set[str] = set()
        #: positive var = const equations, turned into literal generators when
        #: nothing else binds the variable
        anchors: List[Tuple[str, Element]] = []

        for conjunct in conjuncts:
            self._gather(conjunct, generators, deferred, antijoins, required, anchors)

        bound: Set[str] = set()
        for generator in generators:
            bound |= set(generator.attrs)
        for name, value in anchors:
            if name in bound:
                deferred.append((Comparison(AttrRef(name), ConstRef(value)), {name}))
            else:
                generators.append(Literal((name,), ((value,),)))
                bound.add(name)

        # Selection pushdown: attach each condition to the first generator
        # that already binds everything it needs.
        leftover: List[Tuple[Condition, Set[str]]] = []
        for condition, needed in deferred:
            for index, generator in enumerate(generators):
                if needed <= set(generator.attrs):
                    generators[index] = _fuse_select(generator, condition)
                    break
            else:
                leftover.append((condition, needed))

        if not generators:
            current: PlanNode = _UNIT
        elif len(generators) == 1:
            current = generators[0]
        else:
            seen: List[str] = []
            for generator in generators:
                for attr in generator.attrs:
                    if attr not in seen:
                        seen.append(attr)
            current = Join(tuple(generators), tuple(seen))

        missing: Set[str] = set(required)
        for _, needed in leftover:
            missing |= needed
        for negated in antijoins:
            missing |= set(negated.attrs)
        missing -= set(current.attrs)

        # Interleaved pad/filter: instead of one CrossPad over every missing
        # variable followed by one big Select, pad one column at a time and
        # fire each remaining condition the moment its attributes are bound,
        # so filters cut the row set between pads rather than after the full
        # |adom|^k product.  (The optimizer then turns pad+comparison pairs
        # into interval joins on ordered domains.)
        pending = list(leftover)

        def attach_ready() -> None:
            nonlocal current, pending
            bound = set(current.attrs)
            ready = [c for c, needed in pending if needed <= bound]
            if ready:
                current = _fuse_conditions(current, tuple(ready))
                pending = [(c, n) for c, n in pending if c not in ready]

        attach_ready()
        while missing:
            column = next_pad_column(
                set(current.attrs),
                sorted(missing),
                [needed for _, needed in pending],
            )
            missing.remove(column)
            current = CrossPad(current, (column,), current.attrs + (column,))
            attach_ready()
        if pending:  # unreachable by construction, but keep plans total
            current = _fuse_conditions(
                current, tuple(condition for condition, _ in pending)
            )
        for negated in antijoins:
            current = AntiJoin(current, negated, current.attrs)
        return current

    def _gather(
        self,
        conjunct: Formula,
        generators: List[PlanNode],
        deferred: List[Tuple[Condition, Set[str]]],
        antijoins: List[PlanNode],
        required: Set[str],
        anchors: List[Tuple[str, Element]],
    ) -> None:
        if isinstance(conjunct, Top):
            return
        if isinstance(conjunct, Bottom):
            generators.append(Literal((), ()))
            return
        if isinstance(conjunct, Equals):
            self._gather_equality(conjunct, False, generators, deferred, required, anchors)
            return
        if isinstance(conjunct, Atom):
            if conjunct.predicate in self._schema:
                generators.append(self._scan(conjunct))
            else:
                condition = DomainCondition(
                    conjunct.predicate, tuple(_term_ref(a) for a in conjunct.args)
                )
                deferred.append((condition, _fv(conjunct)))
            return
        if isinstance(conjunct, Not):
            body = conjunct.body
            if isinstance(body, Equals):
                self._gather_equality(body, True, generators, deferred, required, anchors)
                return
            if isinstance(body, Atom) and body.predicate not in self._schema:
                condition = DomainCondition(
                    body.predicate,
                    tuple(_term_ref(a) for a in body.args),
                    negated=True,
                )
                deferred.append((condition, _fv(body)))
                return
            if isinstance(body, Top):
                generators.append(Literal((), ()))
                return
            if isinstance(body, Bottom):
                return
            antijoins.append(self.compile(body))
            return
        # Compound conjunct (quantifier, disjunction, ...): compile standalone.
        generators.append(self.compile(conjunct))

    def _gather_equality(
        self,
        equality: Equals,
        negated: bool,
        generators: List[PlanNode],
        deferred: List[Tuple[Condition, Set[str]]],
        required: Set[str],
        anchors: List[Tuple[str, Element]],
    ) -> None:
        left, right = equality.left, equality.right
        if isinstance(left, Const) and isinstance(right, Const):
            holds = (left.value == right.value) != negated
            if not holds:
                generators.append(Literal((), ()))
            return
        if isinstance(left, Const):
            left, right = right, left
        if isinstance(right, Const):
            if not isinstance(left, Var):
                raise CompilationError(f"term {left!r} has no algebra translation")
            if negated:
                deferred.append(
                    (Comparison(AttrRef(left.name), ConstRef(right.value), True),
                     {left.name}),
                )
            else:
                anchors.append((left.name, right.value))
            return
        if not (isinstance(left, Var) and isinstance(right, Var)):
            raise CompilationError(
                f"equality over {left!r} and {right!r} has no algebra translation"
            )
        if left.name == right.name:
            if negated:
                generators.append(Literal((left.name,), ()))
            else:
                required.add(left.name)
            return
        deferred.append(
            (Comparison(AttrRef(left.name), AttrRef(right.name), negated),
             {left.name, right.name}),
        )

    def _scan(self, atom: Atom) -> PlanNode:
        relation = self._schema.relation(atom.predicate)
        if len(atom.args) != relation.arity:
            # The stored relation holds no rows of this arity, so the atom is
            # unsatisfiable — mirror the evaluator, which answers False.
            names: List[str] = []
            for arg in atom.args:
                if isinstance(arg, Var) and arg.name not in names:
                    names.append(arg.name)
            return Literal(tuple(names), ())
        columns: List[Optional[str]] = []
        constants: List[Tuple[int, Element]] = []
        attrs: List[str] = []
        for index, arg in enumerate(atom.args):
            if isinstance(arg, Var):
                columns.append(arg.name)
                if arg.name not in attrs:
                    attrs.append(arg.name)
            elif isinstance(arg, Const):
                columns.append(None)
                constants.append((index, arg.value))
            else:
                raise CompilationError(f"term {arg!r} has no algebra translation")
        return Scan(atom.predicate, tuple(columns), tuple(constants), tuple(attrs))


def _fuse_select(node: PlanNode, condition: Condition) -> PlanNode:
    if isinstance(node, Select):
        return Select(node.source, node.conditions + (condition,), node.attrs)
    return Select(node, (condition,), node.attrs)


def _fuse_conditions(node: PlanNode, conditions: Tuple[Condition, ...]) -> PlanNode:
    for condition in conditions:
        node = _fuse_select(node, condition)
    return node


def _flatten_and(formula: And) -> List[Formula]:
    conjuncts: List[Formula] = []
    for conjunct in formula.conjuncts:
        if isinstance(conjunct, And):
            conjuncts.extend(_flatten_and(conjunct))
        else:
            conjuncts.append(conjunct)
    return conjuncts
