"""Columnar (vectorized) execution of compiled relational-algebra plans.

This is the third execution substrate, sitting on top of the same operator IR
that :mod:`repro.relational.exec` interprets set-at-a-time:

* relations are encoded as **column stores** — one ``np.int64`` code per
  attribute value, with a dictionary-encoded carrier
  (:class:`ElementCodec`) whenever elements are not machine-sized integers
  (strings, mixed carriers, bignums);
* scans, selections, and equality filters run as **array masks**;
* joins are **sort-based** (:func:`repro.relational.kernels.join_indices`,
  built on ``np.unique`` + ``np.searchsorted``), antijoins are membership
  masks, and active-domain padding is an array broadcast.

Invariants (shared with the tree walker and the set executor):

* **set semantics** — tables are deduplicated at every operator whose output
  could contain duplicates, so row multiplicity never leaks into answers;
* **active-domain closure** — the executor only ever materialises codes for
  elements of the explicit active domain passed to
  :func:`run_plan_vectorized` (plus the constants embedded in the plan), the
  same universe the other substrates quantify over;
* **exactness** — for every plan the decoded row set equals
  :func:`repro.relational.exec.run_plan` on the same inputs.

Vectorization is deliberately partial, mirroring how compilation itself is
partial: domain-predicate filters (``x < y``) vectorize only when the carrier
is numeric (codes *are* values) and the predicate is one of the standard
integer comparisons; anything else raises :class:`VectorizationError` and the
caller — :class:`repro.engine.plans.VectorizedAlgebraPlan` — falls back to
the set executor, recording the reason in ``explain()``.  NumPy itself is a
soft dependency: without it every plan falls back the same way.

Doctest — a vectorized scan-and-join, equal to the set executor's answer:

>>> from repro.experiments.corpora import family_schema
>>> from repro.relational.state import DatabaseState
>>> from repro.relational.compile import compile_query
>>> from repro.logic.parser import parse_formula
>>> from repro.domains.equality import EqualityDomain
>>> state = DatabaseState(family_schema(), {"F": [(0, 1), (1, 2)]})
>>> compiled = compile_query(parse_formula("exists y. (F(x, y) & F(y, z))"),
...                          state.schema, EqualityDomain())
>>> sorted(run_plan_vectorized(compiled.plan, state, [0, 1, 2], EqualityDomain()))
[(0, 2)]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Set, Tuple

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from .exec import (
    AdomScan,
    AntiJoin,
    Comparison,
    ConstRef,
    CrossPad,
    DomainCondition,
    Join,
    Literal,
    PlanNode,
    Project,
    Scan,
    Select,
    UnionAll,
    ValueRef,
    walk_plan,
)
from .state import DatabaseState, Element, Row

__all__ = [
    "HAVE_NUMPY",
    "VectorizationError",
    "ElementCodec",
    "vectorization_obstacle",
    "run_plan_vectorized",
]

#: True when numpy imported; without it every vectorized execution falls back
HAVE_NUMPY = np is not None

#: domain predicates with a vectorized kernel over *numeric* carriers; the
#: built-in numeric domains (``(N, <)``, Presburger) give these the standard
#: integer semantics, which is exactly what the array comparison computes
_NUMERIC_PREDICATES = ("<", "<=", ">", ">=")

#: |values| beyond this magnitude leave int64 passthrough territory
_INT64_LIMIT = 2 ** 62


class VectorizationError(ValueError):
    """Raised when a plan or carrier has no vectorized execution; callers
    fall back to the set-at-a-time executor."""


def vectorization_obstacle(plan: PlanNode) -> Optional[str]:
    """The *static* reason ``plan`` cannot run vectorized, or ``None``.

    This is state-independent (it depends only on the operators in the plan),
    so :class:`~repro.engine.plans.VectorizedAlgebraPlan` caches it alongside
    the compiled plan.  Carrier-dependent obstacles (e.g. a domain predicate
    over a dictionary-encoded carrier) surface later, at execution time.

    >>> from repro.relational.exec import Select, Literal, DomainCondition, AttrRef
    >>> vectorization_obstacle(Literal(("x",), ((1,),))) is None
    True
    >>> probe = Select(Literal(("x",), ()),
    ...                (DomainCondition("divides", (AttrRef("x"), AttrRef("x"))),),
    ...                ("x",))
    >>> vectorization_obstacle(probe)
    "domain predicate 'divides' has no vectorized kernel"
    """
    if not HAVE_NUMPY:
        return "numpy is not installed"
    for node in walk_plan(plan):
        if isinstance(node, Select):
            for condition in node.conditions:
                if (
                    isinstance(condition, DomainCondition)
                    and condition.predicate not in _NUMERIC_PREDICATES
                ):
                    return (
                        f"domain predicate {condition.predicate!r} has no "
                        "vectorized kernel"
                    )
    return None


# ---------------------------------------------------------------------------
# Element encoding
# ---------------------------------------------------------------------------


class ElementCodec:
    """A bijection between domain elements and ``np.int64`` codes.

    Two modes, chosen by :meth:`for_universe`:

    * **numeric passthrough** — every element is a machine-sized ``int``, so
      the code *is* the value and numeric domain predicates vectorize as
      plain array comparisons;
    * **dictionary** — elements (strings, mixed carriers, bignums) are
      assigned dense codes in a deterministic order; equality-based operators
      (scans, joins, antijoins, comparisons) still vectorize, but domain
      predicates do not, because codes no longer carry the numeric value.

    >>> codec = ElementCodec.for_universe([10, 3])
    >>> codec.numeric, codec.encode(10)
    (True, 10)
    >>> named = ElementCodec.for_universe(["eve", "adam"])
    >>> named.numeric, named.decode(named.encode("eve"))
    (False, 'eve')
    """

    def __init__(self, numeric: bool, table: Tuple[Element, ...]):
        self.numeric = numeric
        self._table = table
        self._codes: Dict[Element, int] = {
            element: code for code, element in enumerate(table)
        }

    @classmethod
    def for_universe(cls, elements: Sequence[Element]) -> "ElementCodec":
        """The codec for a finite universe: passthrough if it is all
        machine-sized ints, a dictionary otherwise."""
        universe = set(elements)
        if all(
            isinstance(element, int) and -_INT64_LIMIT < element < _INT64_LIMIT
            for element in universe
        ):
            return cls(numeric=True, table=())
        return cls(numeric=False, table=tuple(sorted(universe, key=repr)))

    def encode(self, element: Element) -> int:
        """The code of one element (raises on elements outside the universe)."""
        if self.numeric:
            return int(element)
        try:
            return self._codes[element]
        except KeyError:
            raise VectorizationError(
                f"element {element!r} is outside the encoded universe"
            ) from None

    def encodable(self, element: Element) -> bool:
        """True iff :meth:`encode` accepts ``element``."""
        if self.numeric:
            return isinstance(element, int)
        return element in self._codes

    def decode(self, code: int) -> Element:
        """The element behind one code."""
        if self.numeric:
            return int(code)
        return self._table[code]

    def encode_rows(self, rows: Sequence[Row], arity: int) -> "np.ndarray":
        """A fresh ``(len(rows), arity)`` int64 code table for ``rows``."""
        if not rows:
            return np.empty((0, arity), dtype=np.int64)
        if self.numeric:
            return np.array(list(rows), dtype=np.int64).reshape(len(rows), arity)
        codes = self._codes
        flat = [codes[value] for row in rows for value in row]
        return np.array(flat, dtype=np.int64).reshape(len(rows), arity)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Table:
    """An intermediate result: attribute names plus a deduplicated code table."""

    attrs: Tuple[str, ...]
    codes: Any  # np.ndarray of shape (rows, len(attrs))


class _ColumnarExecutor:
    """Evaluate plan nodes bottom-up on int64 code tables.

    Every method keeps the invariant that its output table is deduplicated,
    so joins never have to re-dedupe (a natural join of sets is a set)."""

    def __init__(
        self,
        state: DatabaseState,
        adom: Sequence[Element],
        codec: ElementCodec,
    ) -> None:
        from . import kernels

        self._k = kernels
        self._state = state
        self._codec = codec
        adom_rows = [(element,) for element in set(adom)]
        self._adom = codec.encode_rows(adom_rows, 1)[:, 0]
        self._relations: Dict[str, Any] = {}

    def run(self, node: PlanNode) -> _Table:
        if isinstance(node, Scan):
            return self._scan(node)
        if isinstance(node, AdomScan):
            return _Table(node.attrs, self._adom.reshape(-1, 1))
        if isinstance(node, Literal):
            rows = tuple(set(node.rows))
            return _Table(node.attrs, self._codec.encode_rows(rows, len(node.attrs)))
        if isinstance(node, Select):
            return self._select(node)
        if isinstance(node, Project):
            return self._project(node)
        if isinstance(node, Join):
            return self._join(node)
        if isinstance(node, AntiJoin):
            return self._antijoin(node)
        if isinstance(node, CrossPad):
            return self._cross_pad(node)
        if isinstance(node, UnionAll):
            parts = [self.run(part).codes for part in node.parts]
            stacked = np.concatenate(parts, axis=0) if parts else np.empty((0, 0))
            return _Table(node.attrs, self._k.unique_rows(stacked))
        raise TypeError(f"not a plan node: {node!r}")

    # -- leaves -------------------------------------------------------------

    def _relation_codes(self, name: str) -> Any:
        cached = self._relations.get(name)
        if cached is None:
            relation = self._state[name]
            cached = self._codec.encode_rows(tuple(relation.rows), relation.arity)
            self._relations[name] = cached
        return cached

    def _scan(self, node: Scan) -> _Table:
        codes = self._relation_codes(node.relation)
        mask = np.ones(codes.shape[0], dtype=bool)
        for index, value in node.constants:
            if self._codec.encodable(value):
                mask &= codes[:, index] == self._codec.encode(value)
            else:
                mask &= False
        first_seen: Dict[str, int] = {}
        for index, name in enumerate(node.columns):
            if name is None:
                continue
            if name in first_seen:
                mask &= codes[:, index] == codes[:, first_seen[name]]
            else:
                first_seen[name] = index
        output = [first_seen[name] for name in node.attrs]
        return _Table(node.attrs, self._k.unique_rows(codes[mask][:, output]))

    # -- filters ------------------------------------------------------------

    def _column(self, table: _Table, ref: ValueRef) -> Any:
        if isinstance(ref, ConstRef):
            if not self._codec.encodable(ref.value):
                # A constant outside the universe can never equal any encoded
                # value; representing it as an impossible code keeps equality
                # masks correct (inequality masks become all-True).
                return np.full(table.codes.shape[0], -1, dtype=np.int64)
            return np.full(
                table.codes.shape[0], self._codec.encode(ref.value), dtype=np.int64
            )
        return table.codes[:, table.attrs.index(ref.name)]

    def _select(self, node: Select) -> _Table:
        table = self.run(node.source)
        mask = np.ones(table.codes.shape[0], dtype=bool)
        for condition in node.conditions:
            if isinstance(condition, Comparison):
                hits = self._column(table, condition.left) == self._column(
                    table, condition.right
                )
            else:
                hits = self._domain_mask(table, condition)
            mask &= ~hits if condition.negated else hits
        result = _Table(table.attrs, table.codes[mask])
        return self._permute(result, node.attrs)

    def _domain_mask(self, table: _Table, condition: DomainCondition) -> Any:
        if not self._codec.numeric:
            raise VectorizationError(
                f"domain predicate {condition.predicate!r} over a "
                "dictionary-encoded (non-integer) carrier cannot be vectorized"
            )
        left = self._column(table, condition.args[0])
        right = self._column(table, condition.args[1])
        if condition.predicate == "<":
            return left < right
        if condition.predicate == "<=":
            return left <= right
        if condition.predicate == ">":
            return left > right
        if condition.predicate == ">=":
            return left >= right
        raise VectorizationError(  # pre-empted by vectorization_obstacle()
            f"domain predicate {condition.predicate!r} has no vectorized kernel"
        )

    def _project(self, node: Project) -> _Table:
        table = self.run(node.source)
        columns = [table.attrs.index(name) for name in node.attrs]
        return _Table(node.attrs, self._k.unique_rows(table.codes[:, columns]))

    def _permute(self, table: _Table, attrs: Tuple[str, ...]) -> _Table:
        if table.attrs == attrs:
            return table
        columns = [table.attrs.index(name) for name in attrs]
        return _Table(attrs, table.codes[:, columns])

    # -- joins --------------------------------------------------------------

    def _join(self, node: Join) -> _Table:
        pending = [self.run(part) for part in node.parts]
        while len(pending) > 1:
            best = (0, 1)
            best_cost: Optional[Tuple[bool, int]] = None
            for i in range(len(pending)):
                for j in range(i + 1, len(pending)):
                    shares = bool(set(pending[i].attrs) & set(pending[j].attrs))
                    cost = (
                        not shares,
                        pending[i].codes.shape[0] * pending[j].codes.shape[0],
                    )
                    if best_cost is None or cost < best_cost:
                        best, best_cost = (i, j), cost
            i, j = best
            left, right = pending[i], pending.pop(j)
            pending[i] = self._pairwise_join(left, right)
        return self._permute(pending[0], node.attrs)

    def _pairwise_join(self, left: _Table, right: _Table) -> _Table:
        shared = [name for name in left.attrs if name in right.attrs]
        right_only = [name for name in right.attrs if name not in shared]
        left_key = [left.attrs.index(name) for name in shared]
        right_key = [right.attrs.index(name) for name in shared]
        li, ri = self._k.join_indices(
            left.codes[:, left_key], right.codes[:, right_key]
        )
        rest = [right.attrs.index(name) for name in right_only]
        joined = np.concatenate(
            [left.codes[li], right.codes[ri][:, rest]], axis=1
        )
        # A natural join of deduplicated tables is itself duplicate-free.
        return _Table(left.attrs + tuple(right_only), joined)

    def _antijoin(self, node: AntiJoin) -> _Table:
        left = self.run(node.left)
        if left.codes.shape[0] == 0:
            return left
        right = self.run(node.right)
        shared = [name for name in left.attrs if name in right.attrs]
        if not shared:
            if right.codes.shape[0]:
                return _Table(left.attrs, left.codes[:0])
            return left
        left_key = [left.attrs.index(name) for name in shared]
        right_key = [right.attrs.index(name) for name in shared]
        mask = self._k.membership_mask(
            left.codes[:, left_key], right.codes[:, right_key]
        )
        return _Table(left.attrs, left.codes[~mask])

    def _cross_pad(self, node: CrossPad) -> _Table:
        table = self.run(node.source)
        codes = table.codes
        for _ in node.pad:
            codes = self._k.cross_pad_arrays(codes, self._adom)
        return _Table(node.attrs, codes)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _plan_constants(plan: PlanNode) -> Set[Element]:
    """Every constant embedded in the plan (scan filters, literals, refs)."""
    constants: Set[Element] = set()
    for node in walk_plan(plan):
        if isinstance(node, Scan):
            constants.update(value for _, value in node.constants)
        elif isinstance(node, Literal):
            constants.update(value for row in node.rows for value in row)
        elif isinstance(node, Select):
            for condition in node.conditions:
                refs: Tuple[ValueRef, ...]
                if isinstance(condition, Comparison):
                    refs = (condition.left, condition.right)
                else:
                    refs = condition.args
                constants.update(
                    ref.value for ref in refs if isinstance(ref, ConstRef)
                )
    return constants


def run_plan_vectorized(
    node: PlanNode,
    state: DatabaseState,
    adom: Sequence[Element],
    domain: object = None,
) -> Set[Row]:
    """Evaluate a compiled plan on NumPy code tables.

    The contract is identical to :func:`repro.relational.exec.run_plan` —
    same plan IR, same explicit active domain, same set-of-rows result — and
    the two executors always agree.  ``domain`` is accepted for signature
    parity but unused: every domain predicate that vectorizes does so by its
    standard integer semantics.  Raises :class:`VectorizationError` when the
    plan, the carrier, or the environment cannot be vectorized; callers fall
    back to the set executor.

    >>> from repro.relational.exec import AdomScan
    >>> from repro.relational.schema import DatabaseSchema
    >>> state = DatabaseState(DatabaseSchema())
    >>> sorted(run_plan_vectorized(AdomScan(("x",)), state, ["b", "a"]))
    [('a',), ('b',)]
    """
    obstacle = vectorization_obstacle(node)
    if obstacle is not None:
        raise VectorizationError(obstacle)
    universe = set(adom) | set(state.elements()) | _plan_constants(node)
    codec = ElementCodec.for_universe(tuple(universe))
    table = _ColumnarExecutor(state, adom, codec).run(node)
    decode = codec.decode
    return {tuple(decode(code) for code in row) for row in table.codes.tolist()}
