"""Columnar (vectorized) execution of compiled relational-algebra plans.

This is the third execution substrate, sitting on top of the same operator IR
that :mod:`repro.relational.exec` interprets set-at-a-time:

* relations are encoded as **column stores** — one ``np.int64`` code per
  attribute value, with a dictionary-encoded carrier
  (:class:`ElementCodec`) whenever elements are not machine-sized integers
  (strings, mixed carriers, bignums);
* scans, selections, and equality filters run as **array masks**;
* joins are **sort-based** (:func:`repro.relational.kernels.join_indices`,
  built on ``np.unique`` + ``np.searchsorted``), antijoins are membership
  masks, and active-domain padding is an array broadcast;
* the optimizer's interval operators (``IntervalJoin``/``RangeScan``) run as
  ``np.searchsorted`` over the sorted active domain, generating only the
  in-range slice instead of padding and masking;
* relation encoding is amortised by a **per-state encode cache**
  (:class:`EncodeCache`): repeated executions against an unchanged state
  reuse the already-encoded column arrays and pay only kernel time.

Invariants (shared with the tree walker and the set executor):

* **set semantics** — tables are deduplicated at every operator whose output
  could contain duplicates, so row multiplicity never leaks into answers;
* **active-domain closure** — the executor only ever materialises codes for
  elements of the explicit active domain passed to
  :func:`run_plan_vectorized` (plus the constants embedded in the plan), the
  same universe the other substrates quantify over;
* **exactness** — for every plan the decoded row set equals
  :func:`repro.relational.exec.run_plan` on the same inputs.

Vectorization is deliberately partial, mirroring how compilation itself is
partial: domain-predicate filters (``x < y``) vectorize only when the carrier
is numeric (codes *are* values) and the predicate is one of the standard
integer comparisons; anything else raises :class:`VectorizationError` and the
caller — :class:`repro.engine.plans.VectorizedAlgebraPlan` — falls back to
the set executor, recording the reason in ``explain()``.  NumPy itself is a
soft dependency: without it every plan falls back the same way.

Doctest — a vectorized scan-and-join, equal to the set executor's answer:

>>> from repro.experiments.corpora import family_schema
>>> from repro.relational.state import DatabaseState
>>> from repro.relational.compile import compile_query
>>> from repro.logic.parser import parse_formula
>>> from repro.domains.equality import EqualityDomain
>>> state = DatabaseState(family_schema(), {"F": [(0, 1), (1, 2)]})
>>> compiled = compile_query(parse_formula("exists y. (F(x, y) & F(y, z))"),
...                          state.schema, EqualityDomain())
>>> sorted(run_plan_vectorized(compiled.plan, state, [0, 1, 2], EqualityDomain()))
[(0, 2)]
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence, Set, Tuple

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from ..testing import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine.budget import Deadline

from .exec import (
    AdomScan,
    AggBound,
    AntiJoin,
    Bound,
    Comparison,
    ConstRef,
    CrossPad,
    DomainCondition,
    IntervalJoin,
    IntervalUnionScan,
    Join,
    Literal,
    PlanNode,
    Project,
    RangeScan,
    Scan,
    Select,
    UnionAll,
    ValueRef,
    walk_plan,
)
from .state import DatabaseState, Element, Row

__all__ = [
    "HAVE_NUMPY",
    "VectorizationError",
    "ElementCodec",
    "EncodeCache",
    "EncodeCacheInfo",
    "encode_cache",
    "encode_cache_info",
    "vectorization_obstacle",
    "run_plan_vectorized",
]

#: True when numpy imported; without it every vectorized execution falls back
HAVE_NUMPY = np is not None

#: domain predicates with a vectorized kernel over *numeric* carriers; the
#: built-in numeric domains (``(N, <)``, Presburger) give these the standard
#: integer semantics, which is exactly what the array comparison computes
_NUMERIC_PREDICATES = ("<", "<=", ">", ">=")

#: |values| beyond this magnitude leave int64 passthrough territory
_INT64_LIMIT = 2 ** 62


class VectorizationError(ValueError):
    """Raised when a plan or carrier has no vectorized execution; callers
    fall back to the set-at-a-time executor."""


def vectorization_obstacle(plan: PlanNode) -> Optional[str]:
    """The *static* reason ``plan`` cannot run vectorized, or ``None``.

    This is state-independent (it depends only on the operators in the plan),
    so :class:`~repro.engine.plans.VectorizedAlgebraPlan` caches it alongside
    the compiled plan.  Carrier-dependent obstacles (e.g. a domain predicate
    over a dictionary-encoded carrier) surface later, at execution time.

    >>> from repro.relational.exec import Select, Literal, DomainCondition, AttrRef
    >>> vectorization_obstacle(Literal(("x",), ((1,),))) is None
    True
    >>> probe = Select(Literal(("x",), ()),
    ...                (DomainCondition("divides", (AttrRef("x"), AttrRef("x"))),),
    ...                ("x",))
    >>> vectorization_obstacle(probe)
    "domain predicate 'divides' has no vectorized kernel"
    """
    if not HAVE_NUMPY:
        return "numpy is not installed"
    for node in walk_plan(plan):
        if isinstance(node, Select):
            for condition in node.conditions:
                if (
                    isinstance(condition, DomainCondition)
                    and condition.predicate not in _NUMERIC_PREDICATES
                ):
                    return (
                        f"domain predicate {condition.predicate!r} has no "
                        "vectorized kernel"
                    )
    return None


# ---------------------------------------------------------------------------
# Element encoding
# ---------------------------------------------------------------------------


class ElementCodec:
    """A bijection between domain elements and ``np.int64`` codes.

    Two modes, chosen by :meth:`for_universe`:

    * **numeric passthrough** — every element is a machine-sized ``int``, so
      the code *is* the value and numeric domain predicates vectorize as
      plain array comparisons;
    * **dictionary** — elements (strings, mixed carriers, bignums) are
      assigned dense codes in a deterministic order; equality-based operators
      (scans, joins, antijoins, comparisons) still vectorize, but domain
      predicates do not, because codes no longer carry the numeric value.

    Dictionary tables can *grow monotonically*: :meth:`extend` appends the
    new elements after the existing ones, so every previously assigned code
    stays valid — which is what lets the encode cache keep serving a state's
    already-encoded columns across codec changes (new query constants
    outside the carrier) instead of re-encoding from scratch.

    >>> codec = ElementCodec.for_universe([10, 3])
    >>> codec.numeric, codec.encode(10)
    (True, 10)
    >>> named = ElementCodec.for_universe(["eve", "adam"])
    >>> named.numeric, named.decode(named.encode("eve"))
    (False, 'eve')
    >>> grown = named.extend(["cain"])
    >>> grown.encode("eve") == named.encode("eve"), grown.decode(grown.encode("cain"))
    (True, 'cain')
    """

    def __init__(
        self,
        numeric: bool,
        table: Tuple[Element, ...],
        *,
        growing: bool = False,
    ):
        self.numeric = numeric
        #: True for cache-managed dictionary codecs whose table only ever
        #: grows (append-only), making their encoded columns reusable
        self.growing = growing
        self._table = table
        self._codes: Dict[Element, int] = {
            element: code for code, element in enumerate(table)
        }

    @classmethod
    def for_universe(cls, elements: Sequence[Element]) -> "ElementCodec":
        """The codec for a finite universe: passthrough if it is all
        machine-sized ints, a dictionary otherwise."""
        universe = set(elements)
        if all(
            isinstance(element, int) and -_INT64_LIMIT < element < _INT64_LIMIT
            for element in universe
        ):
            return cls(numeric=True, table=())
        return cls(numeric=False, table=tuple(sorted(universe, key=repr)))

    def extend(self, elements: Sequence[Element]) -> "ElementCodec":
        """A codec that also covers ``elements``, preserving existing codes.

        New elements are appended after the current table (sorted among
        themselves for determinism), so the result encodes every previously
        encodable element to the same code — append-only dictionary growth.
        Returns ``self`` when nothing is new.
        """
        if self.numeric:
            return self
        fresh = sorted(
            {element for element in elements if element not in self._codes},
            key=repr,
        )
        if not fresh:
            return self
        return ElementCodec(
            False, self._table + tuple(fresh), growing=self.growing
        )

    def encode(self, element: Element) -> int:
        """The code of one element (raises on elements outside the universe)."""
        if self.numeric:
            return int(element)
        try:
            return self._codes[element]
        except KeyError:
            raise VectorizationError(
                f"element {element!r} is outside the encoded universe"
            ) from None

    def encodable(self, element: Element) -> bool:
        """True iff :meth:`encode` accepts ``element``."""
        if self.numeric:
            return isinstance(element, int)
        return element in self._codes

    def decode(self, code: int) -> Element:
        """The element behind one code."""
        if self.numeric:
            return int(code)
        return self._table[code]

    def encode_rows(self, rows: Sequence[Row], arity: int) -> "np.ndarray":
        """A fresh ``(len(rows), arity)`` int64 code table for ``rows``."""
        if not rows:
            return np.empty((0, arity), dtype=np.int64)
        if self.numeric:
            return np.array(list(rows), dtype=np.int64).reshape(len(rows), arity)
        codes = self._codes
        flat = [codes[value] for row in rows for value in row]
        return np.array(flat, dtype=np.int64).reshape(len(rows), arity)

    def cache_key(self) -> Tuple[Any, ...]:
        """A hashable token identifying the element→code mapping.

        All numeric (passthrough) codecs encode identically; dictionary
        codecs encode identically iff their tables agree.  The encode cache
        keys entries by this, so plans with different constants can share one
        state's encoded columns whenever their codecs agree.  Cache-managed
        *growing* dictionary codecs share one stable key: their table only
        ever appends, so columns encoded under an earlier table version stay
        valid under every later one.
        """
        if self.numeric:
            return ("numeric",)
        if self.growing:
            return ("dictionary-growing",)
        return ("dictionary", self._table)


# ---------------------------------------------------------------------------
# The per-state encode cache
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EncodeCacheInfo:
    """A point-in-time snapshot of encode-cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    #: dictionary-table growth events (codec changes served without re-encode)
    grown: int = 0
    #: entries dropped eagerly because their state was superseded or
    #: explicitly invalidated (as opposed to LRU-pressure evictions)
    invalidated: int = 0
    #: column arrays migrated append-only to a mutated state (insert-only
    #: deltas extend the encoded arrays instead of re-encoding the relation)
    grown_columns: int = 0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} evictions={self.evictions} "
            f"size={self.size}/{self.maxsize} grown={self.grown} "
            f"invalidated={self.invalidated} grown_columns={self.grown_columns}"
        )


class EncodeCache:
    """An LRU cache of encoded relation columns, keyed per database state.

    Encoding a state's relations into int64 code tables is the O(rows)
    prologue every vectorized execution used to pay; for a serving workload
    over a slowly-changing state it dominates the (kernel) work that actually
    answers the query.  This cache keys the encoded columns by the pair
    *(state, codec key)* — states are immutable value objects with a cached
    fingerprint hash, so an unchanged state hits and a changed one can never
    serve stale columns.  Entries are filled lazily, one relation at a time,
    by the executor.

    The module-level instance (:func:`encode_cache`) is shared process-wide,
    mirroring how compiled plans are shared through the session plan cache;
    :func:`encode_cache_info` gives ``cache_info()``-style counters.

    The cache is **thread-safe**: concurrent serving sessions
    (:mod:`repro.serve`) querying states with equal ``fingerprint()`` share
    one instance, so LRU bookkeeping and codec growth happen under an
    internal lock.  The column dicts handed out by :meth:`columns_for` are
    filled *outside* the lock by the executor — that is safe because fills
    are idempotent (re-encoding the same relation of the same state yields
    equal code arrays) and single dict writes are atomic under the GIL, so a
    race at worst duplicates one relation's encode work.
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize!r}")
        self._maxsize = maxsize
        self._entries: "OrderedDict[Any, Dict[str, Any]]" = OrderedDict()
        #: per-entry growing dictionary codecs, evicted together with entries
        self._codecs: Dict[Any, ElementCodec] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._grown = 0
        self._invalidated = 0
        self._grown_columns = 0
        self._lock = threading.Lock()

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def codec_for(
        self, state: DatabaseState, universe: Sequence[Element]
    ) -> ElementCodec:
        """The codec to encode ``universe`` against ``state``'s cached columns.

        Numeric (passthrough) universes get the shared numeric codec.  For
        dictionary carriers the cache keeps one *growing* codec per state:
        a codec change (new constants outside the carrier) appends the new
        elements to the existing table instead of rebuilding it, so every
        column already encoded for the state stays valid — the codec-change
        path hits the cache instead of re-encoding from scratch.
        """
        candidate = ElementCodec.for_universe(tuple(universe))
        if candidate.numeric or self._maxsize == 0:
            return candidate
        key = (state, ("dictionary-growing",))
        with self._lock:
            prior = self._codecs.get(key)
            if prior is None:
                grown = ElementCodec(
                    False, tuple(sorted(set(universe), key=repr)), growing=True
                )
            else:
                grown = prior.extend(tuple(universe))
                if grown is not prior:
                    self._grown += 1
            self._codecs[key] = grown
            return grown

    def columns_for(
        self, state: DatabaseState, codec: ElementCodec
    ) -> Dict[str, Any]:
        """The (shared, lazily filled) relation→codes store for ``state``."""
        key = (state, codec.cache_key())
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry
            self._misses += 1
            entry = {}
            if self._maxsize == 0:
                return entry
            self._entries[key] = entry
            while len(self._entries) > self._maxsize:
                evicted_key, _ = self._entries.popitem(last=False)
                self._codecs.pop(evicted_key, None)
                self._evictions += 1
            return entry

    def invalidate(self, state: DatabaseState) -> int:
        """Eagerly drop every entry (and growing codec) keyed by ``state``.

        Superseded states' entries are *correct* (states are immutable) but
        useless once a mutation produces a successor; without this they
        linger until LRU pressure evicts them.  Returns the number of entries
        dropped; the drops are counted as ``invalidated``, not ``evictions``.
        """
        with self._lock:
            return self._invalidate_locked(state)

    def _invalidate_locked(self, state: DatabaseState) -> int:
        stale = [key for key in self._entries if key[0] is state or key[0] == state]
        for key in stale:
            del self._entries[key]
            self._codecs.pop(key, None)
            self._invalidated += 1
        for key in [k for k in self._codecs if k[0] is state or k[0] == state]:
            del self._codecs[key]
        return len(stale)

    def migrate(
        self, old_state: DatabaseState, new_state: DatabaseState, delta: Any
    ) -> int:
        """Move ``old_state``'s entries to ``new_state`` after a mutation.

        For an **insert-only** effective delta the encoded column arrays are
        grown append-only: untouched relations share the parent's arrays,
        touched ones get the inserted rows' codes concatenated after the
        existing block (growing the state's dictionary codec first when the
        new rows bring new elements).  Anything else — deletes, or an entry
        whose fixed-table codec cannot encode a new element — cannot reuse
        the arrays, so the old entries are invalidated instead.  Returns the
        number of entries migrated.
        """
        inserts: Dict[str, Any] = dict(getattr(delta, "inserts", {}) or {})
        insert_only = not getattr(delta, "deletes", None)
        with self._lock:
            if not insert_only or np is None:
                self._invalidate_locked(old_state)
                return 0
            fresh_elements = tuple(
                value for rows in inserts.values() for row in rows for value in row
            )
            migrated = 0
            for key in list(self._entries):
                if not (key[0] is old_state or key[0] == old_state):
                    continue
                entry = self._entries.pop(key)
                codec_key = key[1]
                codec = self._pick_codec(key, codec_key, fresh_elements)
                if codec is None:
                    self._invalidated += 1
                    continue
                try:
                    moved = self._grow_entry(entry, codec, inserts)
                except VectorizationError:
                    self._invalidated += 1
                    continue
                new_key = (new_state, codec_key)
                self._entries[new_key] = moved
                self._entries.move_to_end(new_key)
                if codec_key == ("dictionary-growing",):
                    self._codecs[new_key] = codec
                self._codecs.pop(key, None)
                migrated += 1
            # Any growing codec without a column entry still moves forward so
            # later encodes against the new state keep their code assignments.
            old_codec_key = (old_state, ("dictionary-growing",))
            if old_codec_key in self._codecs:
                codec = self._codecs.pop(old_codec_key).extend(fresh_elements)
                self._codecs.setdefault((new_state, ("dictionary-growing",)), codec)
            return migrated

    def _pick_codec(
        self, key: Any, codec_key: Any, fresh_elements: Sequence[Element]
    ) -> Optional[ElementCodec]:
        """The codec to encode the inserted rows under one entry's key."""
        if codec_key == ("numeric",):
            if all(
                isinstance(value, int) and -_INT64_LIMIT < value < _INT64_LIMIT
                for value in fresh_elements
            ):
                return ElementCodec(numeric=True, table=())
            return None
        if codec_key == ("dictionary-growing",):
            prior = self._codecs.get(key)
            if prior is None:
                return None
            grown = prior.extend(tuple(fresh_elements))
            if grown is not prior:
                self._grown += 1
            return grown
        # Fixed-table dictionary codecs cannot learn new elements; migrate
        # only when every inserted element is already encodable.
        prior = ElementCodec(False, codec_key[1]) if codec_key[0] == "dictionary" else None
        if prior is not None and all(prior.encodable(v) for v in fresh_elements):
            return prior
        return None

    def _grow_entry(
        self,
        entry: Dict[str, Any],
        codec: ElementCodec,
        inserts: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Append the inserted rows' codes to the touched relations' arrays."""
        moved: Dict[str, Any] = {}
        for name, codes in entry.items():
            rows = inserts.get(name)
            if not rows:
                moved[name] = codes  # untouched: share the parent's array
                continue
            ordered = tuple(rows)
            appended = codec.encode_rows(ordered, codes.shape[1])
            moved[name] = np.concatenate([codes, appended], axis=0)
            self._grown_columns += 1
        return moved

    def clear(self) -> None:
        """Drop every entry (the counters survive)."""
        with self._lock:
            self._entries.clear()
            self._codecs.clear()

    def info(self) -> EncodeCacheInfo:
        """Hit/miss/eviction counters and current occupancy."""
        with self._lock:
            return EncodeCacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self._maxsize,
                grown=self._grown,
                invalidated=self._invalidated,
                grown_columns=self._grown_columns,
            )


_ENCODE_CACHE = EncodeCache()


def encode_cache() -> EncodeCache:
    """The process-wide encode cache used by :func:`run_plan_vectorized`."""
    return _ENCODE_CACHE


def encode_cache_info() -> EncodeCacheInfo:
    """Counters for the process-wide encode cache."""
    return _ENCODE_CACHE.info()


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Table:
    """An intermediate result: attribute names plus a deduplicated code table."""

    attrs: Tuple[str, ...]
    codes: Any  # np.ndarray of shape (rows, len(attrs))


class _ColumnarExecutor:
    """Evaluate plan nodes bottom-up on int64 code tables.

    Every method keeps the invariant that its output table is deduplicated,
    so joins never have to re-dedupe (a natural join of sets is a set)."""

    def __init__(
        self,
        state: DatabaseState,
        adom: Sequence[Element],
        codec: ElementCodec,
        relation_columns: Optional[Dict[str, Any]] = None,
        deadline: "Optional[Deadline]" = None,
    ) -> None:
        from . import kernels

        self._k = kernels
        self._state = state
        self._codec = codec
        self._deadline = deadline
        adom_rows = [(element,) for element in set(adom)]
        self._adom = codec.encode_rows(adom_rows, 1)[:, 0]
        #: relation name → encoded code table; when the encode cache supplies
        #: this dict, encodings persist across executions of the same state
        self._relations: Dict[str, Any] = (
            relation_columns if relation_columns is not None else {}
        )
        self._adom_sorted: Optional[Any] = None

    def run(self, node: PlanNode) -> _Table:
        if self._deadline is not None:
            # Cooperative checkpoint between kernel stages: individual NumPy
            # kernels are uninterruptible, but the plan aborts between them.
            self._deadline.check(type(node).__name__)
        faults.fire("kernel-entry")
        if isinstance(node, Scan):
            return self._scan(node)
        if isinstance(node, AdomScan):
            return _Table(node.attrs, self._adom.reshape(-1, 1))
        if isinstance(node, RangeScan):
            return self._range_scan(node)
        if isinstance(node, IntervalJoin):
            return self._interval_join(node)
        if isinstance(node, IntervalUnionScan):
            return self._interval_union_scan(node)
        if isinstance(node, Literal):
            rows = tuple(set(node.rows))
            return _Table(node.attrs, self._codec.encode_rows(rows, len(node.attrs)))
        if isinstance(node, Select):
            return self._select(node)
        if isinstance(node, Project):
            return self._project(node)
        if isinstance(node, Join):
            return self._join(node)
        if isinstance(node, AntiJoin):
            return self._antijoin(node)
        if isinstance(node, CrossPad):
            return self._cross_pad(node)
        if isinstance(node, UnionAll):
            parts = [self.run(part).codes for part in node.parts]
            stacked = np.concatenate(parts, axis=0) if parts else np.empty((0, 0))
            return _Table(node.attrs, self._unique_rows(stacked))
        raise TypeError(f"not a plan node: {node!r}")

    # -- kernel hooks --------------------------------------------------------
    #
    # Every data-sized kernel invocation goes through one of these methods so
    # the morsel-parallel executor (:mod:`repro.relational.parallel`) can
    # override *how* a kernel runs — chunked across a worker pool — without
    # touching the operator semantics above.  Each hook is a pure function of
    # its array arguments.

    def _unique_rows(self, codes: Any) -> Any:
        """Deduplicate a code table (the set-semantics boundary kernel)."""
        return self._k.unique_rows(codes)

    def _join_codes(
        self,
        left_codes: Any,
        right_codes: Any,
        left_key: Sequence[int],
        right_key: Sequence[int],
        rest: Sequence[int],
    ) -> Any:
        """The joined code table of two tables on the given key columns."""
        li, ri = self._k.join_indices(
            left_codes[:, left_key], right_codes[:, right_key]
        )
        return np.concatenate(
            [left_codes[li], right_codes[ri][:, rest]], axis=1
        )

    def _membership(self, left_keys: Any, right_keys: Any) -> Any:
        """Which rows of ``left_keys`` appear in ``right_keys`` (semijoin mask)."""
        return self._k.membership_mask(left_keys, right_keys)

    def _pad_codes(self, codes: Any, values: Any) -> Any:
        """Cross product of a code table with one pad column over ``values``."""
        return self._k.cross_pad_arrays(codes, values)

    def _interval_pad_codes(
        self, codes: Any, values_sorted: Any, starts: Any, ends: Any
    ) -> Any:
        """Append per-row slices of the sorted adom (the IntervalJoin kernel)."""
        return self._k.interval_pad(codes, values_sorted, starts, ends)

    def _union_mask(self, starts: Any, ends: Any, size: int) -> Any:
        """Cover mask of the union of index ranges (IntervalUnionScan kernel)."""
        return self._k.range_union_mask(starts, ends, size)

    def _select_mask(
        self, table: "_Table", conditions: Tuple[Any, ...]
    ) -> Any:
        """The boolean keep-mask of a Select's conditions over one table."""
        mask = np.ones(table.codes.shape[0], dtype=bool)
        for condition in conditions:
            if isinstance(condition, Comparison):
                hits = self._column(table, condition.left) == self._column(
                    table, condition.right
                )
            else:
                hits = self._domain_mask(table, condition)
            mask &= ~hits if condition.negated else hits
        return mask

    # -- leaves -------------------------------------------------------------

    def _relation_codes(self, name: str) -> Any:
        cached = self._relations.get(name)
        if cached is None:
            relation = self._state[name]
            cached = self._codec.encode_rows(tuple(relation.rows), relation.arity)
            self._relations[name] = cached
        return cached

    def _scan(self, node: Scan) -> _Table:
        codes = self._relation_codes(node.relation)
        mask = np.ones(codes.shape[0], dtype=bool)
        for index, value in node.constants:
            if self._codec.encodable(value):
                mask &= codes[:, index] == self._codec.encode(value)
            else:
                mask &= False
        first_seen: Dict[str, int] = {}
        for index, name in enumerate(node.columns):
            if name is None:
                continue
            if name in first_seen:
                mask &= codes[:, index] == codes[:, first_seen[name]]
            else:
                first_seen[name] = index
        output = [first_seen[name] for name in node.attrs]
        return _Table(node.attrs, self._unique_rows(codes[mask][:, output]))

    # -- filters ------------------------------------------------------------

    def _column(self, table: _Table, ref: ValueRef) -> Any:
        if isinstance(ref, ConstRef):
            if not self._codec.encodable(ref.value):
                # A constant outside the universe can never equal any encoded
                # value; representing it as an impossible code keeps equality
                # masks correct (inequality masks become all-True).
                return np.full(table.codes.shape[0], -1, dtype=np.int64)
            return np.full(
                table.codes.shape[0], self._codec.encode(ref.value), dtype=np.int64
            )
        return table.codes[:, table.attrs.index(ref.name)]

    def _select(self, node: Select) -> _Table:
        table = self.run(node.source)
        mask = self._select_mask(table, node.conditions)
        result = _Table(table.attrs, table.codes[mask])
        return self._permute(result, node.attrs)

    def _domain_mask(self, table: _Table, condition: DomainCondition) -> Any:
        if not self._codec.numeric:
            raise VectorizationError(
                f"domain predicate {condition.predicate!r} over a "
                "dictionary-encoded (non-integer) carrier cannot be vectorized"
            )
        left = self._column(table, condition.args[0])
        right = self._column(table, condition.args[1])
        if condition.predicate == "<":
            return left < right
        if condition.predicate == "<=":
            return left <= right
        if condition.predicate == ">":
            return left > right
        if condition.predicate == ">=":
            return left >= right
        raise VectorizationError(  # pre-empted by vectorization_obstacle()
            f"domain predicate {condition.predicate!r} has no vectorized kernel"
        )

    def _project(self, node: Project) -> _Table:
        table = self.run(node.source)
        columns = [table.attrs.index(name) for name in node.attrs]
        return _Table(node.attrs, self._unique_rows(table.codes[:, columns]))

    def _permute(self, table: _Table, attrs: Tuple[str, ...]) -> _Table:
        if table.attrs == attrs:
            return table
        columns = [table.attrs.index(name) for name in attrs]
        return _Table(attrs, table.codes[:, columns])

    # -- joins --------------------------------------------------------------

    def _join(self, node: Join) -> _Table:
        pending = [self.run(part) for part in node.parts]
        while len(pending) > 1:
            best = (0, 1)
            best_cost: Optional[Tuple[bool, int]] = None
            for i in range(len(pending)):
                for j in range(i + 1, len(pending)):
                    shares = bool(set(pending[i].attrs) & set(pending[j].attrs))
                    cost = (
                        not shares,
                        pending[i].codes.shape[0] * pending[j].codes.shape[0],
                    )
                    if best_cost is None or cost < best_cost:
                        best, best_cost = (i, j), cost
            i, j = best
            left, right = pending[i], pending.pop(j)
            pending[i] = self._pairwise_join(left, right)
        return self._permute(pending[0], node.attrs)

    def _pairwise_join(self, left: _Table, right: _Table) -> _Table:
        shared = [name for name in left.attrs if name in right.attrs]
        right_only = [name for name in right.attrs if name not in shared]
        left_key = [left.attrs.index(name) for name in shared]
        right_key = [right.attrs.index(name) for name in shared]
        rest = [right.attrs.index(name) for name in right_only]
        joined = self._join_codes(
            left.codes, right.codes, left_key, right_key, rest
        )
        # A natural join of deduplicated tables is itself duplicate-free.
        return _Table(left.attrs + tuple(right_only), joined)

    def _antijoin(self, node: AntiJoin) -> _Table:
        left = self.run(node.left)
        if left.codes.shape[0] == 0:
            return left
        right = self.run(node.right)
        shared = [name for name in left.attrs if name in right.attrs]
        if not shared:
            if right.codes.shape[0]:
                return _Table(left.attrs, left.codes[:0])
            return left
        left_key = [left.attrs.index(name) for name in shared]
        right_key = [right.attrs.index(name) for name in shared]
        mask = self._membership(
            left.codes[:, left_key], right.codes[:, right_key]
        )
        return _Table(left.attrs, left.codes[~mask])

    def _cross_pad(self, node: CrossPad) -> _Table:
        table = self.run(node.source)
        codes = table.codes
        for _ in node.pad:
            codes = self._pad_codes(codes, self._adom)
        return _Table(node.attrs, codes)

    # -- interval operators (ordered domains only) --------------------------

    def _sorted_adom(self) -> Any:
        if self._adom_sorted is None:
            self._adom_sorted = np.sort(self._adom)
        return self._adom_sorted

    def _require_numeric(self, node: PlanNode) -> None:
        # Dictionary codes are ordered by repr, not by value, so searchsorted
        # over them would compute the wrong ranges; fall back instead.
        if not self._codec.numeric:
            raise VectorizationError(
                f"interval operator {type(node).__name__!r} over a "
                "dictionary-encoded (non-integer) carrier cannot be vectorized"
            )

    def _row_ranges(
        self, node: "IntervalJoin | IntervalUnionScan", table: _Table
    ) -> Tuple[Any, Any]:
        """Per-source-row ``[start, end)`` ranges over the sorted adom."""
        adom = self._sorted_adom()
        rows = table.codes.shape[0]
        starts = np.zeros(rows, dtype=np.int64)
        ends = np.full(rows, adom.shape[0], dtype=np.int64)
        for bound in node.lowers:
            column = self._column(table, bound.ref)
            side = "left" if bound.inclusive else "right"
            np.maximum(starts, np.searchsorted(adom, column, side=side), out=starts)
        for bound in node.uppers:
            column = self._column(table, bound.ref)
            side = "right" if bound.inclusive else "left"
            np.minimum(ends, np.searchsorted(adom, column, side=side), out=ends)
        return starts, ends

    def _interval_join(self, node: IntervalJoin) -> _Table:
        self._require_numeric(node)
        table = self.run(node.source)
        adom = self._sorted_adom()
        starts, ends = self._row_ranges(node, table)
        codes = self._interval_pad_codes(table.codes, adom, starts, ends)
        # Distinct source rows × distinct adom values stay distinct.
        return _Table(node.attrs, codes)

    def _interval_union_scan(self, node: IntervalUnionScan) -> _Table:
        # The union-of-intervals reduction: cover the sorted adom with every
        # witness row's range and emit only the covered slice — O(answer)
        # output without materialising the per-row pairs first.
        self._require_numeric(node)
        table = self.run(node.source)
        adom = self._sorted_adom()
        starts, ends = self._row_ranges(node, table)
        mask = self._union_mask(starts, ends, int(adom.shape[0]))
        return _Table(node.attrs, adom[mask].reshape(-1, 1))

    def _range_scan(self, node: RangeScan) -> _Table:
        self._require_numeric(node)
        adom = self._sorted_adom()
        lo, hi = 0, adom.shape[0]
        for is_lower, bounds in ((True, node.lowers), (False, node.uppers)):
            for bound in bounds:
                if isinstance(bound, AggBound):
                    column = self.run(bound.source).codes
                    if column.shape[0] == 0:
                        return _Table(node.attrs, self._k.empty_table(1))
                    value = int(
                        column[:, 0].min() if bound.kind == "min"
                        else column[:, 0].max()
                    )
                elif isinstance(bound.ref, ConstRef):
                    value = int(self._codec.encode(bound.ref.value))
                else:
                    raise TypeError(
                        f"RangeScan bounds must be constants or aggregates, "
                        f"got {bound!r}"
                    )
                if is_lower:
                    side = "left" if bound.inclusive else "right"
                    lo = max(lo, int(np.searchsorted(adom, value, side=side)))
                else:
                    side = "right" if bound.inclusive else "left"
                    hi = min(hi, int(np.searchsorted(adom, value, side=side)))
        if lo >= hi:
            return _Table(node.attrs, self._k.empty_table(1))
        return _Table(node.attrs, adom[lo:hi].reshape(-1, 1))


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _plan_constants(plan: PlanNode) -> Set[Element]:
    """Every constant embedded in the plan (scan filters, literals, refs)."""
    constants: Set[Element] = set()
    for node in walk_plan(plan):
        if isinstance(node, Scan):
            constants.update(value for _, value in node.constants)
        elif isinstance(node, Literal):
            constants.update(value for row in node.rows for value in row)
        elif isinstance(node, Select):
            for condition in node.conditions:
                refs: Tuple[ValueRef, ...]
                if isinstance(condition, Comparison):
                    refs = (condition.left, condition.right)
                else:
                    refs = condition.args
                constants.update(
                    ref.value for ref in refs if isinstance(ref, ConstRef)
                )
        elif isinstance(node, (IntervalJoin, IntervalUnionScan)):
            constants.update(
                bound.ref.value
                for bound in node.lowers + node.uppers
                if isinstance(bound.ref, ConstRef)
            )
        elif isinstance(node, RangeScan):
            constants.update(
                bound.ref.value
                for bound in node.lowers + node.uppers
                if isinstance(bound, Bound) and isinstance(bound.ref, ConstRef)
            )
    return constants


def _prepare_columns(
    node: PlanNode,
    state: DatabaseState,
    adom: Sequence[Element],
    *,
    cache: Optional[EncodeCache] = None,
    use_cache: bool = True,
) -> Tuple[ElementCodec, Optional[Dict[str, Any]]]:
    """The codec and (cached) relation-column store for one execution.

    Shared by :func:`run_plan_vectorized` and the morsel-parallel entry point
    (:func:`repro.relational.parallel.run_plan_parallel`), so both substrates
    amortise encoding through the same per-state cache and always agree on
    the element→code mapping.
    """
    universe = set(adom) | set(state.elements()) | _plan_constants(node)
    if use_cache:
        shared = cache if cache is not None else _ENCODE_CACHE
        # The cache owns the codec choice: for dictionary carriers it hands
        # out the state's monotonically *growing* codec, so a codec change
        # (new constants) reuses the already-encoded columns.
        codec = shared.codec_for(state, tuple(universe))
        return codec, shared.columns_for(state, codec)
    return ElementCodec.for_universe(tuple(universe)), None


def _decode_table(codec: ElementCodec, table: _Table) -> Set[Row]:
    """The set of decoded rows behind one executed code table."""
    decode = codec.decode
    return {tuple(decode(code) for code in row) for row in table.codes.tolist()}


def run_plan_vectorized(
    node: PlanNode,
    state: DatabaseState,
    adom: Sequence[Element],
    domain: object = None,
    *,
    cache: Optional[EncodeCache] = None,
    use_cache: bool = True,
    deadline: "Optional[Deadline]" = None,
) -> Set[Row]:
    """Evaluate a compiled plan on NumPy code tables.

    The contract is identical to :func:`repro.relational.exec.run_plan` —
    same plan IR, same explicit active domain, same set-of-rows result — and
    the two executors always agree.  ``domain`` is accepted for signature
    parity but unused: every domain predicate that vectorizes does so by its
    standard integer semantics.  Raises :class:`VectorizationError` when the
    plan, the carrier, or the environment cannot be vectorized; callers fall
    back to the set executor.

    Relation encoding is amortised through the per-state encode cache (the
    module-wide one, or ``cache``): repeated executions against an unchanged
    state skip the O(rows) re-encode and pay only kernel time.  Pass
    ``use_cache=False`` to force a fresh encode.

    >>> from repro.relational.exec import AdomScan
    >>> from repro.relational.schema import DatabaseSchema
    >>> state = DatabaseState(DatabaseSchema())
    >>> sorted(run_plan_vectorized(AdomScan(("x",)), state, ["b", "a"]))
    [('a',), ('b',)]
    """
    obstacle = vectorization_obstacle(node)
    if obstacle is not None:
        raise VectorizationError(obstacle)
    codec, store = _prepare_columns(
        node, state, adom, cache=cache, use_cache=use_cache
    )
    table = _ColumnarExecutor(state, adom, codec, store, deadline).run(node)
    if deadline is not None:
        deadline.check("decode")
    return _decode_table(codec, table)
