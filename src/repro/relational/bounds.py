"""Shared bound analysis: interval domains, endpoints, and inference.

The paper's central move is replacing unbounded quantification with
evaluation over finitely many *relevant* elements.  Concretely, on domains
whose carrier is totally ordered by the standard integer comparison
(``ordered_carrier`` in the registry), the comparison literals of a formula
imply per-variable *interval bounds*, and three very different consumers all
want the same analysis:

* the **plan optimizer** (:mod:`repro.relational.optimize`) turns adom pads
  filtered by comparisons into interval joins, range scans, and
  interval-union scans whose endpoints are the :class:`Bound` /
  :class:`AggBound` values defined here;
* the **tree-walking evaluator** (:mod:`repro.relational.calculus`) narrows
  each quantifier's candidate range from the full active domain to the
  inferred interval union, bisecting over the sorted adom
  (:class:`QuantifierNarrower`);
* the **enumeration engine** (:mod:`repro.engine.enumeration`) intersects
  its candidate generator with the inferred bounds of the free variables,
  so decidable ordered domains stop paying ``max_candidates`` per answer
  row.

This module is deliberately free of plan-node and registry imports (the
registry is consulted lazily by :func:`domain_is_ordered`), so every layer —
logic, relational, engine — can depend on it without cycles.

The workhorse data type is the :class:`IntervalSet`: a union of disjoint
closed integer intervals with optional open ends, normalised by the sorted
interval-merge :func:`merge_intervals` (O(n log n)).  On an integer carrier
adjacent intervals fuse exactly (``[1,3] ∪ [4,6] = [1,6]``), which is what
makes unions of *non-nested* per-witness intervals collapse:

>>> merge_intervals([(4, 6), (1, 3), (10, None)])
((1, 6), (10, None))
>>> IntervalSet.at_most(5).intersect(IntervalSet.at_least(2))
IntervalSet(parts=((2, 5),))
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)
from ..logic.terms import Const, Term, Var
from .state import DatabaseState, Element

__all__ = [
    "ORDER_PREDICATES",
    "registry_capability",
    "domain_is_ordered",
    "AttrRef",
    "ConstRef",
    "ValueRef",
    "Bound",
    "AggBound",
    "RangeBound",
    "Endpoint",
    "IntervalSet",
    "merge_intervals",
    "merge_index_ranges",
    "comparison_interval",
    "BoundAnalysis",
    "NarrowingStats",
    "QuantifierNarrower",
]

#: the comparison predicates that induce interval bounds on ordered carriers
ORDER_PREDICATES = ("<", "<=", ">", ">=")


def registry_capability(domain: Any, flag: str) -> bool:
    """The registry capability ``flag`` for ``domain``.

    Domains are looked up by their ``name`` in the registry; unregistered
    domains fall back to a same-named attribute on the instance (default
    ``False``).  This is the one place the capability-lookup pattern lives —
    :func:`domain_is_ordered` and the enumeration engine's compiled-backend
    check both go through it.
    """
    name = getattr(domain, "name", None)
    if isinstance(name, str):
        # Imported lazily: repro.domains pulls in repro.relational at
        # package-init time, so a module-level import would be circular.
        from ..domains.registry import UnknownDomainError, get_entry

        try:
            return bool(getattr(get_entry(name), flag))
        except UnknownDomainError:
            pass
    return bool(getattr(domain, flag, False))


def domain_is_ordered(domain: Any) -> bool:
    """True when ``domain`` is flagged ``ordered_carrier`` in the registry.

    Ordered means: the carrier is totally ordered by the standard integer
    comparison and the domain's ``<``/``<=``/``>``/``>=`` predicates have
    exactly that semantics, so quantifier ranges and filtered pads may be
    replaced with sorted-adom interval generation.

    >>> from repro.domains.nat_order import NaturalOrderDomain
    >>> from repro.domains.equality import EqualityDomain
    >>> domain_is_ordered(NaturalOrderDomain()), domain_is_ordered(EqualityDomain())
    (True, False)
    """
    return registry_capability(domain, "ordered_carrier")


# ---------------------------------------------------------------------------
# Value references and interval endpoints (shared by every plan executor)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttrRef:
    """A reference to an attribute (column) of the current operator."""

    name: str


@dataclass(frozen=True)
class ConstRef:
    """An inline constant value."""

    value: Element


ValueRef = Union[AttrRef, ConstRef]


@dataclass(frozen=True)
class Bound:
    """One side of an interval: a value reference plus inclusivity.

    Interval bounds are only ever emitted by the plan optimizer
    (:mod:`repro.relational.optimize`) for domains whose carrier is totally
    ordered by the standard integer comparison, so executors may compare
    elements with ``int`` semantics instead of calling
    ``domain.eval_predicate`` pointwise.
    """

    ref: ValueRef
    inclusive: bool = False


@dataclass(frozen=True)
class AggBound:
    """A bound aggregated at run time from a unary subplan.

    ``kind`` is ``"min"`` or ``"max"``.  ``AggBound(P, "min", False)`` as a
    *lower* bound encodes ``∃a ∈ P: a < x`` (the union of the nested
    intervals ``(a, ∞)`` is ``(min P, ∞)``); an empty ``P`` makes the bound —
    and therefore the whole range scan — empty, which is exactly the
    semantics of the eliminated existential witness.  ``source`` is a plan
    node of :mod:`repro.relational.exec` (typed loosely here to keep this
    module free of executor imports).
    """

    source: Any
    kind: str
    inclusive: bool = False


RangeBound = Union[Bound, AggBound]


# ---------------------------------------------------------------------------
# Interval sets
# ---------------------------------------------------------------------------

#: one end of a closed integer interval; ``None`` means unbounded
Endpoint = Optional[int]


def merge_intervals(
    intervals: Iterable[Tuple[Endpoint, Endpoint]]
) -> Tuple[Tuple[Endpoint, Endpoint], ...]:
    """The union of closed integer intervals, as sorted disjoint intervals.

    The classic sorted interval-merge, O(n log n): sort by lower end, then
    sweep, fusing intervals that overlap or are adjacent (on an integer
    carrier ``[1,3]`` and ``[4,6]`` cover exactly ``[1,6]``).  Empty
    (inverted) intervals are dropped.

    >>> merge_intervals([(5, 7), (1, 2), (3, 3), (None, 0)])
    ((None, 3), (5, 7))
    >>> merge_intervals([])
    ()
    """
    cleaned = [
        (lo, hi)
        for lo, hi in intervals
        if lo is None or hi is None or lo <= hi
    ]
    if not cleaned:
        return ()
    cleaned.sort(key=lambda part: (part[0] is not None, part[0] or 0))
    merged: List[Tuple[Endpoint, Endpoint]] = [cleaned[0]]
    for lo, hi in cleaned[1:]:
        last_lo, last_hi = merged[-1]
        if last_hi is None or (lo is not None and lo > last_hi + 1):
            if last_hi is None:
                break  # the running interval is unbounded above: covered
            merged.append((lo, hi))
        else:
            if hi is None or (last_hi is not None and hi > last_hi):
                merged[-1] = (last_lo, hi)
    return tuple(merged)


def merge_index_ranges(
    ranges: Iterable[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """The union of half-open index ranges ``[start, end)``, sorted & merged.

    The positional twin of :func:`merge_intervals`, used by the executors to
    collapse per-witness ``searchsorted``/``bisect`` slices of the sorted
    active domain into O(answer) output — the union-of-intervals reduction.

    >>> merge_index_ranges([(4, 6), (0, 2), (5, 9), (2, 3)])
    [(0, 3), (4, 9)]
    >>> merge_index_ranges([(3, 3)])
    []
    """
    cleaned = sorted((lo, hi) for lo, hi in ranges if lo < hi)
    merged: List[Tuple[int, int]] = []
    for lo, hi in cleaned:
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


@dataclass(frozen=True)
class IntervalSet:
    """A union of disjoint closed integer intervals (``None`` = unbounded).

    The abstract domain of the bound analysis: each variable's satisfying
    values are over-approximated by one of these.  ``TOP`` (everything) and
    ``EMPTY`` (nothing) are the lattice extremes; :meth:`union` and
    :meth:`intersect` keep the parts normalised through
    :func:`merge_intervals`.

    >>> evens = IntervalSet.point(2).union(IntervalSet.point(4))
    >>> evens.intersect(IntervalSet.at_least(3))
    IntervalSet(parts=((4, 4),))
    >>> IntervalSet.point(7).complement().contains(7)
    False
    """

    parts: Tuple[Tuple[Endpoint, Endpoint], ...]

    # -- constructors -------------------------------------------------------

    @classmethod
    def top(cls) -> "IntervalSet":
        return _TOP

    @classmethod
    def empty(cls) -> "IntervalSet":
        return _EMPTY

    @classmethod
    def point(cls, value: int) -> "IntervalSet":
        return cls(((value, value),))

    @classmethod
    def at_most(cls, value: int) -> "IntervalSet":
        return cls(((None, value),))

    @classmethod
    def at_least(cls, value: int) -> "IntervalSet":
        return cls(((value, None),))

    @classmethod
    def between(cls, lo: Endpoint, hi: Endpoint) -> "IntervalSet":
        if lo is not None and hi is not None and lo > hi:
            return _EMPTY
        return cls(((lo, hi),))

    # -- structure ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.parts

    @property
    def is_top(self) -> bool:
        return self.parts == ((None, None),)

    @property
    def lower(self) -> Endpoint:
        """The least element, or ``None`` when empty or unbounded below."""
        return self.parts[0][0] if self.parts else None

    @property
    def upper(self) -> Endpoint:
        """The greatest element, or ``None`` when empty or unbounded above."""
        return self.parts[-1][1] if self.parts else None

    @property
    def bounded(self) -> bool:
        """True when non-empty and bounded on both sides."""
        return bool(self.parts) and self.lower is not None and self.upper is not None

    def contains(self, value: int) -> bool:
        return any(
            (lo is None or lo <= value) and (hi is None or value <= hi)
            for lo, hi in self.parts
        )

    def values(self) -> Iterable[int]:
        """Every integer in the set (requires :attr:`bounded`)."""
        if not self.bounded:
            raise ValueError(f"interval set {self!r} is not finitely bounded")
        for lo, hi in self.parts:
            assert lo is not None and hi is not None
            yield from range(lo, hi + 1)

    def size(self) -> int:
        """The number of integers in the set (requires :attr:`bounded`)."""
        if self.is_empty:
            return 0
        if not self.bounded:
            raise ValueError(f"interval set {self!r} is not finitely bounded")
        return sum(hi - lo + 1 for lo, hi in self.parts)  # type: ignore[misc]

    # -- lattice operations -------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        if self.is_top or other.is_empty:
            return self
        if other.is_top or self.is_empty:
            return other
        return IntervalSet(merge_intervals(self.parts + other.parts))

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        if self.is_top:
            return other
        if other.is_top:
            return self
        if self.is_empty or other.is_empty:
            return _EMPTY
        pieces: List[Tuple[Endpoint, Endpoint]] = []
        for a_lo, a_hi in self.parts:
            for b_lo, b_hi in other.parts:
                lo = a_lo if b_lo is None else (b_lo if a_lo is None else max(a_lo, b_lo))
                hi = a_hi if b_hi is None else (b_hi if a_hi is None else min(a_hi, b_hi))
                if lo is None or hi is None or lo <= hi:
                    pieces.append((lo, hi))
        return IntervalSet(merge_intervals(pieces))

    def complement(self) -> "IntervalSet":
        """The integers outside the set."""
        if self.is_empty:
            return _TOP
        gaps: List[Tuple[Endpoint, Endpoint]] = []
        previous_hi: Endpoint = None
        first_lo = self.parts[0][0]
        if first_lo is not None:
            gaps.append((None, first_lo - 1))
        for index, (lo, hi) in enumerate(self.parts):
            if index > 0 and previous_hi is not None and lo is not None:
                gaps.append((previous_hi + 1, lo - 1))
            previous_hi = hi
        if previous_hi is not None:
            gaps.append((previous_hi + 1, None))
        return IntervalSet(merge_intervals(gaps))


_TOP = IntervalSet(((None, None),))
_EMPTY = IntervalSet(())

#: flipping a comparison across the argument order (``a < x`` ⟺ ``x > a``)
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
#: complementing a comparison on a total order (``¬(x < a)`` ⟺ ``x >= a``)
_COMPLEMENT = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def comparison_interval(
    predicate: str, value: int, *, var_on_left: bool = True, negated: bool = False
) -> IntervalSet:
    """The interval a comparison literal allows for its variable side.

    ``comparison_interval("<", 7)`` is the set of x with ``x < 7``; flips
    the predicate when the variable sits on the right, and complements it
    (sound on a total order) when the literal is negated.

    >>> comparison_interval("<", 7)
    IntervalSet(parts=((None, 6),))
    >>> comparison_interval("<", 7, var_on_left=False, negated=True)
    IntervalSet(parts=((None, 7),))
    """
    if not var_on_left:
        predicate = _FLIP[predicate]
    if negated:
        predicate = _COMPLEMENT[predicate]
    if predicate == "<":
        return IntervalSet.at_most(value - 1)
    if predicate == "<=":
        return IntervalSet.at_most(value)
    if predicate == ">":
        return IntervalSet.at_least(value + 1)
    if predicate == ">=":
        return IntervalSet.at_least(value)
    raise ValueError(f"not an order predicate: {predicate!r}")


# ---------------------------------------------------------------------------
# Formula-level bound inference
# ---------------------------------------------------------------------------


def _as_int(value: Element) -> Optional[int]:
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


class BoundAnalysis:
    """Infer per-variable interval bounds from a formula's comparison literals.

    For a formula F and a variable x, :meth:`intervals` returns an
    :class:`IntervalSet` that **over-approximates** the projection to x of
    F's satisfying assignments: whenever F holds with ``x = v`` (and the
    other assigned variables as in ``resolve``), ``v`` lies in the returned
    set.  Soundness therefore lets consumers *skip* everything outside the
    set — the narrowed quantifier range, the pruned candidate stream — while
    never changing an answer.

    The analysis reads:

    * comparison literals over :data:`ORDER_PREDICATES` whose other side is
      an integer constant, a resolved variable, or a sibling variable whose
      own bounds were inferred (quantifier witnesses propagate their
      envelopes: in ``∃y (S(y) ∧ x < y)``, x inherits ``x < max S``);
    * equality literals (points, and complements of points when negated);
    * database atoms, bounded by the stored column's min/max envelope when a
      ``state`` is supplied;
    * the boolean structure (∧ intersects, ∨ unions, ¬ dualises via
      De Morgan, → and ↔ expand).

    ``assume_nonempty`` states that quantifiers range over a non-empty
    universe; it is required for extracting bounds from *universal* bodies
    (``∀y B`` only implies ``B`` somewhere when there is a y at all) and is
    what the tree walker guarantees before narrowing.
    """

    def __init__(
        self,
        state: Optional[DatabaseState] = None,
        *,
        assume_nonempty: bool = True,
    ) -> None:
        self._state = state
        self._assume_nonempty = assume_nonempty
        #: (relation, column) → stored-column envelope, memoised
        self._column_envelopes: Dict[Tuple[str, int], IntervalSet] = {}

    # -- public entry points -------------------------------------------------

    def intervals(
        self,
        formula: Formula,
        var: str,
        resolve: Optional[Mapping[str, int]] = None,
        envelopes: Optional[Mapping[str, IntervalSet]] = None,
    ) -> IntervalSet:
        """Bounds for ``var`` implied by ``formula``.

        ``resolve`` maps already-assigned variables to their integer values
        (the tree walker's environment); ``envelopes`` maps other variables
        to previously inferred interval sets (used for sibling free
        variables).  A binding for ``var`` itself is dropped: the question
        is which values ``var`` *can* take, so an outer same-named binding
        (shadowing) must not constant-fold the literals that constrain it.
        """
        return self._infer(
            formula,
            var,
            False,
            {k: v for k, v in (resolve or {}).items() if k != var},
            {k: v for k, v in (envelopes or {}).items() if k != var},
        )

    def free_variable_intervals(
        self, formula: Formula, variables: Sequence[str], passes: int = 2
    ) -> Dict[str, IntervalSet]:
        """Bounds for every free variable, propagated across comparisons.

        Runs ``passes`` rounds so that chains like ``x < y ∧ y < 7`` reach
        x through y's envelope.
        """
        envelopes: Dict[str, IntervalSet] = {}
        for _ in range(max(1, passes)):
            envelopes = {
                name: self._infer(formula, name, False, {}, dict(envelopes))
                for name in variables
            }
        return envelopes

    # -- the recursion -------------------------------------------------------

    def _infer(
        self,
        f: Formula,
        var: str,
        negated: bool,
        resolve: Dict[str, int],
        envelopes: Dict[str, IntervalSet],
    ) -> IntervalSet:
        if isinstance(f, Top):
            return _EMPTY if negated else _TOP
        if isinstance(f, Bottom):
            return _TOP if negated else _EMPTY
        if isinstance(f, Not):
            return self._infer(f.body, var, not negated, resolve, envelopes)
        if isinstance(f, And):
            sets = [
                self._infer(c, var, negated, resolve, envelopes)
                for c in f.conjuncts
            ]
            return self._combine(sets, union=negated)
        if isinstance(f, Or):
            sets = [
                self._infer(d, var, negated, resolve, envelopes)
                for d in f.disjuncts
            ]
            return self._combine(sets, union=not negated)
        if isinstance(f, Implies):
            # a → b  ⟺  ¬a ∨ b;   ¬(a → b)  ⟺  a ∧ ¬b
            left = self._infer(f.antecedent, var, not negated, resolve, envelopes)
            right = self._infer(f.consequent, var, negated, resolve, envelopes)
            return self._combine([left, right], union=not negated)
        if isinstance(f, Iff):
            return _TOP  # either polarity: no cheap interval form
        if isinstance(f, (Exists, ForAll)):
            return self._quantifier(f, var, negated, resolve, envelopes)
        if isinstance(f, Equals):
            return self._equality(f, var, negated, resolve, envelopes)
        if isinstance(f, Atom):
            return self._atom(f, var, negated, resolve, envelopes)
        return _TOP

    @staticmethod
    def _combine(sets: List[IntervalSet], *, union: bool) -> IntervalSet:
        result: Optional[IntervalSet] = None
        for one in sets:
            if result is None:
                result = one
            else:
                result = result.union(one) if union else result.intersect(one)
        return result if result is not None else (_EMPTY if union else _TOP)

    def _quantifier(
        self,
        f: "Exists | ForAll",
        var: str,
        negated: bool,
        resolve: Dict[str, int],
        envelopes: Dict[str, IntervalSet],
    ) -> IntervalSet:
        if f.var == var:
            return _TOP  # the quantifier shadows the variable of interest
        # Effective polarity of the body: ∃ keeps it, ¬∃ ⟺ ∀¬ flips it, etc.
        # Extracting bounds from a body under a ∀-shaped quantifier is only
        # sound when the universe is non-empty (a vacuous ∀ implies nothing).
        universal = isinstance(f, ForAll) != negated
        if universal and not self._assume_nonempty:
            return _TOP
        inner_resolve = {k: v for k, v in resolve.items() if k != f.var}
        inner_envelopes = {k: v for k, v in envelopes.items() if k != f.var}
        witness = self._infer(
            f.body, f.var, negated, dict(inner_resolve), dict(inner_envelopes)
        )
        inner_envelopes[f.var] = witness
        return self._infer(f.body, var, negated, inner_resolve, inner_envelopes)

    def _term_value(
        self,
        term: Term,
        resolve: Dict[str, int],
    ) -> Tuple[Optional[int], Optional[str]]:
        """Resolve a term to ``(int value, None)``, ``(None, var name)`` for
        an unresolved variable, or ``(None, None)`` for anything else."""
        if isinstance(term, Const):
            return _as_int(term.value), None
        if isinstance(term, Var):
            if term.name in resolve:
                return resolve[term.name], None
            return None, term.name
        return None, None

    def _equality(
        self,
        f: Equals,
        var: str,
        negated: bool,
        resolve: Dict[str, int],
        envelopes: Dict[str, IntervalSet],
    ) -> IntervalSet:
        left_value, left_var = self._term_value(f.left, resolve)
        right_value, right_var = self._term_value(f.right, resolve)
        if left_var == var and right_var == var:
            return _EMPTY if negated else _TOP  # x = x
        if left_var != var and right_var != var:
            # A literal not constraining var: fold it when fully resolved.
            if left_value is not None and right_value is not None:
                holds = (left_value == right_value) != negated
                return _TOP if holds else _EMPTY
            return _TOP
        other_value = right_value if left_var == var else left_value
        other_var = right_var if left_var == var else left_var
        if other_value is not None:
            point = IntervalSet.point(other_value)
            return point.complement() if negated else point
        if other_var is not None and not negated:
            return envelopes.get(other_var, _TOP)
        return _TOP

    def _atom(
        self,
        f: Atom,
        var: str,
        negated: bool,
        resolve: Dict[str, int],
        envelopes: Dict[str, IntervalSet],
    ) -> IntervalSet:
        if f.predicate in ORDER_PREDICATES and len(f.args) == 2:
            return self._comparison(f, var, negated, resolve, envelopes)
        if negated:
            return _TOP
        if self._state is None or f.predicate not in self._state.schema:
            return _TOP
        # A positive database atom bounds var by the stored column envelope.
        result = _TOP
        for position, arg in enumerate(f.args):
            if isinstance(arg, Var) and arg.name == var:
                result = result.intersect(
                    self._column_envelope(f.predicate, position)
                )
        return result

    def _column_envelope(self, relation: str, column: int) -> IntervalSet:
        key = (relation, column)
        cached = self._column_envelopes.get(key)
        if cached is None:
            assert self._state is not None
            values = [
                _as_int(row[column]) for row in self._state[relation].rows
            ]
            if not values:
                cached = _EMPTY  # an empty relation satisfies no atom
            elif any(value is None for value in values):
                cached = _TOP  # non-integer carrier: no numeric envelope
            else:
                ints = [value for value in values if value is not None]
                cached = IntervalSet.between(min(ints), max(ints))
            self._column_envelopes[key] = cached
        return cached

    def _comparison(
        self,
        f: Atom,
        var: str,
        negated: bool,
        resolve: Dict[str, int],
        envelopes: Dict[str, IntervalSet],
    ) -> IntervalSet:
        left_value, left_var = self._term_value(f.args[0], resolve)
        right_value, right_var = self._term_value(f.args[1], resolve)
        if left_var == var and right_var == var:
            # x < x and friends: decidable without values.
            holds = f.predicate in ("<=", ">=")
            return _TOP if holds != negated else _EMPTY
        if left_var != var and right_var != var:
            if left_value is not None and right_value is not None:
                holds = self._evaluate(f.predicate, left_value, right_value)
                return _TOP if holds != negated else _EMPTY
            return _TOP
        var_on_left = left_var == var
        other_value = right_value if var_on_left else left_value
        other_var = right_var if var_on_left else left_var
        if other_value is not None:
            return comparison_interval(
                f.predicate, other_value, var_on_left=var_on_left, negated=negated
            )
        if other_var is None:
            return _TOP  # a function term: no bound
        envelope = envelopes.get(other_var)
        if envelope is None or envelope.is_top:
            return _TOP
        if envelope.is_empty:
            # No possible witness value at all: the literal cannot hold.
            return _EMPTY
        # var < w with w ≤ upper(w's envelope) implies var < upper; dually
        # for lower bounds — only the outer endpoint on the relevant side
        # transfers, and only when that side is bounded.
        predicate = f.predicate if var_on_left else _FLIP[f.predicate]
        if negated:
            predicate = _COMPLEMENT[predicate]
        if predicate in ("<", "<="):
            limit = envelope.upper
        else:
            limit = envelope.lower
        if limit is None:
            return _TOP
        return comparison_interval(predicate, limit)

    @staticmethod
    def _evaluate(predicate: str, left: int, right: int) -> bool:
        if predicate == "<":
            return left < right
        if predicate == "<=":
            return left <= right
        if predicate == ">":
            return left > right
        return left >= right


# ---------------------------------------------------------------------------
# Quantifier-range narrowing for the tree walker
# ---------------------------------------------------------------------------


@dataclass
class NarrowingStats:
    """What quantifier-range narrowing did during one evaluation."""

    #: True when a narrower was active (ordered carrier, integer universe)
    enabled: bool = False
    #: quantifier (and free-variable) range computations performed
    ranges: int = 0
    #: computations whose candidate range actually shrank
    narrowed: int = 0
    #: candidates kept across all narrowed/unnarrowed ranges
    candidates: int = 0
    #: candidates pruned by the inferred bounds
    skipped: int = 0

    def record(self, kept: int, total: int) -> None:
        self.ranges += 1
        self.candidates += kept
        self.skipped += total - kept
        if kept < total:
            self.narrowed += 1

    def describe(self) -> str:
        if not self.enabled:
            return "quantifier-range narrowing inactive (unordered carrier)"
        examined = self.candidates + self.skipped
        return (
            f"quantifier-range narrowing: {self.narrowed} of {self.ranges} "
            f"range(s) narrowed, {self.candidates} of {examined} candidate(s) kept"
        )


class QuantifierNarrower:
    """Narrow quantifier candidate ranges over a sorted integer universe.

    Built once per evaluation by the tree walker
    (:func:`repro.relational.calculus.evaluate_query_active_domain`) on
    ordered carriers: the universe is sorted by integer value, and each
    quantifier's candidate list becomes the bisected slice union of the
    bounds :class:`BoundAnalysis` infers from the quantifier body — the
    tree-walking twin of the optimizer's interval joins.

    >>> from repro.logic.parser import parse_formula
    >>> narrower = QuantifierNarrower([1, 5, 9, 13])
    >>> body = parse_formula("S(y) & y < x")
    >>> narrower.candidates(body, "y", {"x": 9})
    [1, 5]
    """

    def __init__(
        self,
        universe: Sequence[Element],
        state: Optional[DatabaseState] = None,
        stats: Optional[NarrowingStats] = None,
    ) -> None:
        pairs = sorted(
            ((int(element), element) for element in universe),
            key=lambda pair: pair[0],
        )
        self._keys = [key for key, _ in pairs]
        self._elements = [element for _, element in pairs]
        self._analysis = BoundAnalysis(state, assume_nonempty=bool(pairs))
        self.stats = stats if stats is not None else NarrowingStats()
        self.stats.enabled = True

    @classmethod
    def for_universe(
        cls,
        universe: Sequence[Element],
        interpretation: Any,
        state: Optional[DatabaseState] = None,
        stats: Optional[NarrowingStats] = None,
    ) -> Optional["QuantifierNarrower"]:
        """A narrower for ``universe``, or ``None`` when narrowing is not
        sound (unordered carrier) or not possible (non-integer elements)."""
        if not domain_is_ordered(interpretation):
            return None
        try:
            return cls(universe, state, stats)
        except (TypeError, ValueError):
            return None

    @property
    def universe_size(self) -> int:
        return len(self._elements)

    def candidates(
        self,
        body: Formula,
        var: str,
        env: Mapping[Any, Element],
    ) -> List[Element]:
        """The universe elements ``var`` can take without falsifying the
        comparison literals of ``body``, in ascending value order."""
        total = len(self._elements)
        if total == 0:
            return []
        resolve: Dict[str, int] = {}
        for name, value in env.items():
            coerced = _as_int(value)
            if coerced is not None:
                resolve[name.name if isinstance(name, Var) else name] = coerced
        interval_set = self._analysis.intervals(body, var, resolve)
        if interval_set.is_top:
            self.stats.record(total, total)
            return self._elements
        kept = self.elements_in(interval_set)
        self.stats.record(len(kept), total)
        return kept

    def elements_in(self, interval_set: IntervalSet) -> List[Element]:
        """The universe elements inside an interval set, by bisection."""
        keys = self._keys
        ranges = []
        for lo, hi in interval_set.parts:
            start = 0 if lo is None else bisect_left(keys, lo)
            end = len(keys) if hi is None else bisect_right(keys, hi)
            if start < end:
                ranges.append((start, end))
        elements = self._elements
        return [
            element
            for start, end in merge_index_ranges(ranges)
            for element in elements[start:end]
        ]
