"""Translation of database queries into pure domain formulas.

Section 1.1 of the paper describes the technique (attributed to [AGSS86,
GSSS86]): because a database state is a finite collection of finite relations
and the domain has constants for all of its elements, every occurrence of a
database relation atom ``R(x, y)`` can be replaced by the finite disjunction

    (x = a1 & y = b1) | (x = a2 & y = b2) | ... | (x = ar & y = br)

over the rows ``(ai, bi)`` of ``R`` in the state.  The result is a *pure
domain formula* — no database relation symbols left — which a domain decision
procedure can then handle.
"""

from __future__ import annotations

from ..logic.builders import conj, disj
from ..logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)
from ..logic.terms import Const
from .schema import DatabaseSchema
from .state import DatabaseState

__all__ = ["expand_database_atoms", "is_pure_domain_formula", "database_predicates_in"]


def database_predicates_in(formula: Formula, schema: DatabaseSchema) -> frozenset:
    """Database relation symbols of ``schema`` that occur in ``formula``."""
    from ..logic.analysis import predicates_of

    return frozenset(p for p in predicates_of(formula) if p in schema)


def is_pure_domain_formula(formula: Formula, schema: DatabaseSchema) -> bool:
    """True iff ``formula`` uses no database relation symbol of ``schema``."""
    return not database_predicates_in(formula, schema)


def expand_database_atoms(formula: Formula, state: DatabaseState) -> Formula:
    """Replace every database atom by the disjunction of its rows in ``state``.

    Relation symbols that are not in the schema of ``state`` are treated as
    domain predicates and left untouched.
    """
    schema = state.schema

    def expand(f: Formula) -> Formula:
        if isinstance(f, Atom):
            if f.predicate not in schema:
                return f
            relation = state[f.predicate]
            if not relation:
                return Bottom()
            disjuncts = []
            for row in relation:
                equalities = [
                    Equals(arg, Const(value)) for arg, value in zip(f.args, row)
                ]
                disjuncts.append(conj(*equalities))
            return disj(*disjuncts)
        if isinstance(f, Equals) or isinstance(f, (Top, Bottom)):
            return f
        if isinstance(f, Not):
            return Not(expand(f.body))
        if isinstance(f, And):
            return And(tuple(expand(c) for c in f.conjuncts))
        if isinstance(f, Or):
            return Or(tuple(expand(d) for d in f.disjuncts))
        if isinstance(f, Implies):
            return Implies(expand(f.antecedent), expand(f.consequent))
        if isinstance(f, Iff):
            return Iff(expand(f.left), expand(f.right))
        if isinstance(f, Exists):
            return Exists(f.var, expand(f.body))
        if isinstance(f, ForAll):
            return ForAll(f.var, expand(f.body))
        raise TypeError(f"not a formula: {f!r}")

    return expand(formula)
