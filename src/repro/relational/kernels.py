"""Vectorized NumPy kernels for the columnar executor.

This module is the lowest layer of the vectorized execution substrate
(:mod:`repro.relational.columnar`): every function here operates on plain
``np.int64`` arrays and knows nothing about plans, formulas, domains, or
dictionary encodings.  A relation is a 2-D code table of shape
``(rows, columns)``; zero-column tables are meaningful (they are the nullary
relations that encode sentences: one row means *true*, no rows means
*false*).

Invariants shared with the set-at-a-time executor
(:mod:`repro.relational.exec`):

* **set semantics** — callers dedupe with :func:`unique_rows` at projection
  boundaries; kernels themselves may produce duplicate rows (e.g. a join of
  bags) but never drop a distinct row;
* **order independence** — every kernel's *set* of output rows is independent
  of input row order, so the columnar executor can sort freely for
  ``np.searchsorted``-based joins.

Doctest — a sort-based join of two small key columns:

>>> import numpy as np
>>> left = np.array([[1], [2], [2], [9]], dtype=np.int64)
>>> right = np.array([[2], [2], [1]], dtype=np.int64)
>>> li, ri = join_indices(left, right)
>>> sorted(zip(li.tolist(), ri.tolist()))
[(0, 2), (1, 0), (1, 1), (2, 0), (2, 1)]
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "empty_table",
    "unique_rows",
    "key_codes",
    "join_indices",
    "membership_mask",
    "cross_pad_arrays",
    "expand_ranges",
    "interval_pad",
    "range_union_mask",
]

#: the dtype every column of a code table uses
CODE_DTYPE = np.int64


def empty_table(columns: int) -> "np.ndarray":
    """An empty code table with the given number of columns.

    >>> empty_table(3).shape
    (0, 3)
    """
    return np.empty((0, columns), dtype=CODE_DTYPE)


def unique_rows(table: "np.ndarray") -> "np.ndarray":
    """Distinct rows of a code table (the set-semantics dedupe kernel).

    Zero-column tables are handled explicitly: all their rows are equal, so
    the result is at most one row.

    >>> import numpy as np
    >>> t = np.array([[1, 2], [1, 2], [3, 4]], dtype=np.int64)
    >>> unique_rows(t).tolist()
    [[1, 2], [3, 4]]
    >>> unique_rows(np.empty((5, 0), dtype=np.int64)).shape
    (1, 0)
    """
    if table.shape[1] == 0:
        return table[:1]
    if table.shape[0] <= 1:
        return table
    if table.shape[1] == 1:
        return np.unique(table[:, 0]).reshape(-1, 1)
    # np.unique(axis=0) sorts a void view, which is an order of magnitude
    # slower than a plain integer lexsort; dedupe on sorted runs instead.
    order = np.lexsort(table.T[::-1])
    table = table[order]
    keep = np.ones(table.shape[0], dtype=bool)
    np.any(table[1:] != table[:-1], axis=1, out=keep[1:])
    return table[keep]


def key_codes(left: "np.ndarray", right: "np.ndarray") -> Tuple["np.ndarray", "np.ndarray"]:
    """Dense single-column codes for two multi-column key tables.

    Rows that are equal across the two tables get the same code, which turns
    any multi-column join/membership problem into a single-column one.  Both
    inputs must have the same number of columns.

    >>> import numpy as np
    >>> l = np.array([[1, 2], [3, 4]], dtype=np.int64)
    >>> r = np.array([[3, 4], [5, 6]], dtype=np.int64)
    >>> lc, rc = key_codes(l, r)
    >>> bool(lc[1] == rc[0]), bool(lc[0] == rc[1])
    (True, False)
    """
    stacked = np.concatenate([left, right], axis=0)
    if stacked.shape[1] == 0:
        codes = np.zeros(stacked.shape[0], dtype=CODE_DTYPE)
    elif stacked.shape[1] == 1:
        _, codes = np.unique(stacked[:, 0], return_inverse=True)
        codes = codes.reshape(-1)  # numpy >= 2.1 keeps the input shape
    else:
        # Group identical rows along sorted runs (see unique_rows for why
        # this beats np.unique(axis=0)).
        order = np.lexsort(stacked.T[::-1])
        ordered = stacked[order]
        fresh = np.empty(ordered.shape[0], dtype=bool)
        fresh[0] = True
        np.any(ordered[1:] != ordered[:-1], axis=1, out=fresh[1:])
        codes = np.empty(ordered.shape[0], dtype=CODE_DTYPE)
        codes[order] = np.cumsum(fresh) - 1
    return codes[: left.shape[0]], codes[left.shape[0]:]


def expand_ranges(starts: "np.ndarray", counts: "np.ndarray") -> "np.ndarray":
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` for every i.

    >>> import numpy as np
    >>> expand_ranges(np.array([4, 0, 9]), np.array([2, 0, 3])).tolist()
    [4, 5, 9, 10, 11]
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=CODE_DTYPE)
    # For each output slot, subtract the cumulative offset of its group so the
    # global arange restarts at every group boundary.
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    group = np.repeat(np.arange(starts.shape[0]), counts)
    return np.arange(total) - offsets[group] + starts[group]


def interval_pad(
    table: "np.ndarray",
    values_sorted: "np.ndarray",
    starts: "np.ndarray",
    ends: "np.ndarray",
) -> "np.ndarray":
    """Append per-row slices of a sorted value array as a new column.

    Row ``i`` of ``table`` is repeated once per value in
    ``values_sorted[starts[i]:ends[i]]`` with that value appended on the
    right — the array form of the ``IntervalJoin`` operator, with the range
    indices typically produced by ``np.searchsorted`` over the sorted active
    domain.  Empty (or inverted) ranges contribute no rows.

    >>> import numpy as np
    >>> t = np.array([[7], [8]], dtype=np.int64)
    >>> values = np.array([10, 20, 30], dtype=np.int64)
    >>> interval_pad(t, values, np.array([0, 1]), np.array([2, 1])).tolist()
    [[7, 10], [7, 20]]
    """
    counts = np.maximum(ends - starts, 0)
    repeated = table[np.repeat(np.arange(table.shape[0]), counts)]
    padded = values_sorted[expand_ranges(starts, counts)].reshape(-1, 1)
    return np.concatenate([repeated, padded], axis=1)


def range_union_mask(
    starts: "np.ndarray", ends: "np.ndarray", size: int
) -> "np.ndarray":
    """Cover mask of the union of half-open index ranges ``[starts_i, ends_i)``.

    The vectorized union-of-intervals kernel behind ``IntervalUnionScan``:
    instead of materialising every (row, index) pair and deduplicating, a
    difference array counts range openings/closings per position and a
    cumulative sum marks the covered slots.  Inverted or empty ranges
    contribute nothing.

    >>> import numpy as np
    >>> mask = range_union_mask(np.array([0, 3, 4]), np.array([2, 5, 4]), 6)
    >>> mask.tolist()
    [True, True, False, True, True, False]
    """
    delta = np.zeros(size + 1, dtype=CODE_DTYPE)
    valid = starts < ends
    if valid.any():
        clipped_starts = np.clip(starts[valid], 0, size)
        clipped_ends = np.clip(ends[valid], 0, size)
        np.add.at(delta, clipped_starts, 1)
        np.add.at(delta, clipped_ends, -1)
    return np.cumsum(delta[:size]) > 0


def join_indices(
    left_keys: "np.ndarray", right_keys: "np.ndarray"
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Row-index pairs of the natural join of two key tables.

    Returns ``(li, ri)`` such that ``left_keys[li[k]] == right_keys[ri[k]]``
    row-wise for every ``k``, covering exactly the matching pairs.  With
    zero-column keys this is the full cross product.  The join is sort-based:
    the right side is sorted by key code and each left code locates its
    matching run with :func:`np.searchsorted`.
    """
    n, m = left_keys.shape[0], right_keys.shape[0]
    if n == 0 or m == 0:
        return np.empty(0, dtype=CODE_DTYPE), np.empty(0, dtype=CODE_DTYPE)
    if left_keys.shape[1] == 0:
        return (
            np.repeat(np.arange(n), m),
            np.tile(np.arange(m), n),
        )
    left_codes, right_codes = key_codes(left_keys, right_keys)
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    starts = np.searchsorted(sorted_codes, left_codes, side="left")
    ends = np.searchsorted(sorted_codes, left_codes, side="right")
    counts = ends - starts
    li = np.repeat(np.arange(n), counts)
    ri = order[expand_ranges(starts, counts)]
    return li, ri


def membership_mask(left_keys: "np.ndarray", right_keys: "np.ndarray") -> "np.ndarray":
    """Boolean mask: which rows of ``left_keys`` appear in ``right_keys``.

    This is the antijoin/semijoin kernel — an antijoin keeps the rows where
    the mask is ``False``.  Zero-column keys degenerate to "is the right side
    non-empty".

    >>> import numpy as np
    >>> l = np.array([[1], [2], [3]], dtype=np.int64)
    >>> r = np.array([[2], [9]], dtype=np.int64)
    >>> membership_mask(l, r).tolist()
    [False, True, False]
    """
    if left_keys.shape[1] == 0:
        return np.full(left_keys.shape[0], right_keys.shape[0] > 0)
    if right_keys.shape[0] == 0:
        return np.zeros(left_keys.shape[0], dtype=bool)
    left_codes, right_codes = key_codes(left_keys, right_keys)
    return np.isin(left_codes, right_codes)


def cross_pad_arrays(table: "np.ndarray", values: "np.ndarray") -> "np.ndarray":
    """Cross product with one extra column ranging over ``values``.

    Every row of ``table`` is repeated once per value; the pad column is
    appended on the right.  This is the array form of the ``CrossPad``
    operator (adom padding as a broadcast instead of a nested Python loop).

    >>> import numpy as np
    >>> t = np.array([[7], [8]], dtype=np.int64)
    >>> cross_pad_arrays(t, np.array([1, 2], dtype=np.int64)).tolist()
    [[7, 1], [7, 2], [8, 1], [8, 2]]
    """
    n, m = table.shape[0], values.shape[0]
    repeated = np.repeat(table, m, axis=0)
    tiled = np.tile(values, n).reshape(-1, 1)
    return np.concatenate([repeated, tiled], axis=1)
