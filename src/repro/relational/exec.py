"""Set-at-a-time execution of compiled relational-algebra plans.

The tree-walking evaluator in :mod:`repro.relational.calculus` answers a
query one candidate tuple at a time; the operators here answer it one
*relation* at a time, which is where the speed comes from:

* **hash joins** — n-ary :class:`Join` nodes are ordered greedily at run
  time (smallest intermediate first, cross products last) and each pairwise
  join builds a hash table on the smaller side;
* **antijoins** — negated conjuncts become :class:`AntiJoin` (set difference
  after a semijoin) instead of a difference against a full active-domain
  power;
* **selection pushdown** — the compiler attaches :class:`Comparison` and
  :class:`DomainCondition` filters to the deepest operator that binds their
  attributes, so rows are discarded before they multiply;
* **interval operators** — on ordered carriers the plan optimizer
  (:mod:`repro.relational.optimize`) replaces adom pads filtered by
  ``<``/``<=`` conditions with :class:`IntervalJoin` and :class:`RangeScan`
  nodes, which generate only the in-range slice of the sorted active domain
  (binary search here, ``np.searchsorted`` in the columnar executor).

Every node carries its output ``attrs`` (one attribute per free variable of
the subformula it came from); :func:`run_plan` evaluates a node against a
database state, an explicit active domain, and a domain interpretation,
returning a set of rows in ``attrs`` order.  Plans reference the active
domain symbolically (:class:`AdomScan`, :class:`CrossPad`), so one compiled
plan can be reused across states — that is what makes the session plan cache
sound.

Invariants shared with the other execution substrates (the tree walker in
:mod:`repro.relational.calculus` and the vectorized columnar executor in
:mod:`repro.relational.columnar`):

* **set semantics** — every operator returns a Python ``set`` of rows, so
  duplicates can never influence an answer;
* **active-domain closure** — every element in any output row comes from the
  state, the plan's embedded constants, or the explicit ``adom`` sequence;
  the executor invents nothing outside that universe.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Sequence, Set,
    Tuple, Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine.budget import Deadline

from .bounds import (
    AggBound,
    AttrRef,
    Bound,
    ConstRef,
    RangeBound,
    ValueRef,
    merge_index_ranges,
)
from .state import DatabaseState, Element, Row

__all__ = [
    "AttrRef",
    "ConstRef",
    "ValueRef",
    "Comparison",
    "DomainCondition",
    "Condition",
    "Bound",
    "AggBound",
    "RangeBound",
    "Scan",
    "AdomScan",
    "RangeScan",
    "Literal",
    "Select",
    "Project",
    "Join",
    "AntiJoin",
    "CrossPad",
    "IntervalJoin",
    "IntervalUnionScan",
    "UnionAll",
    "PlanNode",
    "ExecutionStats",
    "run_plan",
    "walk_plan",
    "plan_summary",
]


# ---------------------------------------------------------------------------
# Filter conditions (value references and interval endpoints are shared with
# every other bound-analysis consumer and live in repro.relational.bounds)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """An (in)equality filter between two attribute/constant references."""

    left: ValueRef
    right: ValueRef
    negated: bool = False


@dataclass(frozen=True)
class DomainCondition:
    """A filter delegating to the domain interpretation, e.g. ``x < y``."""

    predicate: str
    args: Tuple[ValueRef, ...]
    negated: bool = False


Condition = Union[Comparison, DomainCondition]


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scan:
    """One pass over a stored relation: constant filters, repeated-variable
    filters, and projection to distinct variables, all fused."""

    relation: str
    #: variable name per column, or ``None`` for a constant-only position
    columns: Tuple[Optional[str], ...]
    #: (column index, required value) filters
    constants: Tuple[Tuple[int, Element], ...]
    attrs: Tuple[str, ...]


@dataclass(frozen=True)
class AdomScan:
    """The active domain as a unary relation."""

    attrs: Tuple[str, ...]  # exactly one attribute


@dataclass(frozen=True)
class RangeScan:
    """Adom elements within interval bounds — an order-aware :class:`AdomScan`.

    Bounds are constants (:class:`Bound` over :class:`ConstRef`) or run-time
    aggregates (:class:`AggBound`); the effective interval is the
    intersection of all of them (max of the lowers, min of the uppers).
    """

    lowers: Tuple[RangeBound, ...]
    uppers: Tuple[RangeBound, ...]
    attrs: Tuple[str, ...]  # exactly one attribute


@dataclass(frozen=True)
class Literal:
    """An inline constant relation."""

    attrs: Tuple[str, ...]
    rows: Tuple[Row, ...]


@dataclass(frozen=True)
class Select:
    """Filter rows of ``source`` by a conjunction of conditions."""

    source: "PlanNode"
    conditions: Tuple[Condition, ...]
    attrs: Tuple[str, ...]


@dataclass(frozen=True)
class Project:
    """Keep (and reorder to) the named attributes, removing duplicates."""

    source: "PlanNode"
    attrs: Tuple[str, ...]


@dataclass(frozen=True)
class Join:
    """N-ary natural join; the executor picks the join order greedily."""

    parts: Tuple["PlanNode", ...]
    attrs: Tuple[str, ...]


@dataclass(frozen=True)
class AntiJoin:
    """Rows of ``left`` with no ``right`` row agreeing on the shared attrs."""

    left: "PlanNode"
    right: "PlanNode"
    attrs: Tuple[str, ...]


@dataclass(frozen=True)
class CrossPad:
    """Cross product with one active-domain column per attribute in ``pad``."""

    source: "PlanNode"
    pad: Tuple[str, ...]
    attrs: Tuple[str, ...]


@dataclass(frozen=True)
class IntervalJoin:
    """For each source row, the adom elements within bounds taken from it.

    The order-aware replacement for ``CrossPad`` + pointwise ``Select``: the
    new ``var`` column ranges over the interval of the (sorted) active domain
    delimited by the row's bound values instead of over the whole domain.
    Bound refs are :class:`AttrRef` into the source attrs or :class:`ConstRef`.
    """

    source: "PlanNode"
    var: str
    lowers: Tuple[Bound, ...]
    uppers: Tuple[Bound, ...]
    attrs: Tuple[str, ...]  # source attrs + (var,)


@dataclass(frozen=True)
class IntervalUnionScan:
    """The adom elements falling in *some* witness row's interval.

    The union-of-intervals reduction: semantically this is
    ``Project_(var)(IntervalJoin(source, var, lowers, uppers))``, but where
    that pairing materialises O(|source| · interval) rows before projecting,
    this node merges the per-row index ranges over the sorted active domain
    (a sorted interval-merge, O(n log n)) and emits only the union — peak
    intermediate rows O(answer).  It is what the optimizer emits when one
    witness component bounds the scanned variable on *both* sides
    (``∃y∃z (R(y, z) ∧ y < x ∧ x < z)``-shaped), where the per-row intervals
    are not nested and no single aggregated :class:`RangeScan` bound exists.
    """

    source: "PlanNode"
    var: str
    lowers: Tuple[Bound, ...]
    uppers: Tuple[Bound, ...]
    attrs: Tuple[str, ...]  # exactly (var,)


@dataclass(frozen=True)
class UnionAll:
    """Set union of parts sharing one attribute list."""

    parts: Tuple["PlanNode", ...]
    attrs: Tuple[str, ...]


PlanNode = Union[
    Scan, AdomScan, RangeScan, Literal, Select, Project, Join, AntiJoin,
    CrossPad, IntervalJoin, IntervalUnionScan, UnionAll,
]


def walk_plan(node: PlanNode) -> Iterator[PlanNode]:
    """Yield ``node`` and all of its operator subtrees, in pre-order.

    >>> plan = Project(Join((Scan("F", ("x", "y"), (), ("x", "y")),
    ...                      Scan("F", ("y", "z"), (), ("y", "z"))),
    ...                     ("x", "y", "z")), ("x",))
    >>> [type(sub).__name__ for sub in walk_plan(plan)]
    ['Project', 'Join', 'Scan', 'Scan']
    """
    yield node
    if isinstance(node, (Select, Project, CrossPad, IntervalJoin, IntervalUnionScan)):
        yield from walk_plan(node.source)
    elif isinstance(node, (Join, UnionAll)):
        for part in node.parts:
            yield from walk_plan(part)
    elif isinstance(node, AntiJoin):
        yield from walk_plan(node.left)
        yield from walk_plan(node.right)
    elif isinstance(node, RangeScan):
        for bound in node.lowers + node.uppers:
            if isinstance(bound, AggBound):
                yield from walk_plan(bound.source)


def plan_summary(node: PlanNode) -> str:
    """A compact operator census, e.g. ``2 scans, 1 join, 1 antijoin``.

    >>> plan = AntiJoin(Scan("F", ("x", "y"), (), ("x", "y")),
    ...                 Scan("F", ("y", "x"), (), ("y", "x")),
    ...                 ("x", "y"))
    >>> plan_summary(plan)
    '2 scans, 1 antijoin'
    """
    labels = {
        Scan: "scan", AdomScan: "adom-scan", RangeScan: "range-scan",
        Literal: "literal", Select: "select", Project: "project",
        Join: "join", AntiJoin: "antijoin", CrossPad: "adom-pad",
        IntervalJoin: "interval-join",
        IntervalUnionScan: "interval-union-scan", UnionAll: "union",
    }
    counts: Dict[str, int] = {}
    for sub in walk_plan(node):
        label = labels[type(sub)]
        counts[label] = counts.get(label, 0) + 1
    order = ["scan", "adom-scan", "range-scan", "literal", "select",
             "project", "join", "antijoin", "adom-pad", "interval-join",
             "interval-union-scan", "union"]
    return ", ".join(
        f"{counts[label]} {label}{'s' if counts[label] != 1 else ''}"
        for label in order if label in counts
    )


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


@dataclass
class ExecutionStats:
    """Row counts observed while running one plan.

    ``peak_rows`` is the largest single operator output the execution
    materialised — the number the pad-before-filter blowup inflates to
    ``|adom|^k`` and the plan optimizer keeps at ``O(answer)``.  The
    blowup-regression tests assert on it because it is deterministic where
    wall-clock time is noisy.
    """

    #: largest row set materialised by any single operator (or pairwise join)
    peak_rows: int = 0
    #: total rows produced across all operators
    total_rows: int = 0
    #: rows produced per operator label, in execution order
    operator_rows: List[Tuple[str, int]] = field(default_factory=list)

    def record(self, label: str, count: int) -> None:
        self.peak_rows = max(self.peak_rows, count)
        self.total_rows += count
        self.operator_rows.append((label, count))


class _Executor:
    """Evaluate plan nodes bottom-up; every method returns a set of rows in
    the node's declared ``attrs`` order."""

    def __init__(
        self,
        state: DatabaseState,
        adom: Sequence[Element],
        domain,
        stats: Optional[ExecutionStats] = None,
        deadline: "Optional[Deadline]" = None,
    ) -> None:
        self._state = state
        self._adom = tuple(adom)
        self._domain = domain
        self._stats = stats
        self._deadline = deadline
        #: sorted (int key, element) view of the adom, built on first interval
        #: operator — int coercion mirrors the ordered domains' eval_predicate
        self._ordered: Optional[Tuple[List[int], List[Element]]] = None

    def run(self, node: PlanNode) -> Set[Row]:
        if self._deadline is not None:
            # Cooperative checkpoint between operators: a deadline or a
            # cancellation aborts before the next operator materialises.
            self._deadline.check(type(node).__name__, self._stats)
        result = self._dispatch(node)
        if self._stats is not None:
            self._stats.record(type(node).__name__, len(result))
        return result

    def _dispatch(self, node: PlanNode) -> Set[Row]:
        if isinstance(node, Scan):
            return self._scan(node)
        if isinstance(node, AdomScan):
            return {(element,) for element in self._adom}
        if isinstance(node, RangeScan):
            return self._range_scan(node)
        if isinstance(node, Literal):
            return set(node.rows)
        if isinstance(node, Select):
            return self._select(node)
        if isinstance(node, Project):
            return self._project(node)
        if isinstance(node, Join):
            return self._join(node)
        if isinstance(node, AntiJoin):
            return self._antijoin(node)
        if isinstance(node, CrossPad):
            return self._cross_pad(node)
        if isinstance(node, IntervalJoin):
            return self._interval_join(node)
        if isinstance(node, IntervalUnionScan):
            return self._interval_union_scan(node)
        if isinstance(node, UnionAll):
            result: Set[Row] = set()
            for part in node.parts:
                result |= self.run(part)
            return result
        raise TypeError(f"not a plan node: {node!r}")

    # -- leaves -------------------------------------------------------------

    def _scan(self, node: Scan) -> Set[Row]:
        relation = self._state[node.relation]
        first_seen: Dict[str, int] = {}
        duplicate_checks: List[Tuple[int, int]] = []
        for index, name in enumerate(node.columns):
            if name is None:
                continue
            if name in first_seen:
                duplicate_checks.append((index, first_seen[name]))
            else:
                first_seen[name] = index
        output_columns = [first_seen[name] for name in node.attrs]
        rows: Set[Row] = set()
        for row in relation.rows:
            if any(row[i] != value for i, value in node.constants):
                continue
            if any(row[i] != row[j] for i, j in duplicate_checks):
                continue
            rows.add(tuple(row[i] for i in output_columns))
        return rows

    # -- filters ------------------------------------------------------------

    def _select(self, node: Select) -> Set[Row]:
        source_attrs = _attrs_of(node.source)
        index = {name: i for i, name in enumerate(source_attrs)}
        rows = self.run(node.source)
        for condition in node.conditions:
            rows = self._apply_condition(rows, condition, index)
        if node.attrs == source_attrs:
            return rows
        permutation = [index[name] for name in node.attrs]
        return {tuple(row[i] for i in permutation) for row in rows}

    def _apply_condition(
        self, rows: Set[Row], condition: Condition, index: Dict[str, int]
    ) -> Set[Row]:
        def resolve(ref: ValueRef):
            if isinstance(ref, ConstRef):
                value = ref.value
                return lambda row: value
            position = index[ref.name]
            return lambda row: row[position]

        if isinstance(condition, Comparison):
            left, right = resolve(condition.left), resolve(condition.right)
            if condition.negated:
                return {row for row in rows if left(row) != right(row)}
            return {row for row in rows if left(row) == right(row)}
        getters = [resolve(arg) for arg in condition.args]
        predicate, negated = condition.predicate, condition.negated
        evaluate = self._domain.eval_predicate
        return {
            row
            for row in rows
            if evaluate(predicate, [get(row) for get in getters]) != negated
        }

    def _project(self, node: Project) -> Set[Row]:
        source_attrs = _attrs_of(node.source)
        columns = [source_attrs.index(name) for name in node.attrs]
        return {tuple(row[i] for i in columns) for row in self.run(node.source)}

    # -- joins --------------------------------------------------------------

    def _join(self, node: Join) -> Set[Row]:
        pending: List[Tuple[Tuple[str, ...], Set[Row]]] = [
            (_attrs_of(part), self.run(part)) for part in node.parts
        ]
        while len(pending) > 1:
            best = None
            best_cost = None
            for i in range(len(pending)):
                for j in range(i + 1, len(pending)):
                    shares = bool(set(pending[i][0]) & set(pending[j][0]))
                    cost = (
                        not shares,  # prefer real joins over cross products
                        len(pending[i][1]) * len(pending[j][1]),
                    )
                    if best_cost is None or cost < best_cost:
                        best, best_cost = (i, j), cost
            i, j = best  # type: ignore[misc]
            (left_attrs, left_rows) = pending[i]
            (right_attrs, right_rows) = pending.pop(j)
            if self._deadline is not None:
                self._deadline.check("Join(pairwise)", self._stats)
            pending[i] = _hash_join(left_attrs, left_rows, right_attrs, right_rows)
            # The final merge is the Join node's own output, which run()
            # records; only intermediate merges are extra materialisations.
            if self._stats is not None and len(pending) > 1:
                self._stats.record("Join(pairwise)", len(pending[i][1]))
        attrs, rows = pending[0]
        if attrs == node.attrs:
            return rows
        index = {name: i for i, name in enumerate(attrs)}
        permutation = [index[name] for name in node.attrs]
        return {tuple(row[i] for i in permutation) for row in rows}

    def _antijoin(self, node: AntiJoin) -> Set[Row]:
        left_attrs = _attrs_of(node.left)
        right_attrs = _attrs_of(node.right)
        left_rows = self.run(node.left)
        if not left_rows:
            return left_rows
        right_rows = self.run(node.right)
        shared = [name for name in left_attrs if name in right_attrs]
        if not shared:
            # A negated sentence: it either kills every row or none.
            return set() if right_rows else left_rows
        left_key = [left_attrs.index(name) for name in shared]
        right_key = [right_attrs.index(name) for name in shared]
        seen = {tuple(row[i] for i in right_key) for row in right_rows}
        return {
            row for row in left_rows
            if tuple(row[i] for i in left_key) not in seen
        }

    def _cross_pad(self, node: CrossPad) -> Set[Row]:
        rows = self.run(node.source)
        for _ in node.pad:
            if self._deadline is not None:
                self._deadline.check("CrossPad(column)", self._stats)
            rows = {row + (element,) for row in rows for element in self._adom}
        return rows

    # -- interval operators (ordered domains only) --------------------------

    def _ordered_adom(self) -> Tuple[List[int], List[Element]]:
        """The adom sorted by integer value (parallel key/element lists).

        Elements are coerced with ``int`` exactly like the ordered domains'
        ``eval_predicate`` coerces comparison arguments, so range generation
        and pointwise filtering agree element by element (and fail on the
        same non-numeric carriers).
        """
        if self._ordered is None:
            pairs = [(int(element), element) for element in self._adom]
            pairs.sort(key=lambda pair: pair[0])
            self._ordered = (
                [key for key, _ in pairs], [element for _, element in pairs]
            )
        return self._ordered

    @staticmethod
    def _lower_index(keys: List[int], value: int, inclusive: bool) -> int:
        return bisect_left(keys, value) if inclusive else bisect_right(keys, value)

    @staticmethod
    def _upper_index(keys: List[int], value: int, inclusive: bool) -> int:
        return bisect_right(keys, value) if inclusive else bisect_left(keys, value)

    def _bound_resolvers(
        self,
        node: "IntervalJoin | IntervalUnionScan",
    ) -> Tuple[
        List[Tuple[Callable[[Row], int], bool]],
        List[Tuple[Callable[[Row], int], bool]],
    ]:
        """Per-row (value, inclusivity) getters for a node's interval bounds."""
        source_attrs = _attrs_of(node.source)
        index = {name: i for i, name in enumerate(source_attrs)}

        def resolver(ref: ValueRef) -> Callable[[Row], int]:
            if isinstance(ref, ConstRef):
                value = int(ref.value)
                return lambda row: value
            position = index[ref.name]
            return lambda row: int(row[position])

        lowers = [(resolver(b.ref), b.inclusive) for b in node.lowers]
        uppers = [(resolver(b.ref), b.inclusive) for b in node.uppers]
        return lowers, uppers

    def _row_range(
        self,
        row: Row,
        keys: List[int],
        lowers: List[Tuple[Callable[[Row], int], bool]],
        uppers: List[Tuple[Callable[[Row], int], bool]],
    ) -> Tuple[int, int]:
        lo, hi = 0, len(keys)
        for get, inclusive in lowers:
            lo = max(lo, self._lower_index(keys, get(row), inclusive))
        for get, inclusive in uppers:
            hi = min(hi, self._upper_index(keys, get(row), inclusive))
        return lo, hi

    def _interval_join(self, node: IntervalJoin) -> Set[Row]:
        rows = self.run(node.source)
        if not rows or not self._adom:
            return set()
        keys, elements = self._ordered_adom()
        lowers, uppers = self._bound_resolvers(node)
        deadline = self._deadline
        result: Set[Row] = set()
        for row in rows:
            if deadline is not None:
                deadline.tick("IntervalJoin(row)", self._stats)
            lo, hi = self._row_range(row, keys, lowers, uppers)
            for element in elements[lo:hi]:
                result.add(row + (element,))
        return result

    def _interval_union_scan(self, node: IntervalUnionScan) -> Set[Row]:
        # Project_(var)(IntervalJoin(...)) without the pairwise blowup: the
        # per-witness index ranges over the sorted adom are merged (sorted
        # interval-merge), so only the O(answer) union is materialised.
        rows = self.run(node.source)
        if not rows or not self._adom:
            return set()
        keys, elements = self._ordered_adom()
        lowers, uppers = self._bound_resolvers(node)
        ranges = []
        for row in rows:
            lo, hi = self._row_range(row, keys, lowers, uppers)
            if lo < hi:
                ranges.append((lo, hi))
        return {
            (element,)
            for lo, hi in merge_index_ranges(ranges)
            for element in elements[lo:hi]
        }

    def _range_scan(self, node: RangeScan) -> Set[Row]:
        # Aggregate bounds first: an empty aggregate source means the
        # eliminated existential has no witness, so the scan is empty before
        # any adom element is examined (mirroring the unoptimized plan, which
        # never reaches its Select either).
        resolved: List[Tuple[bool, int, bool]] = []  # (is_lower, key, inclusive)
        for is_lower, bounds in ((True, node.lowers), (False, node.uppers)):
            for bound in bounds:
                if isinstance(bound, AggBound):
                    column = self.run(bound.source)
                    if not column:
                        return set()
                    values = [int(row[0]) for row in column]
                    key = min(values) if bound.kind == "min" else max(values)
                elif isinstance(bound.ref, ConstRef):
                    key = int(bound.ref.value)
                else:
                    raise TypeError(
                        f"RangeScan bounds must be constants or aggregates, "
                        f"got {bound!r}"
                    )
                resolved.append((is_lower, key, bound.inclusive))
        if not self._adom:
            return set()
        keys, elements = self._ordered_adom()
        lo, hi = 0, len(keys)
        for is_lower, key, inclusive in resolved:
            if is_lower:
                lo = max(lo, self._lower_index(keys, key, inclusive))
            else:
                hi = min(hi, self._upper_index(keys, key, inclusive))
        return {(element,) for element in elements[lo:hi]}


def _attrs_of(node: PlanNode) -> Tuple[str, ...]:
    return node.attrs


def _hash_join(
    left_attrs: Tuple[str, ...],
    left_rows: Set[Row],
    right_attrs: Tuple[str, ...],
    right_rows: Set[Row],
) -> Tuple[Tuple[str, ...], Set[Row]]:
    """Natural hash join; builds the hash table on the smaller operand."""
    shared = [name for name in left_attrs if name in right_attrs]
    right_only = [name for name in right_attrs if name not in shared]
    out_attrs = left_attrs + tuple(right_only)
    left_index = {name: i for i, name in enumerate(left_attrs)}
    right_index = {name: i for i, name in enumerate(right_attrs)}
    left_key = [left_index[name] for name in shared]
    right_key = [right_index[name] for name in shared]
    right_rest = [right_index[name] for name in right_only]
    rows: Set[Row] = set()
    if len(left_rows) <= len(right_rows):
        buckets: Dict[Row, List[Row]] = {}
        for row in left_rows:
            buckets.setdefault(tuple(row[i] for i in left_key), []).append(row)
        for row in right_rows:
            key = tuple(row[i] for i in right_key)
            rest = tuple(row[i] for i in right_rest)
            for partner in buckets.get(key, ()):
                rows.add(partner + rest)
    else:
        buckets = {}
        for row in right_rows:
            key = tuple(row[i] for i in right_key)
            buckets.setdefault(key, []).append(tuple(row[i] for i in right_rest))
        for row in left_rows:
            key = tuple(row[i] for i in left_key)
            for rest in buckets.get(key, ()):
                rows.add(row + rest)
    return out_attrs, rows


def run_plan(
    node: PlanNode,
    state: DatabaseState,
    adom: Sequence[Element],
    domain,
    stats: Optional[ExecutionStats] = None,
    deadline: "Optional[Deadline]" = None,
) -> Set[Row]:
    """Evaluate a compiled plan against a state, an explicit active domain,
    and a domain interpretation; rows come back in ``node.attrs`` order.

    Pass an :class:`ExecutionStats` to observe per-operator row counts (the
    blowup-guard regression tests assert on its ``peak_rows``).  Pass a
    started :class:`~repro.engine.budget.Deadline` to make the execution
    interruptible: a cooperative checkpoint runs between operators (and
    between pairwise join merges / pad columns), raising
    ``DeadlineExceeded`` / ``Cancelled`` with the partial stats attached.

    >>> from repro.domains.equality import EqualityDomain
    >>> from repro.experiments.corpora import family_schema
    >>> state = DatabaseState(family_schema(), {"F": [(0, 1), (2, 2)]})
    >>> diagonal = Scan("F", ("x", "x"), (), ("x",))
    >>> sorted(run_plan(diagonal, state, [0, 1, 2], EqualityDomain()))
    [(2,)]
    """
    return _Executor(state, adom, domain, stats, deadline).run(node)
