"""Database states: finite relations stored under a database schema.

"Database relations (tables) are always going to be finite" — the paper,
Section 1.  A :class:`Relation` is an immutable finite set of tuples of domain
elements; a :class:`DatabaseState` maps every relation name of a schema to a
relation of the right arity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple, Union

from .schema import DatabaseSchema

__all__ = ["Element", "Row", "Relation", "DatabaseState"]

Element = Union[int, str]
Row = Tuple[Element, ...]


@dataclass(frozen=True)
class Relation:
    """A finite relation: a set of equal-length tuples of domain elements."""

    arity: int
    rows: FrozenSet[Row]

    def __init__(self, arity: int, rows: Iterable[Sequence[Element]] = ()):
        object.__setattr__(self, "arity", arity)
        normalised = frozenset(tuple(row) for row in rows)
        for row in normalised:
            if len(row) != arity:
                raise ValueError(
                    f"row {row!r} has {len(row)} columns, expected {arity}"
                )
        object.__setattr__(self, "rows", normalised)

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[Element]]) -> "Relation":
        """Build a relation from a non-empty iterable of rows, inferring the arity."""
        rows = [tuple(r) for r in rows]
        if not rows:
            raise ValueError("cannot infer arity from an empty set of rows; "
                             "use Relation(arity, []) instead")
        return cls(len(rows[0]), rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self.rows))

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: Sequence[Element]) -> bool:
        return tuple(row) in self.rows

    def __bool__(self) -> bool:
        return bool(self.rows)

    def elements(self) -> FrozenSet[Element]:
        """All domain elements appearing in some row of the relation."""
        return frozenset(value for row in self.rows for value in row)

    def union(self, other: "Relation") -> "Relation":
        """Set union (arities must agree)."""
        self._check_arity(other)
        return Relation(self.arity, self.rows | other.rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference (arities must agree)."""
        self._check_arity(other)
        return Relation(self.arity, self.rows - other.rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection (arities must agree)."""
        self._check_arity(other)
        return Relation(self.arity, self.rows & other.rows)

    def _check_arity(self, other: "Relation") -> None:
        if self.arity != other.arity:
            raise ValueError(
                f"arity mismatch: {self.arity} vs {other.arity}"
            )

    def __str__(self) -> str:
        rows = ", ".join(str(row) for row in sorted(self.rows))
        return f"Relation[{self.arity}]{{{rows}}}"


@dataclass(frozen=True)
class DatabaseState:
    """A database state: one finite relation per relation of the schema."""

    schema: DatabaseSchema
    relations: Mapping[str, Relation]

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Mapping[str, Union[Relation, Iterable[Sequence[Element]]]] = (),
    ):
        object.__setattr__(self, "schema", schema)
        table: Dict[str, Relation] = {}
        provided = dict(relations) if relations else {}
        for rel_schema in schema:
            value = provided.pop(rel_schema.name, None)
            if value is None:
                table[rel_schema.name] = Relation(rel_schema.arity, [])
            elif isinstance(value, Relation):
                if value.arity != rel_schema.arity:
                    raise ValueError(
                        f"relation {rel_schema.name}: arity {value.arity} does not "
                        f"match schema arity {rel_schema.arity}"
                    )
                table[rel_schema.name] = value
            else:
                table[rel_schema.name] = Relation(rel_schema.arity, value)
        if provided:
            raise ValueError(f"relations not in schema: {sorted(provided)}")
        object.__setattr__(self, "relations", dict(table))

    def __getitem__(self, name: str) -> Relation:
        if name not in self.relations:
            raise KeyError(f"no relation named {name!r} in this state")
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def elements(self) -> FrozenSet[Element]:
        """All domain elements stored anywhere in the state (memoised)."""
        cached = self.__dict__.get("_elements")
        if cached is None:
            cached = frozenset(
                value
                for relation in self.relations.values()
                for row in relation.rows
                for value in row
            )
            object.__setattr__(self, "_elements", cached)
        return cached

    def fingerprint(self) -> int:
        """A stable content hash of the state, computed once and memoised.

        States are immutable value objects, so the fingerprint never goes
        stale; it is what makes states cheap dictionary keys for the
        per-state caches (the columnar encode cache, the memoised
        relative-safety verdicts) — without it every lookup would re-hash
        every stored row.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = hash((self.schema, tuple(sorted(
                (name, relation.rows)
                for name, relation in self.relations.items()
            ))))
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def with_relation(
        self, name: str, rows: Union[Relation, Iterable[Sequence[Element]]]
    ) -> "DatabaseState":
        """A new state with one relation replaced."""
        updated = dict(self.relations)
        schema = self.schema.relation(name)
        if isinstance(rows, Relation):
            updated[name] = rows
        else:
            updated[name] = Relation(schema.arity, rows)
        return DatabaseState(self.schema, updated)

    def total_rows(self) -> int:
        """Total number of rows stored across all relations."""
        return sum(len(r) for r in self.relations.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseState):
            return NotImplemented
        return self.schema == other.schema and self.relations == other.relations

    def __hash__(self) -> int:
        return self.fingerprint()

    def __str__(self) -> str:
        parts = [f"{name}: {relation}" for name, relation in sorted(self.relations.items())]
        return "DatabaseState{" + "; ".join(parts) + "}"
