"""Database states: finite relations stored under a database schema.

"Database relations (tables) are always going to be finite" — the paper,
Section 1.  A :class:`Relation` is an immutable finite set of tuples of domain
elements; a :class:`DatabaseState` maps every relation name of a schema to a
relation of the right arity.

States stay immutable value objects; *mutation* is expressed by
:meth:`DatabaseState.apply` taking a :class:`Delta` (row inserts/deletes per
relation) and producing a new state that structurally shares every untouched
:class:`Relation` and *patches* the content fingerprint in O(Δ) instead of
re-hashing every stored row.  Each applied delta also extends the state's
:attr:`~DatabaseState.lineage` — a bounded chain of (parent fingerprint,
effective delta) links that lets answer caches walk from a previously
materialised state to the current one and re-answer at O(Δ) cost
(:mod:`repro.relational.delta`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple, Union

from .schema import DatabaseSchema

__all__ = ["Element", "Row", "Relation", "Delta", "DatabaseState"]

Element = Union[int, str]
Row = Tuple[Element, ...]

#: how many (parent fingerprint, delta) links a state remembers; answer
#: caches older than this many mutations re-materialise instead of chaining
MAX_LINEAGE = 16

_FP_MASK = (1 << 64) - 1


def _mix64(value: int) -> int:
    """The splitmix64 finalizer: scramble a 64-bit value into a well-mixed one.

    Python's builtin ``hash`` is nearly the identity on small ints, which
    would make XOR-accumulated row tokens cancel catastrophically (e.g.
    ``{(0, 1)}`` vs ``{(1, 0)}``); one multiply-xorshift round restores
    avalanche so the XOR of tokens behaves like a random set hash.
    """
    value &= _FP_MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _FP_MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _FP_MASK
    return value ^ (value >> 31)


def _row_token(name: str, row: Row) -> int:
    """The fingerprint contribution of one stored row of one relation."""
    return _mix64(hash((name, row)))


@dataclass(frozen=True)
class Relation:
    """A finite relation: a set of equal-length tuples of domain elements."""

    arity: int
    rows: FrozenSet[Row]

    def __init__(self, arity: int, rows: Iterable[Sequence[Element]] = ()):
        object.__setattr__(self, "arity", arity)
        normalised = frozenset(tuple(row) for row in rows)
        for row in normalised:
            if len(row) != arity:
                raise ValueError(
                    f"row {row!r} has {len(row)} columns, expected {arity}"
                )
        object.__setattr__(self, "rows", normalised)

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[Element]]) -> "Relation":
        """Build a relation from a non-empty iterable of rows, inferring the arity."""
        rows = [tuple(r) for r in rows]
        if not rows:
            raise ValueError("cannot infer arity from an empty set of rows; "
                             "use Relation(arity, []) instead")
        return cls(len(rows[0]), rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self.rows))

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: Sequence[Element]) -> bool:
        return tuple(row) in self.rows

    def __bool__(self) -> bool:
        return bool(self.rows)

    def elements(self) -> FrozenSet[Element]:
        """All domain elements appearing in some row of the relation."""
        return frozenset(value for row in self.rows for value in row)

    def union(self, other: "Relation") -> "Relation":
        """Set union (arities must agree)."""
        self._check_arity(other)
        return Relation(self.arity, self.rows | other.rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference (arities must agree)."""
        self._check_arity(other)
        return Relation(self.arity, self.rows - other.rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection (arities must agree)."""
        self._check_arity(other)
        return Relation(self.arity, self.rows & other.rows)

    def _check_arity(self, other: "Relation") -> None:
        if self.arity != other.arity:
            raise ValueError(
                f"arity mismatch: {self.arity} vs {other.arity}"
            )

    def __str__(self) -> str:
        rows = ", ".join(str(row) for row in sorted(self.rows))
        return f"Relation[{self.arity}]{{{rows}}}"


@dataclass(frozen=True)
class Delta:
    """A batch mutation: per-relation row inserts and deletes.

    Deltas are plain values (hashable, comparable); applying one to a state
    removes the deletes first and then adds the inserts, so a row named in
    both ends up present.  Empty row sets are dropped during normalisation,
    making ``Delta() == Delta(inserts={"R": []})``.

    >>> d = Delta(inserts={"F": [(1, 2)]}, deletes={"F": [(0, 1)]})
    >>> d.changed_relations(), d.row_count(), d.insert_only()
    (('F',), 2, False)
    """

    inserts: Mapping[str, FrozenSet[Row]]
    deletes: Mapping[str, FrozenSet[Row]]

    def __init__(
        self,
        inserts: Mapping[str, Iterable[Sequence[Element]]] = (),
        deletes: Mapping[str, Iterable[Sequence[Element]]] = (),
    ):
        object.__setattr__(self, "inserts", _normalise_rows(inserts))
        object.__setattr__(self, "deletes", _normalise_rows(deletes))

    @classmethod
    def insert(cls, relation: str, *rows: Sequence[Element]) -> "Delta":
        """A pure-insert delta for one relation."""
        return cls(inserts={relation: rows})

    @classmethod
    def delete(cls, relation: str, *rows: Sequence[Element]) -> "Delta":
        """A pure-delete delta for one relation."""
        return cls(deletes={relation: rows})

    def is_empty(self) -> bool:
        return not self.inserts and not self.deletes

    def insert_only(self) -> bool:
        """True iff the delta only ever adds rows (never removes one)."""
        return not self.deletes

    def changed_relations(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.inserts) | set(self.deletes)))

    def row_count(self) -> int:
        """Total number of row changes named by the delta."""
        return sum(len(rows) for rows in self.inserts.values()) + sum(
            len(rows) for rows in self.deletes.values()
        )

    def then(self, other: "Delta") -> "Delta":
        """The composition: applying ``self`` then ``other``, as one delta.

        For *effective* deltas (every insert genuinely new, every delete
        genuinely present — what :meth:`DatabaseState.apply` records in the
        lineage) the composition is again effective with respect to the
        original base state: a row inserted and later deleted (or deleted
        and later re-inserted) is a net no-op and is dropped from both
        sides.
        """
        inserts: Dict[str, FrozenSet[Row]] = {}
        deletes: Dict[str, FrozenSet[Row]] = {}
        for name in set(self.changed_relations()) | set(other.changed_relations()):
            i1 = self.inserts.get(name, frozenset())
            d1 = self.deletes.get(name, frozenset())
            i2 = other.inserts.get(name, frozenset())
            d2 = other.deletes.get(name, frozenset())
            net_ins = (i1 - d2) | (i2 - d1)
            net_del = (d1 - i2) | (d2 - i1)
            if net_ins:
                inserts[name] = net_ins
            if net_del:
                deletes[name] = net_del
        return Delta(inserts, deletes)

    def __hash__(self) -> int:
        return hash((
            tuple(sorted(self.inserts.items())),
            tuple(sorted(self.deletes.items())),
        ))

    def __str__(self) -> str:
        parts = []
        for name in self.changed_relations():
            added = len(self.inserts.get(name, ()))
            removed = len(self.deletes.get(name, ()))
            parts.append(f"{name}: +{added}/-{removed}")
        return "Delta{" + "; ".join(parts) + "}"


def _normalise_rows(
    table: Mapping[str, Iterable[Sequence[Element]]],
) -> Dict[str, FrozenSet[Row]]:
    normalised: Dict[str, FrozenSet[Row]] = {}
    for name, rows in (dict(table) if table else {}).items():
        frozen = frozenset(tuple(row) for row in rows)
        if frozen:
            normalised[name] = frozen
    return normalised


@dataclass(frozen=True)
class DatabaseState:
    """A database state: one finite relation per relation of the schema."""

    schema: DatabaseSchema
    relations: Mapping[str, Relation]

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Mapping[str, Union[Relation, Iterable[Sequence[Element]]]] = (),
    ):
        object.__setattr__(self, "schema", schema)
        table: Dict[str, Relation] = {}
        provided = dict(relations) if relations else {}
        for rel_schema in schema:
            value = provided.pop(rel_schema.name, None)
            if value is None:
                table[rel_schema.name] = Relation(rel_schema.arity, [])
            elif isinstance(value, Relation):
                if value.arity != rel_schema.arity:
                    raise ValueError(
                        f"relation {rel_schema.name}: arity {value.arity} does not "
                        f"match schema arity {rel_schema.arity}"
                    )
                table[rel_schema.name] = value
            else:
                table[rel_schema.name] = Relation(rel_schema.arity, value)
        if provided:
            raise ValueError(f"relations not in schema: {sorted(provided)}")
        object.__setattr__(self, "relations", dict(table))

    def __getitem__(self, name: str) -> Relation:
        if name not in self.relations:
            raise KeyError(f"no relation named {name!r} in this state")
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def elements(self) -> FrozenSet[Element]:
        """All domain elements stored anywhere in the state (memoised)."""
        cached = self.__dict__.get("_elements")
        if cached is None:
            cached = frozenset(
                value
                for relation in self.relations.values()
                for row in relation.rows
                for value in row
            )
            object.__setattr__(self, "_elements", cached)
        return cached

    def fingerprint(self) -> int:
        """A stable content hash of the state, computed once and memoised.

        States are immutable value objects, so the fingerprint never goes
        stale; it is what makes states cheap dictionary keys for the
        per-state caches (the columnar encode cache, the memoised
        relative-safety verdicts) — without it every lookup would re-hash
        every stored row.

        The hash is the XOR of one splitmix64-mixed token per stored
        ``(relation name, row)`` pair (plus a schema token).  XOR is
        order-independent and self-inverse, which is what lets
        :meth:`apply` *patch* the parent fingerprint with just the changed
        rows' tokens — O(Δ) — instead of re-hashing the whole state.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = _mix64(hash(self.schema))
            for name, relation in self.relations.items():
                for row in relation.rows:
                    cached ^= _row_token(name, row)
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    @property
    def version(self) -> int:
        """How many effective mutations separate this state from its root.

        Freshly constructed states are version 0; each :meth:`apply` that
        actually changes something increments it.  Together with
        :meth:`fingerprint` this is what keys per-session answer caches.
        """
        return self.__dict__.get("_version", 0)

    @property
    def lineage(self) -> Tuple[Tuple[int, Delta], ...]:
        """The last ≤ ``MAX_LINEAGE`` (parent fingerprint, effective delta)
        links, oldest first.

        ``lineage[i]`` says: the state whose fingerprint is ``lineage[i][0]``
        becomes (the next link's parent, or this state) by applying
        ``lineage[i][1]``.  Answer caches use it to locate a previously
        materialised ancestor and compose the deltas separating it from this
        state (:meth:`Delta.then`).
        """
        return self.__dict__.get("_lineage", ())

    def apply(self, delta: Delta) -> "DatabaseState":
        """The state after a batch mutation (deletes first, then inserts).

        The new state structurally shares every :class:`Relation` the delta
        does not touch, inherits a fingerprint *patched* with the changed
        rows' tokens (never re-hashing untouched rows), and records the
        *effective* delta — inserts already present and deletes already
        absent are dropped — in its :attr:`lineage`.  Applying a delta with
        no effective change returns ``self`` unchanged.

        >>> from repro.relational.schema import DatabaseSchema, RelationSchema
        >>> schema = DatabaseSchema([RelationSchema("F", 2)])
        >>> state = DatabaseState(schema, {"F": [(0, 1)]})
        >>> grown = state.apply(Delta.insert("F", (1, 2)))
        >>> sorted(grown["F"].rows), grown.version
        ([(0, 1), (1, 2)], 1)
        >>> grown.fingerprint() == DatabaseState(schema,
        ...     {"F": [(0, 1), (1, 2)]}).fingerprint()
        True
        """
        effective_ins: Dict[str, FrozenSet[Row]] = {}
        effective_del: Dict[str, FrozenSet[Row]] = {}
        relations: Dict[str, Relation] = dict(self.relations)
        for name in delta.changed_relations():
            relation = self.relations.get(name)
            if relation is None:
                raise ValueError(f"no relation named {name!r} in this state")
            requested_ins = delta.inserts.get(name, frozenset())
            requested_del = delta.deletes.get(name, frozenset())
            for row in requested_ins | requested_del:
                if len(row) != relation.arity:
                    raise ValueError(
                        f"relation {name}: row {row!r} has {len(row)} "
                        f"columns, expected {relation.arity}"
                    )
            # Deletes apply first, so a row in both sets ends up present:
            # new = (old - deletes) | inserts.
            ins = requested_ins - relation.rows
            dels = (requested_del & relation.rows) - requested_ins
            if not ins and not dels:
                continue
            effective_ins[name] = ins if ins else frozenset()
            effective_del[name] = dels if dels else frozenset()
            relations[name] = Relation(
                relation.arity, (relation.rows - dels) | ins
            )
        effective = Delta(effective_ins, effective_del)
        if effective.is_empty():
            return self
        state = DatabaseState(self.schema, relations)
        patched = self.fingerprint()
        for name, rows in effective.inserts.items():
            for row in rows:
                patched ^= _row_token(name, row)
        for name, rows in effective.deletes.items():
            for row in rows:
                patched ^= _row_token(name, row)
        object.__setattr__(state, "_fingerprint", patched)
        object.__setattr__(state, "_version", self.version + 1)
        lineage = self.lineage[-(MAX_LINEAGE - 1):] if MAX_LINEAGE > 1 else ()
        object.__setattr__(
            state, "_lineage", lineage + ((self.fingerprint(), effective),)
        )
        # Insert-only deltas can also patch the memoised element set (if the
        # parent ever computed it); deletes cannot, since an element may have
        # other occurrences.
        parent_elements = self.__dict__.get("_elements")
        if parent_elements is not None and effective.insert_only():
            fresh = frozenset(
                value
                for rows in effective.inserts.values()
                for row in rows
                for value in row
            )
            object.__setattr__(state, "_elements", parent_elements | fresh)
        return state

    def with_relation(
        self, name: str, rows: Union[Relation, Iterable[Sequence[Element]]]
    ) -> "DatabaseState":
        """A new state with one relation replaced."""
        updated = dict(self.relations)
        schema = self.schema.relation(name)
        if isinstance(rows, Relation):
            updated[name] = rows
        else:
            updated[name] = Relation(schema.arity, rows)
        return DatabaseState(self.schema, updated)

    def total_rows(self) -> int:
        """Total number of rows stored across all relations."""
        return sum(len(r) for r in self.relations.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseState):
            return NotImplemented
        return self.schema == other.schema and self.relations == other.relations

    def __hash__(self) -> int:
        return self.fingerprint()

    def __str__(self) -> str:
        parts = [f"{name}: {relation}" for name, relation in sorted(self.relations.items())]
        return "DatabaseState{" + "; ".join(parts) + "}"
