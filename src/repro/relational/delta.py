"""Incremental (ΔQ) maintenance of executed relational-algebra plans.

Given a plan that has been *materialised* against one state — every operator's
output row set retained (:func:`materialize_plan`) — and a
:class:`~repro.relational.state.Delta` separating that state from a new one,
:func:`maintain_plan` patches the materialisation to the new state's answer by
propagating per-node row deltas bottom-up instead of re-executing, so the cost
is O(Δ · answer) rather than O(|state|).

The soundness argument is the paper's: a guard-certified answer is
domain-independent, so it can only change through tuples that touch the
active domain — and every ΔQ rule below preserves exactly the set-semantics
answer of :func:`repro.relational.exec.run_plan` over the new state.

Per-node rules (``A`` = added rows, ``R`` = removed rows, all *effective*:
added rows genuinely new, removed rows genuinely gone):

========================  ====================================================
node                      rule
========================  ====================================================
``Scan``                  filter/project the delta rows; a scan's output
                          uniquely determines the stored row (constants +
                          repeated-variable positions reconstruct it), so no
                          support counting is needed
``Select`` (permuting)    filter the child delta through the conditions
``Select`` (dropping)     support-counted, like ``Project``
``Project``               support counts per output row (0→1 adds, 1→0
                          removes)
``Join``                  Δ(A ⋈ B) = ΔA ⋈ Bₙₑᵥᵥ ∪ Aₒₗ𝒹 ⋈ ΔB (n-ary,
                          mixed old/new operands); output rows determine each
                          operand's row by projection, so candidate removals
                          are exact
``AntiJoin``              right-side key counts; newly present keys re-check
                          only the cached output rows they block, newly
                          absent keys re-check only the left rows they
                          unblock
``UnionAll``              per-part membership counts
``CrossPad``              pad the source delta with the (unchanged) adom;
                          recomputed node-locally when the adom grew
``IntervalJoin``          slice the sorted adom for the delta rows only;
                          recomputed node-locally when the adom grew
``RangeScan``             recomputed node-locally when an aggregate-bound
                          source changed or the adom grew (output is O(adom))
``IntervalUnionScan``     recomputed node-locally when the source changed or
                          the adom grew (a removed witness can uncover gaps)
``AdomScan``              emits the new universe elements
``Literal``               never changes
========================  ====================================================

Fallback conditions — :func:`maintain_plan` raises :class:`DeltaUnsupported`
and the caller re-materialises from scratch, recording the reason:

* the active domain **shrank** (a delete removed an element's last
  occurrence): interval/pad/adom nodes would have to *forget* rows that
  nothing locally witnesses;
* the materialisation is for a different plan or its fingerprint does not
  match the claimed parent state.

A failed or interrupted maintenance leaves the materialisation undefined;
callers must discard it (the answer cache does).
"""

from __future__ import annotations

from itertools import product
from typing import (
    TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Sequence, Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine.budget import Deadline

from ..testing import faults
from .exec import (
    AdomScan,
    AggBound,
    AntiJoin,
    Comparison,
    Condition,
    ConstRef,
    CrossPad,
    IntervalJoin,
    IntervalUnionScan,
    Join,
    Literal,
    PlanNode,
    Project,
    RangeScan,
    Scan,
    Select,
    UnionAll,
    ValueRef,
    _Executor,
    walk_plan,
)
from .state import DatabaseState, Delta, Element, Row

__all__ = [
    "DeltaUnsupported",
    "MaintenanceStats",
    "MaterializedPlan",
    "materialize_plan",
    "maintain_plan",
]


class DeltaUnsupported(RuntimeError):
    """The delta cannot be maintained incrementally; re-materialise instead."""


class _RecordingExecutor(_Executor):
    """The set executor, retaining every node's output row set.

    Results are keyed by the (hashable, frozen) plan nodes themselves, so
    structurally equal subtrees share one entry — exactly the sharing the
    maintenance pass relies on to apply each node's delta once.
    """

    def __init__(
        self,
        state: DatabaseState,
        adom: Sequence[Element],
        domain,
        deadline: "Optional[Deadline]" = None,
    ) -> None:
        super().__init__(state, adom, domain, None, deadline)
        self.results: Dict[PlanNode, Set[Row]] = {}

    def run(self, node: PlanNode) -> Set[Row]:
        cached = self.results.get(node)
        if cached is not None:
            return cached
        rows = super().run(node)
        self.results[node] = rows
        return rows


class _PatchExecutor(_Executor):
    """Re-run a *single* node, reading its children from a materialisation.

    Used for the node-local recompute rules (range/interval/pad nodes under
    an adom change): the target node is dispatched normally, but any child
    lookup returns the already-maintained result set instead of re-executing
    the subtree.
    """

    def __init__(
        self,
        state: DatabaseState,
        adom: Sequence[Element],
        domain,
        results: Dict[PlanNode, Set[Row]],
        deadline: "Optional[Deadline]" = None,
    ) -> None:
        super().__init__(state, adom, domain, None, deadline)
        self._results = results
        self._entered = False

    def run(self, node: PlanNode) -> Set[Row]:
        if self._entered:
            cached = self._results.get(node)
            if cached is not None:
                return cached
        self._entered = True
        return self._dispatch(node)


class MaterializedPlan:
    """One executed plan with every operator's output rows retained.

    The unit an answer cache stores: ``rows`` is the root answer for the
    state whose content hash is ``fingerprint``; :func:`maintain_plan`
    patches the whole structure to a mutated state at O(Δ) cost.  Support
    counts are kept only for the operators that need them (projections,
    unions, antijoin right sides).
    """

    def __init__(
        self,
        plan: PlanNode,
        fingerprint: int,
        universe: FrozenSet[Element],
        results: Dict[PlanNode, Set[Row]],
    ) -> None:
        self.plan = plan
        self.fingerprint = fingerprint
        self.universe = universe
        self.results = results
        #: support counts for Project / attribute-dropping Select nodes
        self.map_counts: Dict[PlanNode, Dict[Row, int]] = {}
        #: per-part membership counts for UnionAll nodes
        self.union_counts: Dict[PlanNode, Dict[Row, int]] = {}
        #: right-side key counts for AntiJoin nodes (shared-attr form)
        self.anti_counts: Dict[PlanNode, Dict[Row, int]] = {}
        #: hash indexes over join operands, keyed (join node, operand
        #: position, shared-attr key) → {key → operand rows}; prebuilt at
        #: materialisation and patched alongside ``results`` so a ΔJoin
        #: probe costs O(Δ · matches) instead of rehashing the full partner
        self.join_indexes: Dict[
            Tuple[PlanNode, int, Tuple[str, ...]], Dict[Row, Set[Row]]
        ] = {}
        #: how many times this materialisation was delta-maintained
        self.maintained = 0

    @property
    def rows(self) -> Set[Row]:
        """The root answer rows (live; copy before mutating)."""
        return self.results[self.plan]

    def total_rows(self) -> int:
        """Rows retained across all operators (the memory footprint)."""
        return sum(len(rows) for rows in self.results.values())


class MaintenanceStats:
    """What one :func:`maintain_plan` call did, for ``explain()``."""

    def __init__(self) -> None:
        self.nodes_touched = 0
        self.rows_touched = 0
        self.answer_added = 0
        self.answer_removed = 0

    def describe(self) -> str:
        return (
            f"{self.rows_touched} row(s) across {self.nodes_touched} node(s), "
            f"answer +{self.answer_added}/-{self.answer_removed}"
        )


def _join_probe_specs(node: Join) -> Set[Tuple[int, Tuple[str, ...]]]:
    """The (operand position, shared-attr key) lookups a ΔJoin can need.

    A delta arriving at operand ``i`` is folded against the remaining
    operands in ascending position order; each lookup keys the partner by
    its attrs shared with everything accumulated so far.  Enumerating the
    fold for every ``i`` (and deduplicating) yields the indexes to prebuild.
    """
    specs: Set[Tuple[int, Tuple[str, ...]]] = set()
    for i, part in enumerate(node.parts):
        accumulated = set(part.attrs)
        for j, partner in enumerate(node.parts):
            if j == i:
                continue
            shared = tuple(name for name in partner.attrs if name in accumulated)
            specs.add((j, shared))
            accumulated |= set(partner.attrs)
    return specs


def _build_join_index(
    rows: Set[Row], attrs: Tuple[str, ...], shared: Tuple[str, ...]
) -> Dict[Row, Set[Row]]:
    columns = [attrs.index(name) for name in shared]
    buckets: Dict[Row, Set[Row]] = {}
    for row in rows:
        buckets.setdefault(tuple(row[c] for c in columns), set()).add(row)
    return buckets


def materialize_plan(
    plan: PlanNode,
    state: DatabaseState,
    adom: Sequence[Element],
    domain,
    deadline: "Optional[Deadline]" = None,
) -> MaterializedPlan:
    """Execute ``plan`` retaining every operator's output, plus the support
    counts the ΔQ rules need.

    Costs one normal execution plus O(total intermediate rows) memory.  The
    executor short-circuits some subtrees (an antijoin with an empty left
    side never runs its right side); those are forced afterwards so every
    node of the plan has a result to maintain.  With a ``deadline``, the
    recording execution runs the set executor's cooperative checkpoints.
    """
    recorder = _RecordingExecutor(state, adom, domain, deadline)
    recorder.run(plan)
    for node in walk_plan(plan):
        if node not in recorder.results:
            recorder.run(node)
    materialized = MaterializedPlan(
        plan, state.fingerprint(), frozenset(adom), recorder.results
    )
    for node in set(walk_plan(plan)):
        if isinstance(node, (Project, Select)):
            mapper = _row_mapper(node, domain)
            if mapper is None:
                continue  # a permuting Select: injective, no counts needed
            counts: Dict[Row, int] = {}
            for row in materialized.results[_source_of(node)]:
                image = mapper(row)
                if image is not None:
                    counts[image] = counts.get(image, 0) + 1
            materialized.map_counts[node] = counts
        elif isinstance(node, UnionAll):
            counts = {}
            for part in node.parts:
                for row in materialized.results[part]:
                    counts[row] = counts.get(row, 0) + 1
            materialized.union_counts[node] = counts
        elif isinstance(node, Join):
            for j, shared in _join_probe_specs(node):
                materialized.join_indexes[(node, j, shared)] = _build_join_index(
                    materialized.results[node.parts[j]], node.parts[j].attrs, shared
                )
        elif isinstance(node, AntiJoin):
            left_attrs, right_attrs = node.left.attrs, node.right.attrs
            shared = [name for name in left_attrs if name in right_attrs]
            if not shared:
                continue
            key_columns = [right_attrs.index(name) for name in shared]
            counts = {}
            for row in materialized.results[node.right]:
                key = tuple(row[i] for i in key_columns)
                counts[key] = counts.get(key, 0) + 1
            materialized.anti_counts[node] = counts
    return materialized


def maintain_plan(
    materialized: MaterializedPlan,
    delta: Delta,
    state: DatabaseState,
    adom: Sequence[Element],
    domain,
    stats: Optional[MaintenanceStats] = None,
    deadline: "Optional[Deadline]" = None,
) -> MaintenanceStats:
    """Patch ``materialized`` to answer against ``state``.

    ``delta`` must be the *effective* delta from the materialisation's state
    to ``state`` (what :meth:`DatabaseState.apply` records in the lineage,
    composed across hops with :meth:`Delta.then`), and ``adom`` the new
    explicit active domain.  Raises :class:`DeltaUnsupported` when the
    algebra cannot maintain the change (see the module docstring for the
    conditions); the materialisation is then in an undefined intermediate
    state and must be discarded.  With a ``deadline``, a cooperative
    checkpoint runs before every node's maintenance rule; an interrupted
    maintenance likewise leaves the materialisation undefined.
    """
    stats = stats if stats is not None else MaintenanceStats()
    new_universe = frozenset(adom)
    if not materialized.universe <= new_universe:
        gone = sorted(materialized.universe - new_universe, key=repr)[:3]
        raise DeltaUnsupported(
            "the active domain shrank (e.g. "
            + ", ".join(map(repr, gone))
            + " no longer occur): interval/pad operators cannot forget rows "
            "incrementally"
        )
    adom_grew = new_universe != materialized.universe
    engine = _MaintenanceEngine(
        materialized, delta, state, tuple(adom), domain, adom_grew, stats,
        deadline,
    )
    root_delta = engine.visit(materialized.plan)
    stats.answer_added = len(root_delta.added)
    stats.answer_removed = len(root_delta.removed)
    materialized.fingerprint = state.fingerprint()
    materialized.universe = new_universe
    materialized.maintained += 1
    return stats


class _NodeDelta:
    """Effective added/removed output rows of one node."""

    __slots__ = ("added", "removed")

    def __init__(self, added: Set[Row], removed: Set[Row]) -> None:
        self.added = added
        self.removed = removed

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)


_EMPTY_DELTA = _NodeDelta(set(), set())

#: shared empty probe result — never mutated, only subtracted/unioned
_NO_PARTNERS: Set[Row] = set()


class _MaintenanceEngine:
    """One maintenance pass: memoised bottom-up delta propagation.

    Every :meth:`visit` returns the node's *effective* output delta
    (``added`` disjoint from the old output, ``removed`` a subset of it) and
    updates ``results[node]`` in place; a parent that must see the
    *pre-update* rows (a join processing removals) recovers them per probe
    key by undoing the child's memoised delta.
    """

    def __init__(
        self,
        materialized: MaterializedPlan,
        delta: Delta,
        state: DatabaseState,
        adom: Tuple[Element, ...],
        domain,
        adom_grew: bool,
        stats: MaintenanceStats,
        deadline: "Optional[Deadline]" = None,
    ) -> None:
        self._mat = materialized
        self._delta = delta
        self._state = state
        self._adom = adom
        self._domain = domain
        self._adom_grew = adom_grew
        self._stats = stats
        self._deadline = deadline
        self._deltas: Dict[PlanNode, _NodeDelta] = {}

    # -- helpers -------------------------------------------------------------

    def _run_fragment(self, node: PlanNode) -> Set[Row]:
        """Execute a small synthetic plan fragment (delta rows as literals)."""
        return _Executor(
            self._state, self._adom, self._domain, None, self._deadline
        ).run(node)

    def _recompute(self, node: PlanNode) -> _NodeDelta:
        """Node-local recompute: re-run one operator over its maintained
        children and diff against the old output."""
        patched = _PatchExecutor(
            self._state, self._adom, self._domain, self._mat.results,
            self._deadline,
        )
        new_rows = patched.run(node)
        old_rows = self._mat.results[node]
        return _NodeDelta(new_rows - old_rows, old_rows - new_rows)

    # -- the pass ------------------------------------------------------------

    def visit(self, node: PlanNode) -> _NodeDelta:
        memoised = self._deltas.get(node)
        if memoised is not None:
            return memoised
        # Checkpoint between maintenance rules: an interrupted pass leaves
        # the materialisation undefined, so the caller must discard it.
        if self._deadline is not None:
            self._deadline.check("Δ" + type(node).__name__, self._stats)
        faults.fire("maintenance-rule")
        node_delta = self._dispatch(node)
        self._deltas[node] = node_delta
        if node_delta:
            current = self._mat.results[node]
            self._mat.results[node] = (current - node_delta.removed) | node_delta.added
            self._stats.nodes_touched += 1
            self._stats.rows_touched += len(node_delta.added) + len(node_delta.removed)
        return node_delta

    def _dispatch(self, node: PlanNode) -> _NodeDelta:
        if isinstance(node, Literal):
            return _EMPTY_DELTA
        if isinstance(node, Scan):
            return self._scan(node)
        if isinstance(node, AdomScan):
            if not self._adom_grew:
                return _EMPTY_DELTA
            added = {(element,) for element in self._adom} - self._mat.results[node]
            return _NodeDelta(added, set())
        if isinstance(node, RangeScan):
            # Visit EVERY aggregate-bound source before deciding (a lazy
            # any() would stop at the first changed source and leave later
            # sources' materialisations stale for the recompute below).
            changed = [
                self.visit(bound.source)
                for bound in node.lowers + node.uppers
                if isinstance(bound, AggBound)
            ]
            if any(changed) or self._adom_grew:
                return self._recompute(node)
            return _EMPTY_DELTA
        if isinstance(node, Select):
            return self._select(node)
        if isinstance(node, Project):
            return self._counted(node, self.visit(node.source))
        if isinstance(node, Join):
            return self._join(node)
        if isinstance(node, AntiJoin):
            return self._antijoin(node)
        if isinstance(node, CrossPad):
            return self._cross_pad(node)
        if isinstance(node, IntervalJoin):
            return self._interval_join(node)
        if isinstance(node, IntervalUnionScan):
            if self.visit(node.source) or self._adom_grew:
                return self._recompute(node)
            return _EMPTY_DELTA
        if isinstance(node, UnionAll):
            return self._union(node)
        raise DeltaUnsupported(f"no ΔQ rule for plan node {type(node).__name__!r}")

    # -- leaves --------------------------------------------------------------

    def _scan(self, node: Scan) -> _NodeDelta:
        inserted = self._delta.inserts.get(node.relation, frozenset())
        deleted = self._delta.deletes.get(node.relation, frozenset())
        if not inserted and not deleted:
            return _EMPTY_DELTA
        # The scan is injective on passing stored rows (constants + repeated
        # variables reconstruct the row from its output), so the projected
        # effective delta is itself effective.
        return _NodeDelta(
            _scan_rows(node, inserted), _scan_rows(node, deleted)
        )

    # -- unary operators -----------------------------------------------------

    def _select(self, node: Select) -> _NodeDelta:
        child = self.visit(node.source)
        if not child:
            return _EMPTY_DELTA
        mapper = _row_mapper(node, self._domain)
        if mapper is not None:  # attribute-dropping: support-counted
            return self._counted(node, child)
        source_attrs = node.source.attrs
        added = self._run_fragment(
            Select(Literal(source_attrs, tuple(child.added)), node.conditions, node.attrs)
        )
        removed = self._run_fragment(
            Select(Literal(source_attrs, tuple(child.removed)), node.conditions, node.attrs)
        )
        return _NodeDelta(added, removed)

    def _counted(self, node: "Project | Select", child: _NodeDelta) -> _NodeDelta:
        if not child:
            return _EMPTY_DELTA
        mapper = _row_mapper(node, self._domain)
        assert mapper is not None
        counts = self._mat.map_counts[node]
        added, removed = _apply_counts(counts, child, mapper)
        return _NodeDelta(added, removed)

    # -- joins ---------------------------------------------------------------

    def _join(self, node: Join) -> _NodeDelta:
        child_deltas = [self.visit(part) for part in node.parts]
        if not any(child_deltas):
            return _EMPTY_DELTA
        if set(node.attrs) != {name for part in node.parts for name in part.attrs}:
            # A projecting join (today's compiler never emits one) would not
            # determine its operands' rows from the output.
            raise DeltaUnsupported(
                "join output does not cover all operand attributes"
            )
        for j, child in enumerate(child_deltas):
            if child:
                self._patch_join_indexes(node, j, child)
        added_candidates: Set[Row] = set()
        removed_candidates: Set[Row] = set()
        for i, part in enumerate(node.parts):
            child = child_deltas[i]
            if child.removed:
                removed_candidates |= self._join_delta(
                    node, i, child.removed, old_side=True
                )
            if child.added:
                added_candidates |= self._join_delta(
                    node, i, child.added, old_side=False
                )
        old_output = self._mat.results[node]
        # A removed candidate's i-th projection is genuinely gone, and the
        # output row determines every operand's row by projection, so each
        # candidate is an exact removal; added candidates have all their
        # projections in the *new* operands, so the two sets are disjoint.
        return _NodeDelta(added_candidates - old_output, removed_candidates)

    def _patch_join_indexes(
        self, node: Join, position: int, child: _NodeDelta
    ) -> None:
        """Apply one operand's delta to every prebuilt index over it."""
        part_attrs = node.parts[position].attrs
        for (index_node, pos, shared), buckets in self._mat.join_indexes.items():
            if index_node != node or pos != position:
                continue
            columns = [part_attrs.index(name) for name in shared]
            for row in child.removed:
                key = tuple(row[c] for c in columns)
                bucket = buckets.get(key)
                if bucket is not None:
                    bucket.discard(row)
                    if not bucket:
                        del buckets[key]
            for row in child.added:
                key = tuple(row[c] for c in columns)
                buckets.setdefault(key, set()).add(row)

    def _join_delta(
        self, node: Join, index: int, rows: Set[Row], *, old_side: bool
    ) -> Set[Row]:
        """Join one operand's delta rows against the other operands.

        Removals join against the *old* co-operands (the rows existed in the
        old output); additions join against the *new* ones (they must exist
        in the new output).  Partners are probed through the prebuilt hash
        indexes of the materialisation — already patched to the new operand
        rows — so the cost is O(Δ · matches), not O(|operand|); the old side
        is recovered per key by undoing the partner's own (small) delta.
        """
        accumulated: List[str] = list(node.parts[index].attrs)
        acc_rows: Set[Row] = set(rows)
        for j, part in enumerate(node.parts):
            if j == index:
                continue
            if not acc_rows:
                return set()
            positions = {name: c for c, name in enumerate(accumulated)}
            shared = tuple(name for name in part.attrs if name in positions)
            buckets = self._mat.join_indexes.get((node, j, shared))
            if buckets is None:  # unforeseen probe shape: build once, keep
                buckets = _build_join_index(
                    self._mat.results[part], part.attrs, shared
                )
                self._mat.join_indexes[(node, j, shared)] = buckets
            part_delta = self._deltas.get(part)
            corrections = old_side and part_delta is not None and bool(part_delta)
            added_by_key: Dict[Row, Set[Row]] = {}
            removed_by_key: Dict[Row, Set[Row]] = {}
            if corrections:
                assert part_delta is not None
                columns = [part.attrs.index(name) for name in shared]
                for row in part_delta.added:
                    key = tuple(row[c] for c in columns)
                    added_by_key.setdefault(key, set()).add(row)
                for row in part_delta.removed:
                    key = tuple(row[c] for c in columns)
                    removed_by_key.setdefault(key, set()).add(row)
            probe_columns = [positions[name] for name in shared]
            rest_columns = [
                c for c, name in enumerate(part.attrs) if name not in positions
            ]
            merged: Set[Row] = set()
            for acc_row in acc_rows:
                key = tuple(acc_row[c] for c in probe_columns)
                partners: Set[Row] = buckets.get(key, _NO_PARTNERS)
                if corrections:
                    partners = (partners - added_by_key.get(key, _NO_PARTNERS)) | (
                        removed_by_key.get(key, _NO_PARTNERS)
                    )
                for partner in partners:
                    merged.add(
                        acc_row + tuple(partner[c] for c in rest_columns)
                    )
            accumulated.extend(
                name for name in part.attrs if name not in positions
            )
            acc_rows = merged
        order = [accumulated.index(name) for name in node.attrs]
        return {tuple(row[c] for c in order) for row in acc_rows}

    def _antijoin(self, node: AntiJoin) -> _NodeDelta:
        left = self.visit(node.left)
        right = self.visit(node.right)
        if not left and not right:
            return _EMPTY_DELTA
        left_attrs, right_attrs = node.left.attrs, node.right.attrs
        shared = [name for name in left_attrs if name in right_attrs]
        old_output = self._mat.results[node]
        if not shared:
            # A negated sentence: the right side's emptiness decides all-or-
            # nothing, so only an emptiness flip (or a left change while
            # empty) moves the output.
            new_output = (
                set()
                if self._mat.results[node.right]
                else set(self._mat.results[node.left])
            )
            return _NodeDelta(new_output - old_output, old_output - new_output)
        left_key = [left_attrs.index(name) for name in shared]
        right_key = [right_attrs.index(name) for name in shared]
        counts = self._mat.anti_counts[node]
        blocked: Set[Row] = set()
        unblocked: Set[Row] = set()
        for row in right.added:
            key = tuple(row[i] for i in right_key)
            prior = counts.get(key, 0)
            counts[key] = prior + 1
            if prior == 0:
                blocked.add(key)
        for row in right.removed:
            key = tuple(row[i] for i in right_key)
            remaining = counts[key] - 1
            if remaining:
                counts[key] = remaining
            else:
                del counts[key]
                unblocked.add(key)
        net_blocked = blocked - unblocked
        net_unblocked = unblocked - blocked
        added: Set[Row] = set()
        removed: Set[Row] = set()
        for row in left.added:
            if tuple(row[i] for i in left_key) not in counts:
                added.add(row)
        for row in left.removed:
            if row in old_output:
                removed.add(row)
        if net_blocked:
            # Re-check only the output rows the newly present keys block.
            removed |= {
                row
                for row in old_output
                if tuple(row[i] for i in left_key) in net_blocked
            }
        if net_unblocked:
            # Re-check only the left rows the newly absent keys unblock.
            added |= {
                row
                for row in self._mat.results[node.left]
                if tuple(row[i] for i in left_key) in net_unblocked
            }
        return _NodeDelta(added - old_output, removed & old_output)

    # -- padding / interval operators ---------------------------------------

    def _cross_pad(self, node: CrossPad) -> _NodeDelta:
        child = self.visit(node.source)
        if self._adom_grew:
            # Surviving source rows need combinations over the new elements
            # too, so the node is recomputed locally (children are already
            # maintained).
            return self._recompute(node)
        if not child:
            return _EMPTY_DELTA
        pads = list(product(self._adom, repeat=len(node.pad)))
        added = {row + pad for row in child.added for pad in pads}
        removed = {row + pad for row in child.removed for pad in pads}
        return _NodeDelta(added, removed)

    def _interval_join(self, node: IntervalJoin) -> _NodeDelta:
        child = self.visit(node.source)
        if self._adom_grew:
            return self._recompute(node)
        if not child:
            return _EMPTY_DELTA
        source_attrs = node.source.attrs
        added = self._run_fragment(
            IntervalJoin(
                Literal(source_attrs, tuple(child.added)),
                node.var, node.lowers, node.uppers, node.attrs,
            )
        )
        removed = self._run_fragment(
            IntervalJoin(
                Literal(source_attrs, tuple(child.removed)),
                node.var, node.lowers, node.uppers, node.attrs,
            )
        )
        return _NodeDelta(added, removed)

    # -- unions --------------------------------------------------------------

    def _union(self, node: UnionAll) -> _NodeDelta:
        counts = self._mat.union_counts[node]
        added: Set[Row] = set()
        removed: Set[Row] = set()
        identity: Callable[[Row], Optional[Row]] = lambda row: row
        for part in node.parts:
            child = self.visit(part)
            if not child:
                continue
            part_added, part_removed = _apply_counts(counts, child, identity)
            added |= part_added
            removed |= part_removed
        return _NodeDelta(added - removed, removed - added)


# ---------------------------------------------------------------------------
# Row-level helpers
# ---------------------------------------------------------------------------


def _source_of(node: "Project | Select") -> PlanNode:
    return node.source


def _scan_rows(node: Scan, rows: FrozenSet[Row]) -> Set[Row]:
    """The scan's output for an explicit bag of stored rows (mirrors
    :meth:`repro.relational.exec._Executor._scan`)."""
    first_seen: Dict[str, int] = {}
    duplicate_checks: List[Tuple[int, int]] = []
    for index, name in enumerate(node.columns):
        if name is None:
            continue
        if name in first_seen:
            duplicate_checks.append((index, first_seen[name]))
        else:
            first_seen[name] = index
    output_columns = [first_seen[name] for name in node.attrs]
    passing: Set[Row] = set()
    for row in rows:
        if any(row[i] != value for i, value in node.constants):
            continue
        if any(row[i] != row[j] for i, j in duplicate_checks):
            continue
        passing.add(tuple(row[i] for i in output_columns))
    return passing


def _row_mapper(
    node: "Project | Select", domain
) -> Optional[Callable[[Row], Optional[Row]]]:
    """The per-row output mapping of a support-counted unary node.

    ``Project`` always maps (pure column projection).  ``Select`` maps only
    when it *drops* attributes (today's compiler always emits permuting
    selects, which are injective and need no counting — the mapper is then
    ``None``); a dropping select filters, permutes, and projects in one.
    """
    source_attrs = node.source.attrs
    if isinstance(node, Select) and len(node.attrs) == len(source_attrs):
        return None
    index = {name: i for i, name in enumerate(source_attrs)}
    columns = [index[name] for name in node.attrs]
    if isinstance(node, Project):
        return lambda row: tuple(row[i] for i in columns)
    conditions = node.conditions
    evaluators = [_condition_evaluator(c, index, domain) for c in conditions]

    def mapper(row: Row) -> Optional[Row]:
        for evaluate in evaluators:
            if not evaluate(row):
                return None
        return tuple(row[i] for i in columns)

    return mapper


def _condition_evaluator(
    condition: Condition, index: Dict[str, int], domain
) -> Callable[[Row], bool]:
    """A per-row predicate for one Select condition (mirrors
    :meth:`repro.relational.exec._Executor._apply_condition`)."""

    def resolve(ref: ValueRef) -> Callable[[Row], Element]:
        if isinstance(ref, ConstRef):
            value = ref.value
            return lambda row: value
        position = index[ref.name]
        return lambda row: row[position]

    if isinstance(condition, Comparison):
        left, right = resolve(condition.left), resolve(condition.right)
        negated = condition.negated
        return lambda row: (left(row) == right(row)) != negated
    getters = [resolve(arg) for arg in condition.args]
    predicate, negated = condition.predicate, condition.negated
    evaluate = domain.eval_predicate
    return lambda row: evaluate(predicate, [get(row) for get in getters]) != negated


def _apply_counts(
    counts: Dict[Row, int],
    child: _NodeDelta,
    mapper: Callable[[Row], Optional[Row]],
) -> Tuple[Set[Row], Set[Row]]:
    """Update a support-count map with a child delta; the output delta is
    the set of 0→1 transitions (added) and 1→0 transitions (removed)."""
    added: Set[Row] = set()
    removed: Set[Row] = set()
    for row in child.added:
        image = mapper(row)
        if image is None:
            continue
        prior = counts.get(image, 0)
        counts[image] = prior + 1
        if prior == 0:
            added.add(image)
    for row in child.removed:
        image = mapper(row)
        if image is None:
            continue
        remaining = counts[image] - 1
        if remaining:
            counts[image] = remaining
        else:
            del counts[image]
            removed.add(image)
    return added - removed, removed - added
