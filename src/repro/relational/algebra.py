"""A small relational algebra engine.

The paper's query language is the relational calculus, but the active-domain
evaluator in :mod:`repro.relational.calculus` and several examples benefit
from an explicit algebra: selection, projection, natural join, cartesian
product, union, difference, and rename.  Expressions form an immutable tree
that is evaluated against a :class:`~repro.relational.state.DatabaseState`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .state import DatabaseState, Element, Relation, Row

__all__ = [
    "AlgebraExpression",
    "BaseRelation",
    "LiteralRelation",
    "Selection",
    "Projection",
    "Product",
    "NaturalJoin",
    "Union",
    "Difference",
    "Rename",
    "evaluate_algebra",
]


@dataclass(frozen=True)
class NamedRelation:
    """A relation together with attribute names, the unit of algebra evaluation."""

    attributes: Tuple[str, ...]
    relation: Relation

    def __post_init__(self) -> None:
        if len(self.attributes) != self.relation.arity:
            raise ValueError("attribute count does not match relation arity")

    def rows_as_dicts(self):
        """Iterate rows as attribute-name dictionaries."""
        for row in self.relation:
            yield dict(zip(self.attributes, row))


@dataclass(frozen=True)
class BaseRelation:
    """Reference to a stored database relation by name."""

    name: str


@dataclass(frozen=True)
class LiteralRelation:
    """An inline constant relation."""

    attributes: Tuple[str, ...]
    rows: Tuple[Row, ...]


@dataclass(frozen=True)
class Selection:
    """Filter rows by a predicate over the attribute dictionary."""

    source: "AlgebraExpression"
    predicate: Callable[[Dict[str, Element]], bool]


@dataclass(frozen=True)
class Projection:
    """Keep only the named attributes, removing duplicates."""

    source: "AlgebraExpression"
    attributes: Tuple[str, ...]


@dataclass(frozen=True)
class Product:
    """Cartesian product; attribute names must be disjoint."""

    left: "AlgebraExpression"
    right: "AlgebraExpression"


@dataclass(frozen=True)
class NaturalJoin:
    """Natural join on shared attribute names."""

    left: "AlgebraExpression"
    right: "AlgebraExpression"


@dataclass(frozen=True)
class Union:
    """Set union; attribute lists must agree."""

    left: "AlgebraExpression"
    right: "AlgebraExpression"


@dataclass(frozen=True)
class Difference:
    """Set difference; attribute lists must agree."""

    left: "AlgebraExpression"
    right: "AlgebraExpression"


@dataclass(frozen=True)
class Rename:
    """Rename attributes via an old-name → new-name mapping."""

    source: "AlgebraExpression"
    mapping: Tuple[Tuple[str, str], ...]


AlgebraExpression = object  # union of the dataclasses above; kept loose for simplicity


def evaluate_algebra(expression: AlgebraExpression, state: DatabaseState) -> NamedRelation:
    """Evaluate a relational algebra expression against a database state."""
    if isinstance(expression, BaseRelation):
        schema = state.schema.relation(expression.name)
        return NamedRelation(schema.attributes, state[expression.name])

    if isinstance(expression, LiteralRelation):
        return NamedRelation(
            expression.attributes,
            Relation(len(expression.attributes), expression.rows),
        )

    if isinstance(expression, Selection):
        source = evaluate_algebra(expression.source, state)
        kept = [
            row
            for row in source.relation
            if expression.predicate(dict(zip(source.attributes, row)))
        ]
        return NamedRelation(source.attributes, Relation(source.relation.arity, kept))

    if isinstance(expression, Projection):
        source = evaluate_algebra(expression.source, state)
        missing = [a for a in expression.attributes if a not in source.attributes]
        if missing:
            raise KeyError(f"projection attributes not present: {missing}")
        indices = [source.attributes.index(a) for a in expression.attributes]
        rows = {tuple(row[i] for i in indices) for row in source.relation}
        return NamedRelation(
            tuple(expression.attributes), Relation(len(indices), rows)
        )

    if isinstance(expression, Product):
        left = evaluate_algebra(expression.left, state)
        right = evaluate_algebra(expression.right, state)
        overlap = set(left.attributes) & set(right.attributes)
        if overlap:
            raise ValueError(f"product requires disjoint attributes, shared: {overlap}")
        rows = {
            lrow + rrow for lrow in left.relation for rrow in right.relation
        }
        return NamedRelation(
            left.attributes + right.attributes,
            Relation(len(left.attributes) + len(right.attributes), rows),
        )

    if isinstance(expression, NaturalJoin):
        left = evaluate_algebra(expression.left, state)
        right = evaluate_algebra(expression.right, state)
        shared = [a for a in left.attributes if a in right.attributes]
        right_only = [a for a in right.attributes if a not in shared]
        out_attrs = tuple(left.attributes) + tuple(right_only)
        left_idx = {a: i for i, a in enumerate(left.attributes)}
        right_idx = {a: i for i, a in enumerate(right.attributes)}
        # Hash join on the shared attributes.
        buckets: Dict[Tuple[Element, ...], list] = {}
        for rrow in right.relation:
            key = tuple(rrow[right_idx[a]] for a in shared)
            buckets.setdefault(key, []).append(rrow)
        rows = set()
        for lrow in left.relation:
            key = tuple(lrow[left_idx[a]] for a in shared)
            for rrow in buckets.get(key, ()):
                rows.add(lrow + tuple(rrow[right_idx[a]] for a in right_only))
        return NamedRelation(out_attrs, Relation(len(out_attrs), rows))

    if isinstance(expression, Union):
        left = evaluate_algebra(expression.left, state)
        right = evaluate_algebra(expression.right, state)
        _check_compatible(left, right, "union")
        return NamedRelation(left.attributes, left.relation.union(right.relation))

    if isinstance(expression, Difference):
        left = evaluate_algebra(expression.left, state)
        right = evaluate_algebra(expression.right, state)
        _check_compatible(left, right, "difference")
        return NamedRelation(left.attributes, left.relation.difference(right.relation))

    if isinstance(expression, Rename):
        source = evaluate_algebra(expression.source, state)
        mapping = dict(expression.mapping)
        new_attrs = tuple(mapping.get(a, a) for a in source.attributes)
        if len(set(new_attrs)) != len(new_attrs):
            raise ValueError("rename produced duplicate attribute names")
        return NamedRelation(new_attrs, source.relation)

    raise TypeError(f"not a relational algebra expression: {expression!r}")


def _check_compatible(left: NamedRelation, right: NamedRelation, op: str) -> None:
    if left.attributes != right.attributes:
        raise ValueError(
            f"{op} requires identical attribute lists: "
            f"{left.attributes} vs {right.attributes}"
        )
