"""Active domains.

The *active domain* of a query in a database state is "the set of all
constants used in the querying formula and/or elements contained in the
database relations" (the paper, Section 1).  It is the yardstick for
domain-independence and the universe over which active-domain semantics
quantifies.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..logic.analysis import constants_of
from ..logic.formulas import Formula
from .state import DatabaseState, Element

__all__ = ["active_domain", "active_domain_of_state", "active_domain_of_query"]


def active_domain_of_state(state: DatabaseState) -> FrozenSet[Element]:
    """Elements stored in the database relations of ``state``."""
    return state.elements()


def active_domain_of_query(query: Formula) -> FrozenSet[Element]:
    """Constants mentioned in the query formula."""
    return frozenset(c.value for c in constants_of(query))


def active_domain(
    state: DatabaseState, query: Optional[Formula] = None
) -> FrozenSet[Element]:
    """The active domain of ``query`` in ``state``.

    With ``query=None`` this is just the set of elements stored in the state.
    """
    result = active_domain_of_state(state)
    if query is not None:
        result |= active_domain_of_query(query)
    return result
