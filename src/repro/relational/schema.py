"""Database schemas in the sense of Codd's relational model.

A *database scheme* fixes the relation names and their arities; the data
stored under a scheme at a point in time is a *database state*
(:mod:`repro.relational.state`).  The scheme never changes as data changes —
exactly the father/son example of the paper's introduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

__all__ = ["RelationSchema", "DatabaseSchema"]


@dataclass(frozen=True, order=True)
class RelationSchema:
    """A relation name together with its arity and optional attribute names."""

    name: str
    arity: int
    attributes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise ValueError("arity must be non-negative")
        if self.attributes and len(self.attributes) != self.arity:
            raise ValueError(
                f"relation {self.name}: {len(self.attributes)} attribute names "
                f"given for arity {self.arity}"
            )
        if not self.attributes:
            object.__setattr__(
                self, "attributes", tuple(f"a{i}" for i in range(self.arity))
            )

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


@dataclass(frozen=True)
class DatabaseSchema:
    """A collection of relation schemas with distinct names."""

    relations: Tuple[RelationSchema, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "relations", tuple(self.relations))
        names = [r.name for r in self.relations]
        if len(names) != len(set(names)):
            raise ValueError("duplicate relation names in schema")

    @classmethod
    def of(cls, **arities: int) -> "DatabaseSchema":
        """Build a schema from ``name=arity`` keyword arguments."""
        return cls(tuple(RelationSchema(name, arity) for name, arity in arities.items()))

    @property
    def names(self) -> Tuple[str, ...]:
        """The relation names, in declaration order."""
        return tuple(r.name for r in self.relations)

    def __contains__(self, name: str) -> bool:
        return any(r.name == name for r in self.relations)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def relation(self, name: str) -> RelationSchema:
        """The schema of the relation called ``name``."""
        for r in self.relations:
            if r.name == name:
                return r
        raise KeyError(f"no relation named {name!r} in schema")

    def arity(self, name: str) -> int:
        """The arity of the relation called ``name``."""
        return self.relation(name).arity

    def extend(self, extra: Iterable[RelationSchema]) -> "DatabaseSchema":
        """A new schema with additional relations appended."""
        return DatabaseSchema(self.relations + tuple(extra))

    def __str__(self) -> str:
        return "{" + ", ".join(str(r) for r in self.relations) + "}"
