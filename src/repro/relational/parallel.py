"""Morsel-driven parallel execution of compiled relational-algebra plans.

This is the **fourth execution substrate**, layered directly on the
vectorized columnar executor (:mod:`repro.relational.columnar`): the same
plan IR, the same int64 code tables, the same kernels — but every data-sized
kernel invocation is partitioned into fixed-size **morsels** (row chunks)
and dispatched to a process-wide thread pool.  NumPy kernels release the GIL
while they crunch, so plain threads give real multi-core speedups without
the serialization cost of multiprocessing, and every intermediate array can
be shared by reference.

How each kernel parallelises (all merges reuse existing machinery):

* **dedupe** (``unique_rows``) — each morsel deduplicates independently,
  the per-morsel survivors are concatenated, and one final sequential
  ``unique_rows`` merges them (a union of sets is a set);
* **joins** (``join_indices``) — the *left* table is chunked; each morsel
  joins against the full right side.  Disjoint left slices of a
  deduplicated table produce disjoint join outputs, so the concatenated
  result needs no re-dedupe;
* **antijoins** (``membership_mask``) — left-chunked mask computation,
  masks concatenate positionally;
* **pads** (``cross_pad_arrays``, ``interval_pad``) — source rows are
  chunked by *estimated output rows* (``morsel_rows // pad width``), so a
  morsel's output stays bounded even when the pad explodes row counts;
* **selection masks** — the table is row-chunked and each morsel evaluates
  the full condition list on its slice;
* **interval unions** (``range_union_mask``) — the witness ranges are
  chunked and the per-morsel cover masks merge with logical OR.

Tables at or below one morsel bypass the pool entirely — tiny inputs never
pay thread-dispatch overhead, which keeps the substrate safe to leave on.

Exactness is inherited: for every plan the decoded row set equals
:func:`repro.relational.columnar.run_plan_vectorized` (and therefore the set
executor and the tree walker) on the same inputs, and results are
deterministic — morsels are gathered in submission order and every merge is
order-independent at the set level.

Doctest — a forced-multi-morsel join agrees with the sequential executors:

>>> from repro.experiments.corpora import family_schema
>>> from repro.relational.state import DatabaseState
>>> from repro.relational.compile import compile_query
>>> from repro.logic.parser import parse_formula
>>> from repro.domains.equality import EqualityDomain
>>> from repro.relational.columnar import run_plan_vectorized
>>> state = DatabaseState(family_schema(), {"F": [(0, 1), (1, 2), (1, 3)]})
>>> compiled = compile_query(parse_formula("exists y. (F(x, y) & F(y, z))"),
...                          state.schema, EqualityDomain())
>>> adom = [0, 1, 2, 3]
>>> stats = MorselStats()
>>> rows = run_plan_parallel(compiled.plan, state, adom, EqualityDomain(),
...                          morsel_rows=2, stats=stats)
>>> sorted(rows)
[(0, 2), (0, 3)]
>>> rows == run_plan_vectorized(compiled.plan, state, adom, EqualityDomain())
True
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Set, Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine.budget import Deadline

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from ..testing import faults
from .columnar import (
    EncodeCache,
    VectorizationError,
    _ColumnarExecutor,
    _decode_table,
    _prepare_columns,
    vectorization_obstacle,
)
from .exec import PlanNode
from .state import DatabaseState, Element, Row

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "WORKERS_ENV",
    "MorselStats",
    "StageMergeStats",
    "default_worker_count",
    "configure_worker_pool",
    "worker_pool",
    "worker_pool_info",
    "shutdown_worker_pool",
    "run_plan_parallel",
]

#: rows per morsel; sized so one morsel's working set (a few int64 columns)
#: stays around a megabyte — well inside L2/L3, far above thread overhead
DEFAULT_MORSEL_ROWS = 65536

#: environment override for the worker count (CI runners pin this so
#: few-core machines behave deterministically); unset means ``os.cpu_count``
WORKERS_ENV = "REPRO_PARALLEL_WORKERS"


def default_worker_count() -> int:
    """The worker count a fresh pool would use.

    The :data:`WORKERS_ENV` environment variable wins when set (and
    positive); otherwise ``os.cpu_count()``.  Always at least 1.
    """
    override = os.environ.get(WORKERS_ENV)
    if override is not None:
        try:
            workers = int(override)
        except ValueError:
            workers = 0
        if workers >= 1:
            return workers
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# The process-wide kernel worker pool
# ---------------------------------------------------------------------------
#
# One pool per process, shared by every parallel execution (library calls and
# the serving layer alike) — morsel tasks are short and CPU-bound, so a
# second pool would only add threads competing for the same cores.  The pool
# is distinct from the serve layer's *request* pool on purpose: request
# workers block waiting on morsel futures, so sharing one pool would
# deadlock the moment every worker held a query and none was free to run its
# morsels.  Morsel tasks never submit further morsel tasks, so this pool
# cannot deadlock on itself.

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_CONFIGURED: Optional[int] = None
_POOL_TASKS = 0
_POOL_LOCK = threading.Lock()


def configure_worker_pool(workers: Optional[int]) -> int:
    """Pin (or unpin) the shared pool's worker count; returns the effective count.

    ``workers=None`` reverts to :func:`default_worker_count`.  A live pool of
    a different size is shut down (letting queued morsels finish) and lazily
    rebuilt at the new size on next use.  The serving layer calls this from
    ``SessionManager`` with its ``policy.morsel_workers`` knob.
    """
    global _POOL, _POOL_WORKERS, _POOL_CONFIGURED
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be a positive integer, got {workers!r}")
    with _POOL_LOCK:
        _POOL_CONFIGURED = workers
        effective = workers if workers is not None else default_worker_count()
        if _POOL is not None and _POOL_WORKERS != effective:
            _POOL.shutdown(wait=False)
            _POOL = None
            _POOL_WORKERS = 0
        return effective


def worker_pool() -> ThreadPoolExecutor:
    """The shared morsel worker pool (created lazily on first parallel run)."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None:
            _POOL_WORKERS = (
                _POOL_CONFIGURED
                if _POOL_CONFIGURED is not None
                else default_worker_count()
            )
            _POOL = ThreadPoolExecutor(
                max_workers=_POOL_WORKERS, thread_name_prefix="repro-morsel"
            )
        return _POOL


def shutdown_worker_pool() -> None:
    """Stop the shared pool (idempotent); it is rebuilt lazily on next use."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
        _POOL_WORKERS = 0
    if pool is not None:
        pool.shutdown(wait=True)


def worker_pool_info() -> Dict[str, Any]:
    """JSON-ready facts about the shared pool (for ``/stats`` and tests)."""
    with _POOL_LOCK:
        return {
            "workers": _POOL_WORKERS if _POOL is not None else None,
            "configured": _POOL_CONFIGURED,
            "default": default_worker_count(),
            "live": _POOL is not None,
            "tasks_dispatched": _POOL_TASKS,
        }


def _count_tasks(count: int) -> None:
    global _POOL_TASKS
    with _POOL_LOCK:
        _POOL_TASKS += count


# ---------------------------------------------------------------------------
# Morsel bookkeeping
# ---------------------------------------------------------------------------


@dataclass
class StageMergeStats:
    """What one kernel stage did across all its invocations in a run."""

    #: morsels dispatched to the pool (sequential bypasses count as 1)
    morsels: int = 0
    #: input rows partitioned across those morsels
    rows_in: int = 0
    #: output rows after the stage's merge
    rows_out: int = 0

    def describe(self) -> str:
        return f"{self.morsels} morsel(s), {self.rows_in}->{self.rows_out} rows"


@dataclass
class MorselStats:
    """Per-run morsel accounting, surfaced by ``ParallelAlgebraPlan.explain()``.

    >>> stats = MorselStats(workers=4, morsel_rows=1000)
    >>> stats.record("join", morsels=3, rows_in=2500, rows_out=900)
    >>> stats.record("join", morsels=1, rows_in=10, rows_out=10)
    >>> stats.morsels, stats.describe()
    (4, 'workers=4 morsel_rows=1000 morsels=4; join: 4 morsel(s), 2510->910 rows')
    """

    #: workers in the pool the run dispatched to
    workers: int = 0
    #: the row budget per morsel the run partitioned by
    morsel_rows: int = DEFAULT_MORSEL_ROWS
    #: per-stage merge accounting, keyed by kernel-stage name
    stages: Dict[str, StageMergeStats] = field(default_factory=dict)

    @property
    def morsels(self) -> int:
        """Total morsels across every stage."""
        return sum(stage.morsels for stage in self.stages.values())

    def record(self, stage: str, morsels: int, rows_in: int, rows_out: int) -> None:
        entry = self.stages.setdefault(stage, StageMergeStats())
        entry.morsels += morsels
        entry.rows_in += rows_in
        entry.rows_out += rows_out

    def describe(self) -> str:
        text = (
            f"workers={self.workers} morsel_rows={self.morsel_rows} "
            f"morsels={self.morsels}"
        )
        if self.stages:
            text += "; " + "; ".join(
                f"{name}: {stage.describe()}"
                for name, stage in sorted(self.stages.items())
            )
        return text


# ---------------------------------------------------------------------------
# The morsel-parallel executor
# ---------------------------------------------------------------------------


class _ParallelExecutor(_ColumnarExecutor):
    """The columnar executor with every kernel hook chunked across the pool.

    Only the kernel hooks are overridden — operator semantics, encoding, and
    interval machinery live entirely in :class:`_ColumnarExecutor`, so the
    two substrates cannot drift apart.
    """

    def __init__(
        self,
        state: DatabaseState,
        adom: Sequence[Element],
        codec: Any,
        relation_columns: Optional[Dict[str, Any]] = None,
        *,
        pool: ThreadPoolExecutor,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        stats: Optional[MorselStats] = None,
        deadline: "Optional[Deadline]" = None,
    ) -> None:
        super().__init__(state, adom, codec, relation_columns, deadline)
        self._pool = pool
        self._morsel_rows = morsel_rows
        self._stats = stats

    # -- chunk dispatch ------------------------------------------------------

    def _map_chunks(
        self,
        stage: str,
        rows: int,
        kernel: Callable[[int, int], Any],
        *,
        chunk_rows: Optional[int] = None,
    ) -> List[Any]:
        """Run ``kernel(start, end)`` per morsel; results in submission order.

        Exceptions raised inside a worker (e.g. a carrier-dependent
        :class:`VectorizationError` from a selection mask) propagate to the
        caller through ``Future.result()``, exactly as if the kernel had run
        inline.  A single-morsel input runs on the calling thread.
        """
        chunk = chunk_rows if chunk_rows is not None else self._morsel_rows
        chunk = max(1, chunk)
        if rows <= chunk:
            result = kernel(0, rows)
            self._record(stage, 1, rows, result)
            return [result]
        # Cooperative checkpoint before each pool submission wave: a deadline
        # or a cancellation stops dispatching stragglers — the morsels already
        # in flight finish (kernels are uninterruptible) but no new wave starts.
        if self._deadline is not None:
            self._deadline.check(f"{stage} morsel dispatch")
        faults.fire("pool-submit")
        bounds = [(start, min(start + chunk, rows)) for start in range(0, rows, chunk)]
        futures = [self._pool.submit(kernel, start, end) for start, end in bounds]
        _count_tasks(len(futures))
        results = [future.result() for future in futures]
        self._record(stage, len(results), rows, *results)
        return results

    def _record(self, stage: str, morsels: int, rows_in: int, *results: Any) -> None:
        if self._stats is None:
            return
        rows_out = 0
        for result in results:
            shape = getattr(result, "shape", None)
            if shape:
                rows_out += int(shape[0])
        self._stats.record(stage, morsels, rows_in, rows_out)

    # -- kernel hooks, chunked ----------------------------------------------

    def _unique_rows(self, codes: Any) -> Any:
        parts = self._map_chunks(
            "unique", codes.shape[0],
            lambda start, end: self._k.unique_rows(codes[start:end]),
        )
        if len(parts) == 1:
            return parts[0]
        # Hierarchical dedupe: per-morsel uniques drop the bulk of the
        # duplicates in parallel; one sequential pass merges the survivors.
        return self._k.unique_rows(np.concatenate(parts, axis=0))

    def _join_codes(
        self,
        left_codes: Any,
        right_codes: Any,
        left_key: Sequence[int],
        right_key: Sequence[int],
        rest: Sequence[int],
    ) -> Any:
        join = super()._join_codes
        parts = self._map_chunks(
            "join", left_codes.shape[0],
            lambda start, end: join(
                left_codes[start:end], right_codes, left_key, right_key, rest
            ),
        )
        # Disjoint left slices of a deduplicated table join to disjoint
        # outputs, so concatenation needs no re-dedupe.
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)

    def _membership(self, left_keys: Any, right_keys: Any) -> Any:
        member = super()._membership
        parts = self._map_chunks(
            "antijoin", left_keys.shape[0],
            lambda start, end: member(left_keys[start:end], right_keys),
        )
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def _pad_codes(self, codes: Any, values: Any) -> Any:
        pad = super()._pad_codes
        # Chunk by *output* rows: each source row fans out |values| times.
        chunk_rows = max(1, self._morsel_rows // max(1, int(values.shape[0])))
        parts = self._map_chunks(
            "pad", codes.shape[0],
            lambda start, end: pad(codes[start:end], values),
            chunk_rows=chunk_rows,
        )
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)

    def _interval_pad_codes(
        self, codes: Any, values_sorted: Any, starts: Any, ends: Any
    ) -> Any:
        pad = super()._interval_pad_codes
        chunk_rows = max(
            1, self._morsel_rows // max(1, int(values_sorted.shape[0]))
        )
        parts = self._map_chunks(
            "interval-pad", codes.shape[0],
            lambda start, end: pad(
                codes[start:end], values_sorted, starts[start:end], ends[start:end]
            ),
            chunk_rows=chunk_rows,
        )
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)

    def _union_mask(self, starts: Any, ends: Any, size: int) -> Any:
        mask = super()._union_mask
        parts = self._map_chunks(
            "interval-union", starts.shape[0],
            lambda start, end: mask(starts[start:end], ends[start:end], size),
        )
        if len(parts) == 1:
            return parts[0]
        # A union of unions: per-morsel cover masks merge with logical OR.
        return np.logical_or.reduce(parts)

    def _select_mask(self, table: Any, conditions: Tuple[Any, ...]) -> Any:
        sequential = super()._select_mask
        table_cls = type(table)
        parts = self._map_chunks(
            "select", table.codes.shape[0],
            lambda start, end: sequential(
                table_cls(table.attrs, table.codes[start:end]), conditions
            ),
        )
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_plan_parallel(
    node: PlanNode,
    state: DatabaseState,
    adom: Sequence[Element],
    domain: object = None,
    *,
    morsel_rows: int = DEFAULT_MORSEL_ROWS,
    pool: Optional[ThreadPoolExecutor] = None,
    stats: Optional[MorselStats] = None,
    cache: Optional[EncodeCache] = None,
    use_cache: bool = True,
    deadline: "Optional[Deadline]" = None,
) -> Set[Row]:
    """Evaluate a compiled plan with morsel-parallel columnar kernels.

    The contract is identical to
    :func:`repro.relational.columnar.run_plan_vectorized` — same plan IR,
    same explicit active domain, same set-of-rows result, same
    :class:`~repro.relational.columnar.VectorizationError` on plans or
    carriers without a vectorized execution — plus morsel knobs:

    * ``morsel_rows`` — the row budget per chunk (pads chunk by *estimated
      output* rows, so a morsel's working set stays bounded);
    * ``pool`` — an explicit worker pool (tests pin a 1-worker pool here);
      default is the process-wide shared pool (:func:`worker_pool`);
    * ``stats`` — a :class:`MorselStats` filled with per-stage merge
      accounting.

    Inputs at or below one morsel run on the calling thread — callers can
    leave this substrate on without a size check, though
    :class:`~repro.engine.plans.ParallelAlgebraPlan` adds a state-size
    heuristic so tiny queries skip even the encode of the shared pool path.

    >>> from repro.relational.exec import AdomScan
    >>> from repro.relational.schema import DatabaseSchema
    >>> state = DatabaseState(DatabaseSchema())
    >>> sorted(run_plan_parallel(AdomScan(("x",)), state, [3, 1, 2],
    ...                          morsel_rows=1))
    [(1,), (2,), (3,)]
    """
    obstacle = vectorization_obstacle(node)
    if obstacle is not None:
        raise VectorizationError(obstacle)
    if morsel_rows < 1:
        raise ValueError(f"morsel_rows must be positive, got {morsel_rows!r}")
    codec, store = _prepare_columns(
        node, state, adom, cache=cache, use_cache=use_cache
    )
    effective_pool = pool if pool is not None else worker_pool()
    if stats is not None:
        stats.workers = getattr(effective_pool, "_max_workers", 0)
        stats.morsel_rows = morsel_rows
    executor = _ParallelExecutor(
        state,
        adom,
        codec,
        store,
        pool=effective_pool,
        morsel_rows=morsel_rows,
        stats=stats,
        deadline=deadline,
    )
    table = executor.run(node)
    if deadline is not None:
        deadline.check("decode")
    return _decode_table(codec, table)
