"""The logical plan optimizer: algebra-IR rewrites between compile and run.

The compiler (:mod:`repro.relational.compile`) emits a *correct* plan; this
module makes it a *cheap* one.  Every rewrite preserves the plan's answer on
every state and every active domain — the optimizer is pure plan surgery, so
it runs once per compilation and its output is cached alongside the plan.

Four families of rewrites, applied bottom-up in one pass:

1. **interleaved pad/filter** — a ``Select`` over a multi-column ``CrossPad``
   is decomposed into per-column pads with each condition applied the moment
   its attributes are bound, so filters fire between pads instead of after
   the full ``|adom|^k`` product;
2. **interval joins on ordered domains** — when the domain's carrier is
   flagged ordered in the registry, a padded column filtered by ``<``/``<=``
   (or their negations/flips) becomes an ``IntervalJoin``: the column ranges
   over a binary-searched slice of the sorted active domain instead of being
   generated and then filtered pointwise;
3. **projection pushdown** — a ``Project`` over a ``Join`` pushes into the
   parts (attributes used by only one part are dropped before the join), a
   ``Project`` over a ``CrossPad`` drops pad columns it does not keep
   (guarding the all-dropped case with a non-empty-adom check), and nested
   projections collapse;
4. **range reduction** — ``Project`` to just the padded variable over an
   ``IntervalJoin`` eliminates the existential witness: ``∃y (S(y) ∧ y < x)``
   becomes ``x > min(S)``, a :class:`~repro.relational.exec.RangeScan` with
   an aggregated bound, turning the "strictly between two members" plan from
   ``O(|adom|^3)`` materialisation into ``O(|answer|)``.  When one witness
   component bounds the variable on *both* sides
   (``∃y∃z (R(y, z) ∧ y < x ∧ x < z)``) the per-row intervals are not
   nested, so no single aggregated bound exists; the reduction then emits an
   :class:`~repro.relational.exec.IntervalUnionScan`, which merges the
   per-row ranges with the sorted interval-merge of
   :mod:`repro.relational.bounds` — still ``O(|answer|)`` peak rows.

The endpoint machinery (``Bound``/``AggBound``, the order-predicate table,
:func:`~repro.relational.bounds.domain_is_ordered`) is shared with the tree
walker's quantifier-range narrowing and the enumeration engine's candidate
pruning through :mod:`repro.relational.bounds`.

The rewrites it performed are returned as human-readable notes, which
:meth:`repro.relational.compile.CompiledQuery.summary` (and therefore
``Plan.explain()``) surface for debuggability.

Doctest — the between-two-members shape reduces to a single range scan
whose bounds aggregate the two witness scans (``min S < x < max S``):

>>> from repro.domains.nat_order import NaturalOrderDomain
>>> from repro.experiments.corpora import numeric_schema
>>> from repro.logic.parser import parse_formula
>>> from repro.relational.compile import compile_query
>>> between = parse_formula("exists y. exists z. (S(y) & S(z) & y < x & x < z)")
>>> compiled = compile_query(between, numeric_schema(), NaturalOrderDomain())
>>> compiled.summary()
'2 scans, 1 range-scan; optimizer: interleaved 2 condition(s) with adom pads, introduced 1 interval join(s), reduced 1 interval join(s) to range scans'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .bounds import ORDER_PREDICATES, domain_is_ordered
from .exec import (
    AdomScan,
    AggBound,
    AntiJoin,
    AttrRef,
    Bound,
    Comparison,
    Condition,
    ConstRef,
    CrossPad,
    DomainCondition,
    IntervalJoin,
    IntervalUnionScan,
    Join,
    Literal,
    PlanNode,
    Project,
    RangeBound,
    RangeScan,
    Select,
    UnionAll,
)

__all__ = [
    "optimize_plan",
    "domain_is_ordered",
    "next_pad_column",
    "OPTIMIZABLE_PREDICATES",
]

#: domain predicates the optimizer can turn into interval bounds (the shared
#: constant from :mod:`repro.relational.bounds`, kept under its legacy name)
OPTIMIZABLE_PREDICATES = ORDER_PREDICATES


@dataclass
class _RewriteLog:
    """Counters for the rewrites one :func:`optimize_plan` call performed."""

    interleaved: int = 0
    interval_joins: int = 0
    range_reductions: int = 0
    union_reductions: int = 0
    pads_eliminated: int = 0
    projections_pushed: int = 0

    def notes(self) -> Tuple[str, ...]:
        parts: List[str] = []
        if self.interleaved:
            parts.append(
                f"interleaved {self.interleaved} condition(s) with adom pads"
            )
        if self.interval_joins:
            parts.append(f"introduced {self.interval_joins} interval join(s)")
        if self.range_reductions:
            parts.append(
                f"reduced {self.range_reductions} interval join(s) to range scans"
            )
        if self.union_reductions:
            parts.append(
                f"reduced {self.union_reductions} both-sided witness(es) to "
                "interval-union scans"
            )
        if self.pads_eliminated:
            parts.append(f"eliminated {self.pads_eliminated} adom pad column(s)")
        if self.projections_pushed:
            parts.append(
                f"pushed {self.projections_pushed} projection(s) into joins"
            )
        return tuple(parts)


def optimize_plan(
    plan: PlanNode, *, ordered: bool = False
) -> Tuple[PlanNode, Tuple[str, ...]]:
    """Rewrite ``plan`` into an answer-equivalent but cheaper plan.

    ``ordered`` enables the interval-join rewrites (only sound on domains
    whose comparison predicates follow the integer order — see
    :func:`domain_is_ordered`).  Returns the rewritten plan plus notes
    describing the rewrites performed (empty when nothing changed).
    """
    rewriter = _Rewriter(ordered)
    return rewriter.rewrite(plan), rewriter.log.notes()


def next_pad_column(
    bound_attrs: Set[str],
    candidates: Sequence[str],
    pending_needs: Sequence[Set[str]],
) -> str:
    """The pad column enabling the most pending conditions (ties by name).

    The shared ordering heuristic behind interleaved padding — the compiler's
    conjunction handler and the optimizer's pad normalisation both use it, so
    compiled and re-derived plans always pick the same pad order (and hence
    the same interval joins).
    """

    def enabled(column: str) -> int:
        with_column = bound_attrs | {column}
        return sum(1 for needed in pending_needs if needed <= with_column)

    return min(candidates, key=lambda column: (-enabled(column), column))


def _aligned(node: PlanNode, attrs: Tuple[str, ...]) -> PlanNode:
    return node if node.attrs == attrs else Project(node, attrs)


def _condition_needs(condition: Condition) -> Set[str]:
    refs = (
        (condition.left, condition.right)
        if isinstance(condition, Comparison)
        else condition.args
    )
    return {ref.name for ref in refs if isinstance(ref, AttrRef)}


class _Rewriter:
    def __init__(self, ordered: bool) -> None:
        self._ordered = ordered
        self.log = _RewriteLog()

    # -- dispatch -----------------------------------------------------------

    def rewrite(self, node: PlanNode) -> PlanNode:
        if isinstance(node, Select):
            return self._select(node)
        if isinstance(node, Project):
            return self._project(node)
        if isinstance(node, Join):
            parts = tuple(self.rewrite(part) for part in node.parts)
            return Join(parts, node.attrs)
        if isinstance(node, AntiJoin):
            return AntiJoin(
                self.rewrite(node.left), self.rewrite(node.right), node.attrs
            )
        if isinstance(node, CrossPad):
            return CrossPad(self.rewrite(node.source), node.pad, node.attrs)
        if isinstance(node, IntervalJoin):
            return IntervalJoin(
                self.rewrite(node.source), node.var,
                node.lowers, node.uppers, node.attrs,
            )
        if isinstance(node, IntervalUnionScan):
            return IntervalUnionScan(
                self.rewrite(node.source), node.var,
                node.lowers, node.uppers, node.attrs,
            )
        if isinstance(node, UnionAll):
            parts = tuple(self.rewrite(part) for part in node.parts)
            return UnionAll(parts, node.attrs)
        if isinstance(node, RangeScan):
            lowers = tuple(self._rewrite_bound(bound) for bound in node.lowers)
            uppers = tuple(self._rewrite_bound(bound) for bound in node.uppers)
            return RangeScan(lowers, uppers, node.attrs)
        return node  # Scan, AdomScan, Literal: leaves

    def _rewrite_bound(self, bound: RangeBound) -> RangeBound:
        if isinstance(bound, AggBound):
            return AggBound(self.rewrite(bound.source), bound.kind, bound.inclusive)
        return bound

    # -- pad/filter interleaving and interval joins -------------------------

    def _select(self, node: Select) -> PlanNode:
        source = self.rewrite(node.source)
        conditions: List[Condition] = list(node.conditions)
        while isinstance(source, Select):
            conditions = list(source.conditions) + conditions
            source = source.source
        if isinstance(source, CrossPad):
            rewritten = self._interleave(
                source.source, list(source.pad), conditions
            )
        elif conditions:
            rewritten = Select(source, tuple(conditions), source.attrs)
        else:
            rewritten = source
        return _aligned(rewritten, node.attrs)

    def _interleave(
        self,
        source: PlanNode,
        pad: List[str],
        conditions: List[Condition],
    ) -> PlanNode:
        current = source
        pending = list(conditions)

        def attach_ready() -> None:
            nonlocal current, pending
            bound_attrs = set(current.attrs)
            ready = [c for c in pending if _condition_needs(c) <= bound_attrs]
            if not ready:
                return
            if pad:  # fired before the last pad column: genuinely interleaved
                self.log.interleaved += len(ready)
            pending = [c for c in pending if c not in ready]
            current = _fuse_select(current, tuple(ready))

        attach_ready()
        while pad:
            column = next_pad_column(
                set(current.attrs), pad, [_condition_needs(c) for c in pending]
            )
            pad.remove(column)
            bound_attrs = set(current.attrs) | {column}
            ready = [c for c in pending if _condition_needs(c) <= bound_attrs]
            pending = [c for c in pending if c not in ready]
            lowers, uppers, residual = self._extract_bounds(
                column, set(current.attrs), ready
            )
            if lowers or uppers:
                self.log.interval_joins += 1
                self.log.interleaved += len(ready) - len(residual)
                current = IntervalJoin(
                    current, column, tuple(lowers), tuple(uppers),
                    current.attrs + (column,),
                )
            else:
                current = CrossPad(current, (column,), current.attrs + (column,))
            if residual:
                if pad:
                    self.log.interleaved += len(residual)
                current = _fuse_select(current, tuple(residual))
        if pending:  # conditions whose attributes the plan never binds: keep
            current = _fuse_select(current, tuple(pending))
        return current

    def _extract_bounds(
        self,
        column: str,
        bound_attrs: Set[str],
        conditions: Sequence[Condition],
    ) -> Tuple[List[Bound], List[Bound], List[Condition]]:
        """Split conditions on ``column`` into interval bounds + residual."""
        lowers: List[Bound] = []
        uppers: List[Bound] = []
        residual: List[Condition] = []
        for condition in conditions:
            bound = None
            if (
                self._ordered
                and isinstance(condition, DomainCondition)
                and condition.predicate in OPTIMIZABLE_PREDICATES
                and len(condition.args) == 2
            ):
                bound = self._as_bound(column, bound_attrs, condition)
            if bound is None:
                residual.append(condition)
            else:
                side, ref, inclusive = bound
                (lowers if side == "lower" else uppers).append(
                    Bound(ref, inclusive)
                )
        return lowers, uppers, residual

    @staticmethod
    def _as_bound(
        column: str, bound_attrs: Set[str], condition: DomainCondition
    ) -> Optional[Tuple[str, "AttrRef | ConstRef", bool]]:
        left, right = condition.args
        column_left = isinstance(left, AttrRef) and left.name == column
        column_right = isinstance(right, AttrRef) and right.name == column
        if column_left == column_right:  # both sides or neither: not a bound
            return None
        other = right if column_left else left
        if isinstance(other, ConstRef):
            # Non-integer constants under an ordered comparison stay on the
            # pointwise path, which preserves its (coercion) error behaviour.
            if not isinstance(other.value, int):
                return None
        elif not (isinstance(other, AttrRef) and other.name in bound_attrs):
            return None
        # Normalise to (side, inclusive) with the pad column on the left.
        table = {
            "<": ("upper", False), "<=": ("upper", True),
            ">": ("lower", False), ">=": ("lower", True),
        }
        side, inclusive = table[condition.predicate]
        if not column_left:  # e.g. "y < x" is a lower bound on x
            side = "lower" if side == "upper" else "upper"
        if condition.negated:  # ¬(x < y) ⟺ x >= y on a total order
            side = "lower" if side == "upper" else "upper"
            inclusive = not inclusive
        return side, other, inclusive

    # -- projection rules ---------------------------------------------------

    def _project(self, node: Project) -> PlanNode:
        source = self.rewrite(node.source)
        attrs = node.attrs
        while isinstance(source, Project):  # collapse nested projections
            source = source.source
        if isinstance(source, CrossPad):
            source = self._eliminate_pads(source, attrs)
        if isinstance(source, IntervalJoin) and attrs == (source.var,):
            reduced = self._reduce_interval(source)
            if reduced is not None:
                return _aligned(reduced, attrs)
        if isinstance(source, Join):
            source = self._push_projection(source, attrs)
        return _aligned(source, attrs)

    def _eliminate_pads(self, pad: CrossPad, wanted: Tuple[str, ...]) -> PlanNode:
        """Drop pad columns the enclosing projection discards.

        Under set semantics an unprojected pad column only multiplies rows,
        so it can vanish — except that a pad over an *empty* active domain
        empties the result, which the all-dropped case preserves by joining
        with an explicit non-empty-adom check.
        """
        dropped = [column for column in pad.pad if column not in wanted]
        if not dropped:
            return pad
        self.log.pads_eliminated += len(dropped)
        kept = tuple(column for column in pad.pad if column in wanted)
        source = pad.source
        if kept:
            return CrossPad(source, kept, source.attrs + kept)
        witness = Project(AdomScan((dropped[0],)), ())
        return Join((source, witness), source.attrs)

    def _push_projection(self, join: Join, wanted: Tuple[str, ...]) -> PlanNode:
        """Project join parts early: attributes used by a single part and not
        in the output are dropped before the join instead of after it."""
        counts: Dict[str, int] = {}
        for part in join.parts:
            for attr in set(part.attrs):
                counts[attr] = counts.get(attr, 0) + 1
        needed = set(wanted) | {attr for attr, n in counts.items() if n > 1}
        new_parts: List[PlanNode] = []
        changed = False
        for part in join.parts:
            keep = tuple(attr for attr in part.attrs if attr in needed)
            if len(keep) < len(part.attrs):
                new_parts.append(self.rewrite(Project(part, keep)))
                changed = True
            else:
                new_parts.append(part)
        if not changed:
            return join
        self.log.projections_pushed += 1
        seen: List[str] = []
        for part in new_parts:
            for attr in part.attrs:
                if attr not in seen:
                    seen.append(attr)
        return Join(tuple(new_parts), tuple(seen))

    # -- range reduction ----------------------------------------------------

    def _reduce_interval(self, node: IntervalJoin) -> Optional[PlanNode]:
        """Eliminate the existential witness of a fully-projected interval join.

        ``Project_(x)(IntervalJoin(src, x, …))`` asks for the x with *some*
        witness row — a union of intervals.  When the witnesses decompose
        into independent components each contributing a single one-sided
        bound, the union collapses to one interval with aggregated (min/max)
        endpoints: a :class:`RangeScan`.  Components that resist reduction
        stay as smaller interval joins; bound-less components become
        non-emptiness checks.  Returns ``None`` when nothing reduces.
        """
        source = node.source
        if isinstance(source, Join) and _parts_disjoint(source.parts):
            components: Tuple[PlanNode, ...] = source.parts
        else:
            components = (source,)
        owner: Dict[str, int] = {}
        for index, component in enumerate(components):
            for attr in component.attrs:
                owner[attr] = index

        range_lowers: List[RangeBound] = []
        range_uppers: List[RangeBound] = []
        #: per-component attr bounds: (is_lower, ref, inclusive)
        component_bounds: Dict[int, List[Tuple[bool, AttrRef, bool]]] = {}
        for is_lower, bounds in ((True, node.lowers), (False, node.uppers)):
            for bound in bounds:
                if isinstance(bound.ref, ConstRef):
                    target = range_lowers if is_lower else range_uppers
                    target.append(bound)
                else:
                    index = owner[bound.ref.name]
                    component_bounds.setdefault(index, []).append(
                        (is_lower, bound.ref, bound.inclusive)
                    )

        factors: List[PlanNode] = []
        reduced_any = False
        reduced_union = False
        for index, component in enumerate(components):
            bounds = component_bounds.get(index)
            if bounds is None:
                if not _trivially_nonempty(component):
                    factors.append(Project(component, ()))
                continue
            if len(bounds) == 1:
                is_lower, ref, inclusive = bounds[0]
                aggregate = AggBound(
                    _aligned(component, (ref.name,)),
                    "min" if is_lower else "max",
                    inclusive,
                )
                (range_lowers if is_lower else range_uppers).append(aggregate)
                reduced_any = True
            else:
                # ≥2 bounds from one component: the per-row intervals are not
                # nested, so no aggregated min/max endpoint covers them — but
                # their *union* is still computable in O(n log n) by the
                # sorted interval-merge, which IntervalUnionScan performs
                # without materialising the per-row pairs first.
                lowers = tuple(
                    Bound(ref, inc) for is_low, ref, inc in bounds if is_low
                )
                uppers = tuple(
                    Bound(ref, inc) for is_low, ref, inc in bounds if not is_low
                )
                factors.append(
                    IntervalUnionScan(
                        component, node.var, lowers, uppers, (node.var,)
                    )
                )
                reduced_union = True
        if not reduced_any and not reduced_union and not (
            range_lowers or range_uppers
        ):
            return None
        if reduced_union:
            self.log.union_reductions += sum(
                1 for factor in factors if isinstance(factor, IntervalUnionScan)
            )
        if reduced_any or range_lowers or range_uppers:
            self.log.range_reductions += 1
            factors.insert(
                0,
                RangeScan(tuple(range_lowers), tuple(range_uppers), (node.var,)),
            )
        if len(factors) == 1:
            return factors[0]
        return Join(tuple(factors), (node.var,))


def _parts_disjoint(parts: Sequence[PlanNode]) -> bool:
    seen: Set[str] = set()
    for part in parts:
        attrs = set(part.attrs)
        if attrs & seen:
            return False
        seen |= attrs
    return True


def _trivially_nonempty(node: PlanNode) -> bool:
    return isinstance(node, Literal) and bool(node.rows)


def _fuse_select(node: PlanNode, conditions: Tuple[Condition, ...]) -> PlanNode:
    if not conditions:
        return node
    if isinstance(node, Select):
        return Select(node.source, node.conditions + conditions, node.attrs)
    return Select(node, conditions, node.attrs)
