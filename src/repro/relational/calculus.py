"""Relational calculus evaluation over a finite universe.

This module evaluates first-order queries against a database state when the
quantifiers are restricted to an explicitly given finite universe of domain
elements.  Two uses:

* **active-domain semantics** — the universe is the active domain of the
  query and the state.  For domain-independent queries this agrees with the
  natural (unrestricted) semantics;
* **bounded model checking** — the universe is a finite sample of the domain
  carrier, used by tests to validate quantifier-elimination procedures.

Domain predicates and functions are supplied by any object with
``eval_predicate(name, args)`` and ``eval_function(name, args)`` methods
(every :class:`repro.domains.base.Domain` qualifies); database relation atoms
are looked up in the state.

On domains whose carrier is totally ordered by the integer comparison
(``ordered_carrier`` in the registry), quantifier candidate ranges are
**narrowed**: instead of iterating the full universe, each ``∃``/``∀``
iterates only the interval union that the shared bound analysis
(:mod:`repro.relational.bounds`) infers from the quantifier body's
comparison literals, located by bisection over the value-sorted universe.
Narrowing is an over-approximation of the satisfying values, so it never
changes an answer — it only skips candidates that provably fail — and a
:class:`~repro.relational.bounds.NarrowingStats` records what it did for
``Plan.explain()``.
"""

from __future__ import annotations

import itertools
from typing import (
    TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine.budget import Deadline

from ..logic.analysis import free_variables
from ..logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)
from ..logic.terms import Apply, Const, Term, Var
from .active_domain import active_domain
from .bounds import NarrowingStats, QuantifierNarrower
from .state import DatabaseState, Element, Relation

__all__ = [
    "Interpretation",
    "evaluate_term",
    "evaluate_formula",
    "evaluate_query",
    "evaluate_query_active_domain",
]


class Interpretation:
    """Minimal structure interface used by the evaluator.

    Subclasses (or duck-typed equivalents such as
    :class:`repro.domains.base.Domain`) provide the meaning of domain function
    and predicate symbols.  The base implementation knows no symbols at all,
    which is exactly the pure-equality domain of Section 2.
    """

    def eval_function(self, name: str, args: Sequence[Element]) -> Element:
        raise KeyError(f"unknown function symbol {name!r}")

    def eval_predicate(self, name: str, args: Sequence[Element]) -> bool:
        raise KeyError(f"unknown predicate symbol {name!r}")


def evaluate_term(
    term: Term,
    assignment: Mapping[Var, Element],
    interpretation: Optional[Interpretation] = None,
) -> Element:
    """Evaluate a term under a variable assignment."""
    if isinstance(term, Var):
        if term not in assignment:
            raise KeyError(f"unassigned variable {term.name!r}")
        return assignment[term]
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Apply):
        if interpretation is None:
            raise KeyError(
                f"function symbol {term.function!r} used without an interpretation"
            )
        args = [evaluate_term(a, assignment, interpretation) for a in term.args]
        return interpretation.eval_function(term.function, args)
    raise TypeError(f"not a term: {term!r}")


def evaluate_formula(
    formula: Formula,
    universe: Iterable[Element],
    assignment: Mapping[Var, Element],
    state: Optional[DatabaseState] = None,
    interpretation: Optional[Interpretation] = None,
    narrower: Optional[QuantifierNarrower] = None,
    deadline: "Optional[Deadline]" = None,
) -> bool:
    """Evaluate ``formula`` with quantifiers ranging over ``universe``.

    Atoms whose predicate belongs to the state's schema are looked up in the
    state; all other atoms are delegated to ``interpretation``.  With a
    ``narrower`` (sound only on ordered integer carriers — see
    :class:`repro.relational.bounds.QuantifierNarrower`), each quantifier
    iterates only the universe slice union its body's comparison literals
    allow, instead of the whole universe.  With a ``deadline``, the
    quantifier loops run a strided cooperative checkpoint per candidate, so
    an oversized evaluation aborts with ``DeadlineExceeded``/``Cancelled``
    instead of walking the full grid.
    """
    universe = tuple(universe)
    tick = deadline.tick if deadline is not None else None

    def quantifier_candidates(
        f: "Union[Exists, ForAll]", env: Dict[Var, Element]
    ) -> "Union[Tuple[Element, ...], List[Element]]":
        if narrower is None:
            return universe
        return narrower.candidates(f.body, f.var, env)

    def ev(f: Formula, env: Dict[Var, Element]) -> bool:
        if isinstance(f, Top):
            return True
        if isinstance(f, Bottom):
            return False
        if isinstance(f, Equals):
            return evaluate_term(f.left, env, interpretation) == evaluate_term(
                f.right, env, interpretation
            )
        if isinstance(f, Atom):
            values = [evaluate_term(a, env, interpretation) for a in f.args]
            if state is not None and f.predicate in state.schema:
                return tuple(values) in state[f.predicate]
            if interpretation is None:
                raise KeyError(
                    f"predicate {f.predicate!r} is neither a database relation "
                    "nor interpreted by the domain"
                )
            return interpretation.eval_predicate(f.predicate, values)
        if isinstance(f, Not):
            return not ev(f.body, env)
        if isinstance(f, And):
            return all(ev(c, env) for c in f.conjuncts)
        if isinstance(f, Or):
            return any(ev(d, env) for d in f.disjuncts)
        if isinstance(f, Implies):
            return (not ev(f.antecedent, env)) or ev(f.consequent, env)
        if isinstance(f, Iff):
            return ev(f.left, env) == ev(f.right, env)
        if isinstance(f, Exists):
            v = Var(f.var)
            for value in quantifier_candidates(f, env):
                if tick is not None:
                    tick("Exists(candidate)")
                child = dict(env)
                child[v] = value
                if ev(f.body, child):
                    return True
            return False
        if isinstance(f, ForAll):
            v = Var(f.var)
            candidates = quantifier_candidates(f, env)
            if len(candidates) < len(universe):
                # Some universe element lies outside the interval union the
                # body provably requires, so the body fails there: ∀ is
                # false without evaluating a single candidate.
                return False
            for value in candidates:
                if tick is not None:
                    tick("ForAll(candidate)")
                child = dict(env)
                child[v] = value
                if not ev(f.body, child):
                    return False
            return True
        raise TypeError(f"not a formula: {f!r}")

    return ev(formula, dict(assignment))


def evaluate_query(
    query: Formula,
    universe: Iterable[Element],
    state: Optional[DatabaseState] = None,
    interpretation: Optional[Interpretation] = None,
    free_order: Optional[Sequence[Var]] = None,
    narrower: Optional[QuantifierNarrower] = None,
    deadline: "Optional[Deadline]" = None,
) -> Relation:
    """Answer ``query`` with both quantifiers and answers restricted to ``universe``.

    Returns the relation of all tuples over ``universe`` (one column per free
    variable, in ``free_order`` or sorted-name order) that satisfy the query.
    With a ``narrower``, both the quantifier ranges *and* the free-variable
    candidate grid are narrowed to the inferred interval unions.  With a
    ``deadline``, the candidate grid runs a strided cooperative checkpoint
    per tuple (and passes the deadline down to the quantifier loops).
    """
    universe = tuple(universe)
    if free_order is None:
        free_order = sorted(free_variables(query), key=lambda v: v.name)
    else:
        free_order = list(free_order)
    arity = len(free_order)
    if narrower is None:
        columns: Sequence[Sequence[Element]] = [universe] * arity
    else:
        columns = [
            narrower.candidates(query, variable.name, {})
            for variable in free_order
        ]
    tick = deadline.tick if deadline is not None else None
    rows = set()
    for values in itertools.product(*columns):
        if tick is not None:
            tick("answer grid")
        assignment = dict(zip(free_order, values))
        if evaluate_formula(
            query, universe, assignment, state, interpretation, narrower,
            deadline,
        ):
            rows.add(tuple(values))
    return Relation(arity, rows)


def evaluate_query_active_domain(
    query: Formula,
    state: DatabaseState,
    interpretation: Optional[Interpretation] = None,
    extra_elements: Iterable[Element] = (),
    *,
    narrow: Optional[bool] = None,
    stats: Optional[NarrowingStats] = None,
    deadline: "Optional[Deadline]" = None,
) -> Relation:
    """Answer ``query`` under active-domain semantics.

    The universe is the active domain of the query and the state, optionally
    enlarged with ``extra_elements`` (used e.g. for the extended active domain
    of Section 2.2).

    ``narrow`` controls quantifier-range narrowing: with ``None`` (the
    default) or ``True``, narrowing runs exactly when it is sound and
    possible — the domain's carrier is registry-flagged ordered and the
    universe coerces to integers — and otherwise the full-universe walker
    runs (observable as ``stats.enabled`` staying ``False``); ``False``
    forces the full-universe walker unconditionally.  Pass a
    :class:`~repro.relational.bounds.NarrowingStats` to observe what the
    narrower did (surfaced by ``ActiveDomainPlan.explain()``).
    """
    universe = set(active_domain(state, query)) | set(extra_elements)
    ordered_universe = sorted(universe, key=repr)
    narrower: Optional[QuantifierNarrower] = None
    if narrow or narrow is None:
        narrower = QuantifierNarrower.for_universe(
            ordered_universe, interpretation, state, stats
        )
    return evaluate_query(
        query, ordered_universe, state, interpretation, narrower=narrower,
        deadline=deadline,
    )
