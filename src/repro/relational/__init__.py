"""Relational database substrate: schemas, states, algebra, calculus."""

from .active_domain import (
    active_domain,
    active_domain_of_query,
    active_domain_of_state,
)
from .algebra import (
    BaseRelation,
    Difference,
    LiteralRelation,
    NamedRelation,
    NaturalJoin,
    Product,
    Projection,
    Rename,
    Selection,
    Union,
    evaluate_algebra,
)
from .bounds import (
    BoundAnalysis,
    IntervalSet,
    NarrowingStats,
    QuantifierNarrower,
    merge_index_ranges,
    merge_intervals,
)
from .calculus import (
    Interpretation,
    evaluate_formula,
    evaluate_query,
    evaluate_query_active_domain,
    evaluate_term,
)
from .columnar import (
    EncodeCache,
    EncodeCacheInfo,
    VectorizationError,
    encode_cache,
    encode_cache_info,
    run_plan_vectorized,
    vectorization_obstacle,
)
from .compile import CompilationError, CompiledQuery, compile_query
from .delta import (
    DeltaUnsupported,
    MaintenanceStats,
    MaterializedPlan,
    maintain_plan,
    materialize_plan,
)
from .exec import ExecutionStats, plan_summary, run_plan
from .optimize import domain_is_ordered, optimize_plan
from .schema import DatabaseSchema, RelationSchema
from .state import DatabaseState, Delta, Element, Relation, Row
from .translate import (
    database_predicates_in,
    expand_database_atoms,
    is_pure_domain_formula,
)

__all__ = [
    "RelationSchema", "DatabaseSchema",
    "Relation", "DatabaseState", "Delta", "Element", "Row",
    "BaseRelation", "LiteralRelation", "Selection", "Projection", "Product",
    "NaturalJoin", "Union", "Difference", "Rename", "NamedRelation",
    "evaluate_algebra",
    "active_domain", "active_domain_of_state", "active_domain_of_query",
    "expand_database_atoms", "is_pure_domain_formula", "database_predicates_in",
    "Interpretation", "evaluate_term", "evaluate_formula", "evaluate_query",
    "evaluate_query_active_domain",
    "CompilationError", "CompiledQuery", "compile_query",
    "run_plan", "plan_summary", "ExecutionStats",
    "optimize_plan", "domain_is_ordered",
    "BoundAnalysis", "IntervalSet", "NarrowingStats", "QuantifierNarrower",
    "merge_intervals", "merge_index_ranges",
    "VectorizationError", "run_plan_vectorized", "vectorization_obstacle",
    "EncodeCache", "EncodeCacheInfo", "encode_cache", "encode_cache_info",
    "DeltaUnsupported", "MaintenanceStats", "MaterializedPlan",
    "materialize_plan", "maintain_plan",
]
