"""The domain registry: domains addressable by name.

Every domain studied in the paper is registered here under a canonical name
plus convenient aliases, together with factories for the default guards that
the paper proves correct for it — the relative-safety decider (when relative
safety is decidable) and the effective syntax (when one exists).  The trace
domain **T** is registered with *neither*: Theorem 3.1 shows finite queries
over **T** have no effective syntax, and Theorem 3.3 shows relative safety
over **T** is undecidable.

``repro.connect(domain="presburger")`` resolves names through this registry;
third-party domains can join the same namespace via :func:`register_domain`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from .base import Domain

__all__ = [
    "DomainEntry",
    "UnknownDomainError",
    "register_domain",
    "unregister_domain",
    "temporary_domain",
    "get_domain",
    "get_entry",
    "resolve_domain_name",
    "available_domains",
    "domain_aliases",
]


class UnknownDomainError(LookupError):
    """Raised when a domain name is not in the registry."""


@dataclass(frozen=True)
class DomainEntry:
    """A registered domain: factory, aliases, and default-guard factories."""

    name: str
    factory: Callable[[], Domain]
    aliases: Tuple[str, ...] = ()
    summary: str = ""
    #: builds the relative-safety decider proved correct for this domain,
    #: or ``None`` when relative safety is undecidable (Theorem 3.3)
    safety_factory: Optional[Callable[[Domain], object]] = None
    #: builds the effective syntax for the domain's finite queries (takes the
    #: database schema), or ``None`` when no effective syntax exists
    #: (Theorem 3.1)
    syntax_factory: Optional[Callable[[object], object]] = None
    #: True when every finite query over the domain is domain-independent
    #: (Section 2: the pure-equality domain).  The planner then answers
    #: guard-certified finite queries by active-domain evaluation, which is
    #: exact and far cheaper than enumeration.
    finite_implies_domain_independent: bool = False
    #: True when the domain's predicate atoms can be evaluated pointwise, so
    #: queries compile to relational algebra
    #: (:mod:`repro.relational.compile`) and active-domain evaluation runs
    #: set-at-a-time.  Function-heavy domains (e.g. ``(N, ')``, whose queries
    #: lean on ``succ`` terms) leave this off and keep the tree walker.
    supports_compiled_algebra: bool = False
    #: True when the domain's carriers encode to ``int64`` columns (machine
    #: integers directly, strings via dictionary encoding), so compiled
    #: algebra plans can be lowered to the vectorized NumPy executor
    #: (:mod:`repro.relational.columnar`).  The planner then prefers strategy
    #: ``"vectorized"`` over ``"compiled"``; execution still falls back to
    #: the set executor transparently when a specific plan or carrier resists
    #: vectorization, with the reason recorded in ``explain()``.
    supports_vectorized: bool = False
    #: True when vectorized plans may additionally run morsel-parallel on the
    #: process-wide worker pool (:mod:`repro.relational.parallel`).  The
    #: planner then puts strategy ``"parallel"`` at the top of the fallback
    #: ladder (parallel → vectorized → set executor → tree walker); a size
    #: heuristic keeps small states single-threaded either way.  Requires
    #: ``supports_vectorized``.
    supports_parallel: bool = False
    #: True when the carrier is totally ordered by the standard integer
    #: comparison *and* the domain's ``<``/``<=``/``>``/``>=`` predicates
    #: have exactly that semantics.  The plan optimizer
    #: (:mod:`repro.relational.optimize`) then replaces adom pads filtered by
    #: those predicates with interval joins / range scans over the sorted
    #: active domain, which is what keeps "strictly between two members"-like
    #: queries linear instead of exponential in arity.
    ordered_carrier: bool = False
    #: True when the carrier is *finite* (e.g. the cyclic successor structure
    #: Z/n).  Every query over a finite carrier is trivially finite and can be
    #: answered exactly by evaluating over the whole carrier, so the planner
    #: extends the active domain with :meth:`Domain.carrier_elements` and uses
    #: the guarded active-domain ladder even though finiteness of the *answer*
    #: does not imply domain independence.
    finite_carrier: bool = False


_REGISTRY: Dict[str, DomainEntry] = {}
_ALIASES: Dict[str, str] = {}


def _normalise(name: str) -> str:
    return name.strip().lower()


def register_domain(entry: DomainEntry) -> DomainEntry:
    """Register a domain under its canonical name and aliases.

    Registration is atomic: every alias is validated *before* anything is
    written, so a collision raised here leaves the registry exactly as it
    was (no dangling ``_ALIASES`` entries pointing at an unregistered name).
    """
    canonical = _normalise(entry.name)
    if canonical in _REGISTRY:
        raise ValueError(f"domain {entry.name!r} is already registered")
    aliases = (canonical,) + tuple(_normalise(a) for a in entry.aliases)
    for alias in aliases:
        if alias in _ALIASES and _ALIASES[alias] != canonical:
            raise ValueError(
                f"alias {alias!r} already points at domain {_ALIASES[alias]!r}"
            )
    for alias in aliases:
        _ALIASES[alias] = canonical
    _REGISTRY[canonical] = entry
    return entry


def unregister_domain(name: str) -> DomainEntry:
    """Remove a domain (by canonical name or alias) and all its aliases."""
    canonical = resolve_domain_name(name)
    entry = _REGISTRY.pop(canonical)
    for alias, target in list(_ALIASES.items()):
        if target == canonical:
            del _ALIASES[alias]
    return entry


@contextlib.contextmanager
def temporary_domain(entry: DomainEntry) -> Iterator[DomainEntry]:
    """Register ``entry`` for the duration of a ``with`` block.

    The conformance harness and the test-suite use this to exercise packs
    without leaking global registry state; the domain is unregistered on
    exit even when the block raises.
    """
    register_domain(entry)
    try:
        yield entry
    finally:
        canonical = _normalise(entry.name)
        if _REGISTRY.get(canonical) is entry:
            unregister_domain(canonical)


def resolve_domain_name(name: str) -> str:
    """The canonical name behind ``name`` (which may be an alias)."""
    canonical = _ALIASES.get(_normalise(name))
    if canonical is None:
        known = ", ".join(
            f"{entry.name!r} (aliases: {', '.join(repr(a) for a in entry.aliases) or 'none'})"
            for entry in sorted(_REGISTRY.values(), key=lambda e: e.name)
        )
        raise UnknownDomainError(
            f"unknown domain {name!r}; registered domains are: {known}"
        )
    return canonical


def get_entry(name: str) -> DomainEntry:
    """The registry entry for ``name`` (canonical name or alias)."""
    return _REGISTRY[resolve_domain_name(name)]


def get_domain(name: str) -> Domain:
    """A fresh instance of the domain registered under ``name``."""
    return get_entry(name).factory()


def available_domains() -> Tuple[str, ...]:
    """The canonical names of all registered domains, sorted."""
    return tuple(sorted(_REGISTRY))


def domain_aliases() -> Dict[str, str]:
    """A copy of the alias table (alias → canonical name)."""
    return dict(_ALIASES)


# ---------------------------------------------------------------------------
# Built-in domains.  The guard factories import lazily so that importing the
# registry (from repro.domains.__init__) never races the initialisation of
# the repro.safety package.
# ---------------------------------------------------------------------------


def _equality_safety(domain: Domain):
    from ..safety.relative_safety import EqualityRelativeSafety

    return EqualityRelativeSafety(domain)


def _ordered_safety(domain: Domain):
    from ..safety.relative_safety import OrderedRelativeSafety

    return OrderedRelativeSafety(domain)


def _successor_safety(domain: Domain):
    from ..safety.relative_safety import SuccessorRelativeSafety

    return SuccessorRelativeSafety(domain)


def _active_domain_syntax(schema):
    from ..safety.effective_syntax import ActiveDomainSyntax

    return ActiveDomainSyntax(schema)


def _finitization_syntax(schema):
    from ..safety.effective_syntax import FinitizationSyntax

    return FinitizationSyntax()


def _finitization_syntax_integers(schema):
    from ..safety.effective_syntax import FinitizationSyntax

    return FinitizationSyntax(integers=True)


def _extended_active_domain_syntax(schema):
    from ..safety.effective_syntax import ExtendedActiveDomainSyntax

    return ExtendedActiveDomainSyntax(schema)


def _register_builtins() -> None:
    # The built-in domains are declared as DomainPacks (repro.domains.packs)
    # and registered from their declarations, so every built-in automatically
    # carries the example corpora the conformance harness runs.
    from .packs import register_builtin_packs

    register_builtin_packs()


_register_builtins()
