"""The domain ``(N, <)`` of ordered natural numbers.

This is the key positive example of Section 2.1: there is a finite query that
is not domain-independent (Fact 2.1), yet the finitization operator of
Theorem 2.2 provides a recursive syntax for finite queries, and relative
safety is decidable for every decidable extension (Theorem 2.5).

``NaturalOrderDomain`` is a thin specialisation of the Presburger domain: its
first-order theory embeds into Presburger arithmetic, so Cooper's quantifier
elimination doubles as its decision procedure.  The signature exposed to
query authors is just ``<`` (plus the always-available equality); the richer
arithmetic symbols remain available because the paper's results hold "for any
extension of the domain N<".
"""

from __future__ import annotations

from .presburger import PresburgerDomain
from .signature import Signature

__all__ = ["NaturalOrderDomain"]


class NaturalOrderDomain(PresburgerDomain):
    """The ordered natural numbers ``(N, <)`` (an extension-friendly view)."""

    signature = Signature(
        predicates={"<": 2, "<=": 2, ">": 2, ">=": 2},
        functions={"succ": 1},
    )

    def __init__(self):
        super().__init__(carrier="naturals")
        self.name = "naturals_with_order"
