"""Domains: carriers, signatures, recursive evaluation, decision procedures."""

from .base import Domain, DomainError, TheoryUndecidableError
from .cyclic import CyclicSuccessorDomain
from .dense_order import DenseOrderDomain
from .difference import IntegerDifferenceDomain
from .equality import EqualityDomain
from .lex_strings import ShortlexStringDomain
from .nat_order import NaturalOrderDomain
from .packs import (
    DomainPack,
    PackCorpus,
    PackQuery,
    PackSentence,
    available_packs,
    get_pack,
    register_pack,
    temporary_pack,
    unregister_pack,
)
from .presburger import (
    LinTerm,
    PresburgerDomain,
    eliminate_presburger_quantifiers,
    linearize_term,
)
from .reach_traces import (
    REACH_SIGNATURE,
    AtLeastConstraint,
    ExactlyConstraint,
    ReachTracesDomain,
    eliminate_reach_quantifiers,
    expand_trace_predicate,
    lemma_a2_conflicts,
    lemma_a2_satisfiable,
    lemma_a2_witness,
    padded_prefix,
    starts_with_padded,
)
from .registry import (
    DomainEntry,
    UnknownDomainError,
    available_domains,
    domain_aliases,
    get_domain,
    get_entry,
    register_domain,
    resolve_domain_name,
    temporary_domain,
    unregister_domain,
)
from .signature import Signature
from .successor import (
    SuccessorDomain,
    eliminate_successor_quantifiers,
    extended_active_domain_elements,
    extended_active_domain_radius,
)
from .traces_domain import TraceDomain

__all__ = [
    "Signature", "Domain", "DomainError", "TheoryUndecidableError",
    "DomainEntry", "UnknownDomainError", "register_domain", "get_domain",
    "get_entry", "resolve_domain_name", "available_domains", "domain_aliases",
    "unregister_domain", "temporary_domain",
    "DomainPack", "PackCorpus", "PackQuery", "PackSentence",
    "register_pack", "unregister_pack", "temporary_pack", "get_pack",
    "available_packs",
    "EqualityDomain",
    "DenseOrderDomain", "IntegerDifferenceDomain",
    "CyclicSuccessorDomain", "ShortlexStringDomain",
    "PresburgerDomain", "NaturalOrderDomain", "LinTerm",
    "linearize_term", "eliminate_presburger_quantifiers",
    "SuccessorDomain", "eliminate_successor_quantifiers",
    "extended_active_domain_radius", "extended_active_domain_elements",
    "TraceDomain", "ReachTracesDomain", "REACH_SIGNATURE",
    "AtLeastConstraint", "ExactlyConstraint",
    "lemma_a2_satisfiable", "lemma_a2_conflicts", "lemma_a2_witness",
    "padded_prefix", "starts_with_padded",
    "expand_trace_predicate", "eliminate_reach_quantifiers",
]
