"""The ``Domain`` interface.

A *domain* in the sense of the paper is an infinite carrier together with a
set of domain functions and relations ("When we refer to a domain, we mean the
domain, together with the set of domain functions and relations").  For the
purposes of this library a domain provides:

* a :class:`~repro.domains.signature.Signature`;
* recursive evaluation of its functions and predicates on concrete elements
  (``eval_function`` / ``eval_predicate``) — the *recursiveness* requirement;
* an enumeration of the carrier (``enumerate_elements``) — used by the generic
  query-answering algorithm of Section 1.1 and by bounded model checking;
* optionally, a decision procedure for pure domain sentences (``decide``) —
  the *decidability of the theory* requirement.  Domains without a decision
  procedure raise :class:`TheoryUndecidableError` (e.g. full arithmetic,
  Corollary 2.3).

``Domain`` is also a valid :class:`repro.relational.calculus.Interpretation`,
so the relational-calculus evaluator works over any domain directly.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from ..logic.analysis import free_variables
from ..logic.formulas import Formula
from ..relational.calculus import Interpretation, evaluate_formula
from ..relational.state import Element
from .signature import Signature

__all__ = ["Domain", "TheoryUndecidableError", "DomainError"]


class DomainError(ValueError):
    """Raised when a formula or element does not fit the domain."""


class TheoryUndecidableError(NotImplementedError):
    """Raised by :meth:`Domain.decide` when no decision procedure is available."""


class Domain(Interpretation):
    """Base class for concrete domains.

    Subclasses must set :attr:`name` and :attr:`signature` and implement the
    evaluation and enumeration methods; they should implement :meth:`decide`
    whenever the domain theory is decidable.
    """

    name: str = "domain"
    signature: Signature = Signature()

    #: True iff the domain ships a decision procedure for its first-order theory.
    has_decidable_theory: bool = False

    # -- recursiveness ------------------------------------------------------

    def eval_function(self, name: str, args: Sequence[Element]) -> Element:
        """Evaluate the domain function ``name`` on concrete elements."""
        raise KeyError(f"domain {self.name!r} has no function {name!r}")

    def eval_predicate(self, name: str, args: Sequence[Element]) -> bool:
        """Evaluate the domain predicate ``name`` on concrete elements."""
        raise KeyError(f"domain {self.name!r} has no predicate {name!r}")

    def contains(self, element: Element) -> bool:
        """True iff ``element`` belongs to the carrier."""
        raise NotImplementedError

    # -- enumeration --------------------------------------------------------

    def enumerate_elements(self) -> Iterator[Element]:
        """Enumerate the (countable) carrier without repetition."""
        raise NotImplementedError

    def sample_elements(self, count: int) -> list:
        """The first ``count`` elements of the enumeration, as a list."""
        return list(itertools.islice(self.enumerate_elements(), count))

    def carrier_elements(self) -> Tuple[Element, ...]:
        """The whole carrier, for domains whose carrier is *finite*.

        Infinite domains raise :class:`DomainError`.  Finite-carrier domains
        (registered with ``finite_carrier=True``) override this; the planner
        then evaluates queries over the full carrier, which is exact.
        """
        raise DomainError(f"domain {self.name!r} has an infinite carrier")

    # -- decidability -------------------------------------------------------

    def decide(self, sentence: Formula) -> bool:
        """Decide the truth of a pure domain sentence.

        Raises :class:`TheoryUndecidableError` if the domain does not provide
        a decision procedure, and :class:`DomainError` if ``sentence`` has
        free variables or uses symbols outside the domain signature.
        """
        raise TheoryUndecidableError(
            f"the theory of domain {self.name!r} has no decision procedure"
        )

    def _require_sentence(self, sentence: Formula) -> None:
        """Validate that ``sentence`` is a sentence (no free variables)."""
        free = free_variables(sentence)
        if free:
            names = ", ".join(sorted(v.name for v in free))
            raise DomainError(f"not a sentence; free variables: {names}")

    # -- model checking -----------------------------------------------------

    def check_bounded(
        self,
        formula: Formula,
        universe: Optional[Iterable[Element]] = None,
        assignment: Optional[dict] = None,
        sample_size: int = 32,
    ) -> bool:
        """Evaluate ``formula`` with quantifiers restricted to a finite universe.

        This is *not* a decision procedure — it under/over-approximates the
        unrestricted semantics — but it is invaluable for cross-checking
        quantifier-elimination procedures on sampled instances, which is how
        the test-suite validates them.
        """
        if universe is None:
            universe = self.sample_elements(sample_size)
        return evaluate_formula(
            formula, universe, assignment or {}, state=None, interpretation=self
        )

    def __str__(self) -> str:
        return self.name
