"""The Reach Theory of Traces (Appendix of the paper).

The Theory of Traces — the first-order theory of the domain **T** with the
single predicate ``P`` — does not admit quantifier elimination directly.  The
paper therefore extends the signature with recursive, first-order-definable
symbols:

* unary sort predicates ``M``, ``W``, ``T``, ``O`` separating machine words,
  input words, traces, and other words;
* the family ``B_w`` ("the input word starts with ``w``", read over the
  blank-padded word) — represented here as a binary atom ``B(w, x)`` whose
  first argument must be a constant input word;
* the families ``D_i`` ("machine has at least *i* traces on the word") and
  ``E_i`` ("exactly *i* traces") — represented as ternary atoms ``D(i, M, w)``
  and ``E(i, M, w)`` whose first argument must be a positive integer constant;
* the unary functions ``w(·)`` and ``m(·)`` extracting the input word and the
  machine of a trace (the empty word on non-traces).

In this extended signature the theory admits the elimination of quantifiers
(Theorem A.3); since the domain is recursive this yields decidability of both
the Reach Theory and the original Theory of Traces (Corollary A.4).

This module provides:

* :class:`ReachTracesDomain` — recursive evaluation of every symbol,
  enumeration of the carrier, and the decision procedure;
* :func:`lemma_a2_satisfiable` / :func:`lemma_a2_witness` — the combinatorial
  satisfiability criterion of Lemma A.2 for systems of ``D``/``E``
  constraints, and the explicit prefix-tree witness machine;
* :func:`eliminate_reach_quantifiers` — the Theorem A.3 quantifier
  elimination, organised exactly as the paper's case analysis (cases M, W,
  T-1 … T-4, O);
* :func:`expand_trace_predicate` — the definitional translation of ``P`` into
  the extended signature (``P(M, w, p)  ⟺  T(p) ∧ m(p) = M ∧ w(p) = w``).

Calibration note (documented substitution): the paper leaves the trace
encoding free, and our encoding has ``s + 1`` traces for a machine halting
after ``s`` steps.  With that convention, whether a machine has *exactly*
``j`` traces on a word depends only on the blank-padded prefix of length
``j`` of the word, which is precisely the prefix length appearing in
Lemma A.2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..logic.analysis import free_variables
from ..logic.builders import conj, disj, neg
from ..logic.formulas import (
    BOTTOM,
    TOP,
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)
from ..logic.substitution import substitute
from ..logic.terms import Apply, Const, Term, Var, term_variables
from ..logic.transform import dnf_clauses, eliminate_quantifiers, simplify
from ..relational.state import Element
from ..turing.builders import ExactHaltSpec, MinRunSpec, prefix_tree_witness
from ..turing.encoding import encode_machine
from ..turing.tape import BLANK
from ..turing.traces import (
    classify_word,
    has_at_least_traces,
    has_exactly_traces,
    holds_P,
    input_of_trace,
    machine_of_trace,
)
from ..turing.words import (
    DOMAIN_ALPHABET,
    MARK,
    WordSort,
    is_input_word,
    is_machine_word,
    words_over,
)
from .base import Domain, DomainError
from .signature import Signature

__all__ = [
    "REACH_SIGNATURE",
    "ReachTracesDomain",
    "AtLeastConstraint",
    "ExactlyConstraint",
    "padded_prefix",
    "starts_with_padded",
    "lemma_a2_conflicts",
    "lemma_a2_satisfiable",
    "lemma_a2_witness",
    "expand_trace_predicate",
    "eliminate_reach_quantifiers",
]


REACH_SIGNATURE = Signature(
    predicates={"M": 1, "W": 1, "T": 1, "O": 1, "B": 2, "D": 3, "E": 3, "P": 3},
    functions={"w": 1, "m": 1},
)


# ---------------------------------------------------------------------------
# Blank-padded prefixes and Lemma A.2
# ---------------------------------------------------------------------------


def padded_prefix(word: str, length: int) -> str:
    """The first ``length`` characters of ``word`` read over the blank padding."""
    if length <= 0:
        return ""
    if len(word) >= length:
        return word[:length]
    return word + BLANK * (length - len(word))


def starts_with_padded(word: str, prefix: str) -> bool:
    """True iff ``prefix`` is a prefix of ``word`` padded with blanks (``B_prefix(word)``)."""
    return padded_prefix(word, len(prefix)) == prefix


@dataclass(frozen=True)
class AtLeastConstraint:
    """``D_count``: the machine must have at least ``count`` traces on ``word``."""

    word: str
    count: int


@dataclass(frozen=True)
class ExactlyConstraint:
    """``E_count``: the machine must have exactly ``count`` traces on ``word``."""

    word: str
    count: int


def lemma_a2_conflicts(
    at_least: Sequence[AtLeastConstraint],
    exactly: Sequence[ExactlyConstraint],
) -> List[Tuple[str, object, object]]:
    """The conflicting constraint pairs of Lemma A.2 (empty iff satisfiable).

    A conflict arises when

    1. ``D_i(x, v)`` and ``E_j(x, u)`` with ``i > j`` and the blank-padded
       prefixes of ``v`` and ``u`` of length ``j`` coincide, or
    2. two exact constraints ``E_{j_r}(x, u_r)``, ``E_{j_q}(x, u_q)`` with
       ``j_r > j_q`` and the blank-padded prefixes of length ``j_q`` coincide,

    plus the degenerate case of an exact constraint asking for fewer than one
    trace, which no machine can satisfy (the initial snapshot always exists).
    """
    conflicts: List[Tuple[str, object, object]] = []
    for exact in exactly:
        if exact.count < 1:
            conflicts.append(("impossible-count", exact, exact))
    for lower in at_least:
        for exact in exactly:
            if lower.count > exact.count and padded_prefix(
                lower.word, exact.count
            ) == padded_prefix(exact.word, exact.count):
                conflicts.append(("at-least-vs-exactly", lower, exact))
    for first, second in itertools.permutations(exactly, 2):
        if first.count > second.count and padded_prefix(
            first.word, second.count
        ) == padded_prefix(second.word, second.count):
            conflicts.append(("exactly-vs-exactly", first, second))
    return conflicts


def lemma_a2_satisfiable(
    at_least: Sequence[AtLeastConstraint],
    exactly: Sequence[ExactlyConstraint],
) -> bool:
    """Lemma A.2: is there a machine meeting all the ``D``/``E`` constraints?"""
    return not lemma_a2_conflicts(at_least, exactly)


def lemma_a2_witness(
    at_least: Sequence[AtLeastConstraint],
    exactly: Sequence[ExactlyConstraint],
):
    """An explicit machine witnessing a satisfiable Lemma A.2 constraint system.

    Raises ``ValueError`` if the system is unsatisfiable.  The construction is
    the prefix-tree scanner described in the paper's proof ("this machine ...
    can actually be written as a finite automaton").
    """
    if not lemma_a2_satisfiable(at_least, exactly):
        raise ValueError("the constraint system is unsatisfiable (Lemma A.2)")
    exact_specs = [ExactHaltSpec(c.word, c.count) for c in exactly]
    min_specs = [MinRunSpec(c.word, c.count) for c in at_least]
    return prefix_tree_witness(exact_specs, min_specs)


# ---------------------------------------------------------------------------
# The definitional expansion of P
# ---------------------------------------------------------------------------


def expand_trace_predicate(formula: Formula) -> Formula:
    """Replace every ``P(M, w, p)`` atom by ``T(p) ∧ m(p) = M ∧ w(p) = w``."""
    if isinstance(formula, Atom):
        if formula.predicate == "P":
            if len(formula.args) != 3:
                raise DomainError("P takes exactly three arguments")
            machine_term, word_term, trace_term = formula.args
            return conj(
                Atom("T", (trace_term,)),
                Equals(Apply("m", (trace_term,)), machine_term),
                Equals(Apply("w", (trace_term,)), word_term),
            )
        return formula
    if isinstance(formula, (Equals, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(expand_trace_predicate(formula.body))
    if isinstance(formula, And):
        return And(tuple(expand_trace_predicate(c) for c in formula.conjuncts))
    if isinstance(formula, Or):
        return Or(tuple(expand_trace_predicate(d) for d in formula.disjuncts))
    if isinstance(formula, Implies):
        return Implies(
            expand_trace_predicate(formula.antecedent),
            expand_trace_predicate(formula.consequent),
        )
    if isinstance(formula, Iff):
        return Iff(expand_trace_predicate(formula.left), expand_trace_predicate(formula.right))
    if isinstance(formula, Exists):
        return Exists(formula.var, expand_trace_predicate(formula.body))
    if isinstance(formula, ForAll):
        return ForAll(formula.var, expand_trace_predicate(formula.body))
    raise TypeError(f"not a formula: {formula!r}")


# ---------------------------------------------------------------------------
# Term utilities
# ---------------------------------------------------------------------------


def _is_function_of(term: Term, function: str, var: str) -> bool:
    """True iff ``term`` is ``function(var)``."""
    return (
        isinstance(term, Apply)
        and term.function == function
        and len(term.args) == 1
        and term.args[0] == Var(var)
    )


def _normalize_term(term: Term) -> Term:
    """Collapse nested ``w``/``m`` applications and evaluate them on constants.

    In the Reach theory "any nested term always equals the empty word", so
    ``w(m(x))`` and friends normalise to the empty-word constant; applications
    to constants are evaluated outright.
    """
    if isinstance(term, (Var, Const)):
        return term
    if isinstance(term, Apply):
        if term.function not in ("w", "m") or len(term.args) != 1:
            raise DomainError(f"unknown trace-domain function {term.function!r}")
        inner = _normalize_term(term.args[0])
        if isinstance(inner, Apply):
            return Const("")
        if isinstance(inner, Const):
            value = str(inner.value)
            extracted = input_of_trace(value) if term.function == "w" else machine_of_trace(value)
            return Const(extracted)
        return Apply(term.function, (inner,))
    raise TypeError(f"not a term: {term!r}")


def _normalize_atom_terms(formula: Formula) -> Formula:
    """Normalise the terms inside every atom of a quantifier-free formula."""
    if isinstance(formula, Atom):
        return Atom(formula.predicate, tuple(_normalize_term(a) for a in formula.args))
    if isinstance(formula, Equals):
        return Equals(_normalize_term(formula.left), _normalize_term(formula.right))
    if isinstance(formula, Not):
        return Not(_normalize_atom_terms(formula.body))
    if isinstance(formula, And):
        return And(tuple(_normalize_atom_terms(c) for c in formula.conjuncts))
    if isinstance(formula, Or):
        return Or(tuple(_normalize_atom_terms(d) for d in formula.disjuncts))
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Implies):
        return Implies(_normalize_atom_terms(formula.antecedent), _normalize_atom_terms(formula.consequent))
    if isinstance(formula, Iff):
        return Iff(_normalize_atom_terms(formula.left), _normalize_atom_terms(formula.right))
    raise TypeError(f"unexpected formula in normalisation: {formula!r}")


def _constant_index(term: Term) -> int:
    if not isinstance(term, Const) or not isinstance(term.value, int) or term.value < 0:
        raise DomainError("D/E indices must be non-negative integer constants")
    return term.value


def _constant_word(term: Term) -> str:
    if not isinstance(term, Const) or not isinstance(term.value, str):
        raise DomainError("expected a constant word")
    return term.value


# ---------------------------------------------------------------------------
# Sort specialisation of atoms
# ---------------------------------------------------------------------------


def _specialize_term(term: Term, var: str, sort: WordSort) -> Term:
    """Rewrite terms under the assumption that ``var`` has the given sort."""
    term = _normalize_term(term)
    if isinstance(term, Apply) and term.args[0] == Var(var):
        if sort is WordSort.TRACE:
            return term
        return Const("")  # w(x) = m(x) = empty word for non-traces
    return term


def _sort_atom(predicate: str) -> WordSort:
    return {
        "M": WordSort.MACHINE,
        "W": WordSort.INPUT,
        "T": WordSort.TRACE,
        "O": WordSort.OTHER,
    }[predicate]


def _term_sort_under(term: Term, var: str, sort: WordSort) -> Optional[WordSort]:
    """The sort of a term that is known statically, given the sort of ``var``."""
    if term == Var(var):
        return sort
    if isinstance(term, Const):
        return classify_word(str(term.value)) if isinstance(term.value, str) else None
    if isinstance(term, Apply) and term.args[0] == Var(var) and sort is WordSort.TRACE:
        return WordSort.MACHINE if term.function == "m" else WordSort.INPUT
    return None


def _specialize_atom(formula: Formula, var: str, sort: WordSort) -> Formula:
    """Specialise an atomic formula under the sort assumption on ``var``."""
    if isinstance(formula, Equals):
        left = _specialize_term(formula.left, var, sort)
        right = _specialize_term(formula.right, var, sort)
        if left == right:
            return TOP
        left_sort = _term_sort_under(left, var, sort)
        right_sort = _term_sort_under(right, var, sort)
        if left_sort is not None and right_sort is not None and left_sort != right_sort:
            return BOTTOM
        if isinstance(left, Const) and isinstance(right, Const):
            return TOP if left.value == right.value else BOTTOM
        return Equals(left, right)

    if not isinstance(formula, Atom):
        raise TypeError(f"not atomic: {formula!r}")

    name = formula.predicate
    args = tuple(_specialize_term(a, var, sort) for a in formula.args)

    if name in ("M", "W", "T", "O"):
        (arg,) = args
        arg_sort = _term_sort_under(arg, var, sort)
        if arg_sort is not None:
            return TOP if arg_sort is _sort_atom(name) else BOTTOM
        return Atom(name, args)

    if name == "B":
        prefix_term, word_term = args
        prefix = _constant_word(prefix_term)
        word_sort = _term_sort_under(word_term, var, sort)
        if word_sort is not None and word_sort is not WordSort.INPUT:
            return BOTTOM
        if isinstance(word_term, Const):
            return TOP if starts_with_padded(str(word_term.value), prefix) else BOTTOM
        return Atom(name, args)

    if name in ("D", "E"):
        index_term, machine_term, word_term = args
        index = _constant_index(index_term)
        machine_sort = _term_sort_under(machine_term, var, sort)
        word_sort = _term_sort_under(word_term, var, sort)
        if machine_sort is not None and machine_sort is not WordSort.MACHINE:
            return BOTTOM
        if word_sort is not None and word_sort is not WordSort.INPUT:
            return BOTTOM
        if isinstance(machine_term, Const) and isinstance(word_term, Const):
            machine_word = str(machine_term.value)
            input_word = str(word_term.value)
            if name == "D":
                return TOP if has_at_least_traces(machine_word, input_word, index) else BOTTOM
            return TOP if has_exactly_traces(machine_word, input_word, index) else BOTTOM
        return Atom(name, (Const(index), machine_term, word_term))

    if name == "P":
        raise DomainError("P atoms must be expanded before quantifier elimination")
    raise DomainError(f"unknown trace-domain predicate {name!r}")


def _specialize_formula(formula: Formula, var: str, sort: WordSort) -> Formula:
    """Apply :func:`_specialize_atom` throughout a quantifier-free formula."""
    if isinstance(formula, (Atom, Equals)):
        return _specialize_atom(formula, var, sort)
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return neg(_specialize_formula(formula.body, var, sort))
    if isinstance(formula, And):
        return conj(*(_specialize_formula(c, var, sort) for c in formula.conjuncts))
    if isinstance(formula, Or):
        return disj(*(_specialize_formula(d, var, sort) for d in formula.disjuncts))
    raise TypeError(f"unexpected connective during specialisation: {formula!r}")


# ---------------------------------------------------------------------------
# D/E literal rewriting (second-argument expansion, negation expansion)
# ---------------------------------------------------------------------------


def _input_words_of_length(length: int) -> Iterator[str]:
    if length <= 0:
        yield ""
        return
    for letters in itertools.product((MARK, BLANK), repeat=length):
        yield "".join(letters)


def _expand_de_positive(name: str, index: int, machine_term: Term, word_term: Term) -> Formula:
    """Rewrite a positive ``D``/``E`` atom so its word argument is a constant."""
    if isinstance(word_term, Const):
        return Atom(name, (Const(index), machine_term, word_term))
    options = []
    for candidate in _input_words_of_length(index):
        options.append(
            conj(
                Atom("B", (Const(candidate), word_term)),
                Atom(name, (Const(index), machine_term, Const(candidate))),
            )
        )
    return disj(*options)


def _expand_de_negative(name: str, index: int, machine_term: Term, word_term: Term) -> Formula:
    """Rewrite a negated ``D``/``E`` atom into positive atoms with constant words."""

    def negative_with_constant(word: Term) -> Formula:
        if name == "D":
            # fewer than `index` traces
            if index <= 1:
                return BOTTOM  # there is always at least one trace
            return disj(
                *(Atom("E", (Const(k), machine_term, word)) for k in range(1, index))
            )
        # E: either more than `index` traces or fewer
        fewer = [Atom("E", (Const(k), machine_term, word)) for k in range(1, index)]
        more = Atom("D", (Const(index + 1), machine_term, word))
        return disj(more, *fewer)

    if isinstance(word_term, Const):
        return negative_with_constant(word_term)
    options: List[Formula] = [Not(Atom("W", (word_term,)))]
    for candidate in _input_words_of_length(index):
        options.append(
            conj(
                Atom("B", (Const(candidate), word_term)),
                negative_with_constant(Const(candidate)),
            )
        )
    return disj(*options)


def _rewrite_de_literals(formula: Formula, var: str) -> Formula:
    """Rewrite every ``D``/``E`` literal whose machine argument involves ``var``.

    After the rewrite, every such literal is positive and its word argument is
    a constant.  Literals not involving ``var`` (in the machine position) are
    left untouched.
    """

    def involves_var(term: Term) -> bool:
        return Var(var) in term_variables(term)

    def rewrite(f: Formula, positive: bool) -> Formula:
        if isinstance(f, Atom) and f.predicate in ("D", "E"):
            index = _constant_index(f.args[0])
            machine_term, word_term = f.args[1], f.args[2]
            if involves_var(machine_term):
                if positive:
                    return _expand_de_positive(f.predicate, index, machine_term, word_term)
                return _expand_de_negative(f.predicate, index, machine_term, word_term)
            return f if positive else Not(f)
        if isinstance(f, (Atom, Equals, Top, Bottom)):
            return f if positive else neg(f)
        if isinstance(f, Not):
            return rewrite(f.body, not positive)
        if isinstance(f, And):
            parts = [rewrite(c, positive) for c in f.conjuncts]
            return conj(*parts) if positive else disj(*parts)
        if isinstance(f, Or):
            parts = [rewrite(d, positive) for d in f.disjuncts]
            return disj(*parts) if positive else conj(*parts)
        raise TypeError(f"unexpected connective: {f!r}")

    return rewrite(formula, True)


# ---------------------------------------------------------------------------
# Per-sort existential elimination
# ---------------------------------------------------------------------------


def _mentions(formula_or_term, var: str) -> bool:
    if isinstance(formula_or_term, (Var, Const, Apply)):
        return Var(var) in term_variables(formula_or_term)
    return Var(var) in free_variables(formula_or_term)


def _split_clause(literals: Sequence[Formula], var: str) -> Tuple[List[Formula], List[Formula]]:
    """Split clause literals into those mentioning ``var`` and the rest."""
    with_var: List[Formula] = []
    without_var: List[Formula] = []
    for literal in literals:
        if _mentions(literal, var):
            with_var.append(literal)
        else:
            without_var.append(literal)
    return with_var, without_var


def _collect_de_specs(
    literals: Sequence[Formula], var: str, machine_shape: str
) -> Optional[Tuple[List[AtLeastConstraint], List[ExactlyConstraint], List[Formula]]]:
    """Collect Lemma A.2 constraints from clause literals.

    ``machine_shape`` is ``"var"`` when the machine argument must be the
    variable itself (case M) and ``"m"`` when it must be ``m(var)`` (case T).
    Returns ``None`` if some literal mentioning ``var`` does not fit the
    expected shapes; otherwise returns the constraints and the leftover
    literals mentioning ``var`` that are *not* D/E atoms (for the caller to
    handle).
    """
    at_least: List[AtLeastConstraint] = []
    exactly: List[ExactlyConstraint] = []
    leftovers: List[Formula] = []
    expected_machine = (
        Var(var) if machine_shape == "var" else Apply("m", (Var(var),))
    )
    for literal in literals:
        if isinstance(literal, Atom) and literal.predicate in ("D", "E"):
            index = _constant_index(literal.args[0])
            machine_term, word_term = literal.args[1], literal.args[2]
            if machine_term != expected_machine or not isinstance(word_term, Const):
                leftovers.append(literal)
                continue
            word = str(word_term.value)
            if literal.predicate == "D":
                at_least.append(AtLeastConstraint(word, index))
            else:
                exactly.append(ExactlyConstraint(word, index))
        else:
            leftovers.append(literal)
    return at_least, exactly, leftovers


def _is_var_disequality(literal: Formula, var: str) -> bool:
    """True iff the literal is ``var != t`` with ``t`` free of ``var``."""
    if not (isinstance(literal, Not) and isinstance(literal.body, Equals)):
        return False
    left, right = literal.body.left, literal.body.right
    if left == Var(var) and not _mentions(right, var):
        return True
    if right == Var(var) and not _mentions(left, var):
        return True
    return False


def _eliminate_machine_sort(var: str, literals: Sequence[Formula]) -> Formula:
    """Case M of Theorem A.3: the witness ranges over machine words."""
    specialized = conj(*(_specialize_formula(lit, var, WordSort.MACHINE) for lit in literals))
    if isinstance(specialized, Bottom):
        return BOTTOM
    rewritten = _rewrite_de_literals(specialized, var)
    results: List[Formula] = []
    for clause in dnf_clauses(rewritten):
        with_var, without_var = _split_clause(clause, var)
        collected = _collect_de_specs(with_var, var, machine_shape="var")
        at_least, exactly, leftovers = collected
        unsupported = [lit for lit in leftovers if not _is_var_disequality(lit, var)]
        if unsupported:
            raise DomainError(
                f"case M cannot eliminate literals {unsupported!r}"
            )
        if lemma_a2_satisfiable(at_least, exactly):
            results.append(conj(*without_var))
    return disj(*results)


def _eliminate_other_sort(var: str, literals: Sequence[Formula]) -> Formula:
    """Case O of Theorem A.3: the witness ranges over the 'other' words."""
    specialized = conj(*(_specialize_formula(lit, var, WordSort.OTHER) for lit in literals))
    if isinstance(specialized, Bottom):
        return BOTTOM
    results: List[Formula] = []
    for clause in dnf_clauses(specialized):
        with_var, without_var = _split_clause(clause, var)
        unsupported = [lit for lit in with_var if not _is_var_disequality(lit, var)]
        if unsupported:
            raise DomainError(f"case O cannot eliminate literals {unsupported!r}")
        results.append(conj(*without_var))
    return disj(*results)


def _evaluate_ground_atoms(formula: Formula, domain: "ReachTracesDomain") -> Formula:
    """Replace fully ground atoms by their truth value (keeps free-variable atoms)."""
    if isinstance(formula, (Atom, Equals)):
        if free_variables(formula):
            return formula
        from ..relational.calculus import evaluate_formula

        value = evaluate_formula(formula, universe=(), assignment={}, interpretation=domain)
        return TOP if value else BOTTOM
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return neg(_evaluate_ground_atoms(formula.body, domain))
    if isinstance(formula, And):
        return conj(*(_evaluate_ground_atoms(c, domain) for c in formula.conjuncts))
    if isinstance(formula, Or):
        return disj(*(_evaluate_ground_atoms(d, domain) for d in formula.disjuncts))
    raise TypeError(f"unexpected connective: {formula!r}")


def _eliminate_input_sort(
    var: str, literals: Sequence[Formula], domain: "ReachTracesDomain"
) -> Formula:
    """Case W of Theorem A.3: bounded search over short input words.

    "If such an input word x exists, then there exists also a short x" — the
    constraints mentioning ``x`` only depend on a blank-padded prefix whose
    length is bounded by the ``D``/``E`` indices and the ``B`` prefixes, plus
    there are only finitely many disequalities to avoid.
    """
    specialized = [
        _specialize_formula(lit, var, WordSort.INPUT) for lit in literals
    ]
    combined = conj(*specialized)
    if isinstance(combined, Bottom):
        return BOTTOM

    prefix_bound = 0
    disequalities = 0
    for literal in specialized:
        for sub in _iterate_literal_atoms(literal):
            if not _mentions(sub, var):
                continue
            if isinstance(sub, Atom) and sub.predicate == "B":
                prefix_bound = max(prefix_bound, len(_constant_word(sub.args[0])))
            elif isinstance(sub, Atom) and sub.predicate in ("D", "E"):
                prefix_bound = max(prefix_bound, _constant_index(sub.args[0]))
            elif isinstance(sub, Equals):
                disequalities += 1

    limit = prefix_bound + disequalities
    results: List[Formula] = []
    for candidate in words_over((MARK, BLANK), limit):
        instantiated = substitute(combined, {Var(var): Const(candidate)})
        instantiated = _normalize_atom_terms(instantiated)
        instantiated = _evaluate_ground_atoms(instantiated, domain)
        if not isinstance(instantiated, Bottom):
            results.append(instantiated)
    return disj(*results)


def _iterate_literal_atoms(formula: Formula) -> Iterator[Formula]:
    """Yield the atomic subformulas of a (possibly negated) literal or small formula."""
    if isinstance(formula, (Atom, Equals)):
        yield formula
    elif isinstance(formula, Not):
        yield from _iterate_literal_atoms(formula.body)
    elif isinstance(formula, And):
        for c in formula.conjuncts:
            yield from _iterate_literal_atoms(c)
    elif isinstance(formula, Or):
        for d in formula.disjuncts:
            yield from _iterate_literal_atoms(d)


# -- case T ------------------------------------------------------------------


def _set_partitions(items: Sequence[int]) -> Iterator[List[List[int]]]:
    """All partitions of ``items`` into non-empty blocks."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        for index in range(len(partition)):
            extended = [list(block) for block in partition]
            extended[index].append(first)
            yield extended
        yield [[first]] + [list(block) for block in partition]


def _trace_avoidance_formula(
    machine_term: Term, word_term: Term, excluded: Sequence[Term], limit: int = 6
) -> Formula:
    """A formula asserting that some trace of the machine on the word avoids ``excluded``.

    This is the paper's case T-4 "disjunction trick": case-split on which of
    the excluded terms actually are traces of the machine on the word and on
    the equalities between them; if ``k`` distinct excluded traces remain, the
    machine must have at least ``k + 1`` traces (``D_{k+1}``).
    """
    if len(excluded) > limit:
        raise DomainError(
            f"too many excluded traces for the T-4 expansion ({len(excluded)} > {limit})"
        )
    if not excluded:
        return TOP

    def is_trace_of(term: Term) -> Formula:
        return conj(
            Atom("T", (term,)),
            Equals(Apply("m", (term,)), machine_term),
            Equals(Apply("w", (term,)), word_term),
        )

    indices = list(range(len(excluded)))
    disjuncts: List[Formula] = []
    for size in range(len(indices) + 1):
        for subset in itertools.combinations(indices, size):
            outside = [i for i in indices if i not in subset]
            outside_part = conj(*(neg(is_trace_of(excluded[i])) for i in outside))
            for partition in _set_partitions(list(subset)):
                pieces: List[Formula] = [outside_part]
                for block in partition:
                    pieces.append(is_trace_of(excluded[block[0]]))
                    for other in block[1:]:
                        pieces.append(Equals(excluded[block[0]], excluded[other]))
                representatives = [block[0] for block in partition]
                for left, right in itertools.combinations(representatives, 2):
                    pieces.append(neg(Equals(excluded[left], excluded[right])))
                pieces.append(
                    Atom("D", (Const(len(partition) + 1), machine_term, word_term))
                )
                disjuncts.append(conj(*pieces))
    return disj(*disjuncts)


def _word_constraints_satisfiable(b_literals: Sequence[Tuple[bool, str]]) -> bool:
    """Is there an input word satisfying the given (polarity, prefix) ``B`` constraints?"""
    if not b_literals:
        return True
    length = max(len(prefix) for _positive, prefix in b_literals)
    for candidate in _input_words_of_length(length):
        ok = True
        for positive, prefix in b_literals:
            holds = starts_with_padded(candidate, prefix)
            if holds != positive:
                ok = False
                break
        if ok:
            return True
    return False


def _eliminate_trace_sort(var: str, literals: Sequence[Formula]) -> Formula:
    """Case T of Theorem A.3 (sub-cases T-1 … T-4)."""
    specialized = conj(*(_specialize_formula(lit, var, WordSort.TRACE) for lit in literals))
    if isinstance(specialized, Bottom):
        return BOTTOM
    rewritten = _rewrite_de_literals(specialized, var)

    m_of_x = Apply("m", (Var(var),))
    w_of_x = Apply("w", (Var(var),))

    results: List[Formula] = []
    for clause in dnf_clauses(rewritten):
        with_var, without_var = _split_clause(clause, var)

        machine_binding: Optional[Term] = None
        word_binding: Optional[Term] = None
        extra_residual: List[Formula] = []
        m_disequalities: List[Term] = []
        w_disequalities: List[Term] = []
        trace_disequalities: List[Term] = []
        b_constraints: List[Tuple[bool, str]] = []
        b_literals_on_wx: List[Tuple[bool, str]] = []
        de_literals: List[Formula] = []
        bad: List[Formula] = []

        for literal in with_var:
            positive = True
            body = literal
            if isinstance(literal, Not):
                positive = False
                body = literal.body

            if isinstance(body, Equals):
                left, right = body.left, body.right
                if right in (m_of_x, w_of_x) and not _mentions(left, var):
                    left, right = right, left
                if left == m_of_x and not _mentions(right, var):
                    if positive:
                        if machine_binding is None:
                            machine_binding = right
                        else:
                            extra_residual.append(Equals(machine_binding, right))
                    else:
                        m_disequalities.append(right)
                    continue
                if left == w_of_x and not _mentions(right, var):
                    if positive:
                        if word_binding is None:
                            word_binding = right
                        else:
                            extra_residual.append(Equals(word_binding, right))
                    else:
                        w_disequalities.append(right)
                    continue
                if not positive and (left == Var(var) or right == Var(var)):
                    other = right if left == Var(var) else left
                    if not _mentions(other, var):
                        trace_disequalities.append(other)
                        continue
                bad.append(literal)
                continue

            if isinstance(body, Atom) and body.predicate == "B":
                prefix = _constant_word(body.args[0])
                target = body.args[1]
                if target == w_of_x:
                    b_literals_on_wx.append((positive, prefix))
                    continue
                bad.append(literal)
                continue

            if isinstance(body, Atom) and body.predicate in ("D", "E") and positive:
                de_literals.append(body)
                continue

            bad.append(literal)

        if bad:
            raise DomainError(f"case T cannot eliminate literals {bad!r}")

        at_least, exactly, leftovers = _collect_de_specs(de_literals, var, machine_shape="m")
        if leftovers:
            raise DomainError(f"case T: unexpected D/E literals {leftovers!r}")

        residual = conj(*without_var, *extra_residual)

        if machine_binding is None and word_binding is None:
            # T-1: both the machine and the input word of the trace are free.
            if lemma_a2_satisfiable(at_least, exactly) and _word_constraints_satisfiable(
                b_literals_on_wx
            ):
                results.append(residual)
            continue

        if machine_binding is not None and word_binding is None:
            # T-2: the machine is pinned; the input word remains free.
            if not _word_constraints_satisfiable(b_literals_on_wx):
                continue
            pieces: List[Formula] = [residual, Atom("M", (machine_binding,))]
            for constraint in at_least:
                pieces.append(
                    Atom("D", (Const(constraint.count), machine_binding, Const(constraint.word)))
                )
            for constraint in exactly:
                pieces.append(
                    Atom("E", (Const(constraint.count), machine_binding, Const(constraint.word)))
                )
            for term in m_disequalities:
                pieces.append(neg(Equals(machine_binding, term)))
            results.append(conj(*pieces))
            continue

        if machine_binding is None and word_binding is not None:
            # T-3: the input word is pinned; the machine remains free.
            if not lemma_a2_satisfiable(at_least, exactly):
                continue
            pieces = [residual, Atom("W", (word_binding,))]
            for positive, prefix in b_literals_on_wx:
                atom = Atom("B", (Const(prefix), word_binding))
                pieces.append(atom if positive else neg(atom))
            for term in w_disequalities:
                pieces.append(neg(Equals(word_binding, term)))
            results.append(conj(*pieces))
            continue

        # T-4: both the machine and the word are pinned.
        pieces = [residual, Atom("M", (machine_binding,)), Atom("W", (word_binding,))]
        for constraint in at_least:
            pieces.append(
                Atom("D", (Const(constraint.count), machine_binding, Const(constraint.word)))
            )
        for constraint in exactly:
            pieces.append(
                Atom("E", (Const(constraint.count), machine_binding, Const(constraint.word)))
            )
        for positive, prefix in b_literals_on_wx:
            atom = Atom("B", (Const(prefix), word_binding))
            pieces.append(atom if positive else neg(atom))
        for term in m_disequalities:
            pieces.append(neg(Equals(machine_binding, term)))
        for term in w_disequalities:
            pieces.append(neg(Equals(word_binding, term)))
        pieces.append(
            _trace_avoidance_formula(machine_binding, word_binding, trace_disequalities)
        )
        results.append(conj(*pieces))

    return disj(*results)


# ---------------------------------------------------------------------------
# The clause eliminator and the public elimination entry point
# ---------------------------------------------------------------------------


def _make_clause_eliminator(domain: "ReachTracesDomain"):
    def eliminate_clause(var: str, literals: Sequence[Formula]) -> Formula:
        cleaned: List[Formula] = []
        for literal in literals:
            if isinstance(literal, Top):
                continue
            if isinstance(literal, Bottom):
                return BOTTOM
            cleaned.append(_normalize_atom_terms(literal))

        # Direct equality x = t with t free of x: substitute and finish.
        for literal in cleaned:
            if isinstance(literal, Equals):
                left, right = literal.left, literal.right
                target: Optional[Term] = None
                if left == Var(var) and not _mentions(right, var):
                    target = right
                elif right == Var(var) and not _mentions(left, var):
                    target = left
                if target is not None:
                    replaced = [
                        _normalize_atom_terms(substitute(lit, {Var(var): target}))
                        for lit in cleaned
                        if lit is not literal
                    ]
                    return _evaluate_ground_atoms(conj(*replaced), domain)

        cases = [
            _eliminate_machine_sort(var, cleaned),
            _eliminate_input_sort(var, cleaned, domain),
            _eliminate_trace_sort(var, cleaned),
            _eliminate_other_sort(var, cleaned),
        ]
        return _evaluate_ground_atoms(simplify(disj(*cases)), domain)

    return eliminate_clause


def eliminate_reach_quantifiers(
    formula: Formula, domain: Optional["ReachTracesDomain"] = None
) -> Formula:
    """Theorem A.3: quantifier elimination for the Reach Theory of Traces.

    ``P`` atoms are expanded definitionally first; the result is a
    quantifier-free formula over the extended signature.
    """
    domain = domain or ReachTracesDomain()
    expanded = expand_trace_predicate(formula)
    return eliminate_quantifiers(expanded, _make_clause_eliminator(domain))


# ---------------------------------------------------------------------------
# The domain object
# ---------------------------------------------------------------------------


class ReachTracesDomain(Domain):
    """The trace domain equipped with the extended (Reach) signature."""

    name = "reach_traces"
    signature = REACH_SIGNATURE
    has_decidable_theory = True

    # -- carrier -------------------------------------------------------------

    def contains(self, element: Element) -> bool:
        return isinstance(element, str) and all(c in DOMAIN_ALPHABET for c in element)

    def enumerate_elements(self) -> Iterator[str]:
        yield ""
        for length in itertools.count(1):
            for letters in itertools.product(DOMAIN_ALPHABET, repeat=length):
                yield "".join(letters)

    # -- evaluation ----------------------------------------------------------

    def eval_function(self, name: str, args: Sequence[Element]) -> Element:
        value = str(args[0])
        if name == "w":
            return input_of_trace(value)
        if name == "m":
            return machine_of_trace(value)
        raise KeyError(f"unknown reach-theory function {name!r}")

    def eval_predicate(self, name: str, args: Sequence[Element]) -> bool:
        if name == "P":
            machine_word, input_word, trace_word = (str(a) for a in args)
            return holds_P(machine_word, input_word, trace_word)
        if name in ("M", "W", "T", "O"):
            sort = classify_word(str(args[0]))
            return sort is {
                "M": WordSort.MACHINE,
                "W": WordSort.INPUT,
                "T": WordSort.TRACE,
                "O": WordSort.OTHER,
            }[name]
        if name == "B":
            prefix, word = str(args[0]), str(args[1])
            if not is_input_word(word) or not is_input_word(prefix):
                return False
            return starts_with_padded(word, prefix)
        if name in ("D", "E"):
            index = int(args[0])
            machine_word, input_word = str(args[1]), str(args[2])
            if not is_machine_word(machine_word) or not is_input_word(input_word):
                return False
            if name == "D":
                return has_at_least_traces(machine_word, input_word, index)
            return has_exactly_traces(machine_word, input_word, index)
        raise KeyError(f"unknown reach-theory predicate {name!r}")

    # -- decision procedure ---------------------------------------------------

    def eliminate_quantifiers(self, formula: Formula) -> Formula:
        """The Theorem A.3 elimination, exposed on the domain object."""
        return eliminate_reach_quantifiers(formula, self)

    def decide(self, sentence: Formula) -> bool:
        """Corollary A.4: decide a sentence of the (Reach) Theory of Traces."""
        self._require_sentence(sentence)
        eliminated = eliminate_reach_quantifiers(sentence, self)
        ground = _evaluate_ground_atoms(_normalize_atom_terms(eliminated), self)
        if isinstance(ground, Top):
            return True
        if isinstance(ground, Bottom):
            return False
        raise DomainError(
            f"quantifier elimination left a non-ground residue: {ground}"
        )
