"""Signatures of domains: function and predicate symbols with arities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

__all__ = ["Signature"]


@dataclass(frozen=True)
class Signature:
    """The non-logical symbols of a domain (equality is always implicit).

    ``predicates`` and ``functions`` map symbol names to arities.  Constants
    for all domain elements are assumed (the paper's convention) and are not
    listed explicitly.
    """

    predicates: Mapping[str, int] = field(default_factory=dict)
    functions: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "predicates", dict(self.predicates))
        object.__setattr__(self, "functions", dict(self.functions))
        overlap = set(self.predicates) & set(self.functions)
        if overlap:
            raise ValueError(f"symbols used both as predicate and function: {overlap}")

    def has_predicate(self, name: str) -> bool:
        """True iff ``name`` is a predicate symbol of this signature."""
        return name in self.predicates

    def has_function(self, name: str) -> bool:
        """True iff ``name`` is a function symbol of this signature."""
        return name in self.functions

    def predicate_arity(self, name: str) -> int:
        """The arity of predicate ``name``."""
        return self.predicates[name]

    def function_arity(self, name: str) -> int:
        """The arity of function ``name``."""
        return self.functions[name]

    def merge(self, other: "Signature") -> "Signature":
        """The union of two signatures; arities must agree on shared symbols."""
        predicates: Dict[str, int] = dict(self.predicates)
        for name, arity in other.predicates.items():
            if predicates.get(name, arity) != arity:
                raise ValueError(f"conflicting arities for predicate {name!r}")
            predicates[name] = arity
        functions: Dict[str, int] = dict(self.functions)
        for name, arity in other.functions.items():
            if functions.get(name, arity) != arity:
                raise ValueError(f"conflicting arities for function {name!r}")
            functions[name] = arity
        return Signature(predicates, functions)

    def __str__(self) -> str:
        preds = ", ".join(f"{n}/{a}" for n, a in sorted(self.predicates.items()))
        funcs = ", ".join(f"{n}/{a}" for n, a in sorted(self.functions.items()))
        return f"Signature(predicates=[{preds}], functions=[{funcs}])"
