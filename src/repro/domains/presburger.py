"""Presburger arithmetic and Cooper's quantifier elimination.

Section 2 of the paper lists "natural numbers with <, +, and -" (Presburger
arithmetic) among the domains for which the finitization trick yields a
recursive syntax for finite queries, and Theorem 2.5 needs a decision
procedure for (extensions of) ``(N, <)`` to decide relative safety.  This
module provides both, via Cooper's classical quantifier-elimination algorithm
for linear integer arithmetic.

The implementation works on an internal representation of linear constraints:

* :class:`LinTerm` — a linear term ``c0 + c1*x1 + ... + ck*xk`` with integer
  coefficients;
* internal atoms ``t < 0``, ``t = 0`` and ``d | t``;
* internal connectives mirroring the logic AST.

The public surface converts back and forth between the project-wide logic AST
(:mod:`repro.logic`) and the internal representation, eliminates quantifiers,
and decides sentences.  Natural-number semantics is obtained by relativising
every quantifier to ``x >= 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..logic.builders import conj, disj, neg
from ..logic.formulas import (
    BOTTOM,
    TOP,
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)
from ..logic.terms import Apply, Const, Term, Var
from ..relational.state import Element
from .base import Domain, DomainError
from .signature import Signature

__all__ = [
    "LinTerm",
    "PresburgerDomain",
    "linearize_term",
    "eliminate_presburger_quantifiers",
]


# ---------------------------------------------------------------------------
# Linear terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinTerm:
    """A linear term over integer variables: ``constant + sum(coeff * var)``."""

    coeffs: Tuple[Tuple[str, int], ...]
    constant: int

    @classmethod
    def of(cls, constant: int = 0, **coeffs: int) -> "LinTerm":
        """Build a linear term from a constant and ``var=coeff`` keywords."""
        return cls.make(coeffs, constant)

    @classmethod
    def make(cls, coeffs: Dict[str, int], constant: int) -> "LinTerm":
        """Build a linear term, dropping zero coefficients and sorting variables."""
        cleaned = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return cls(cleaned, constant)

    @classmethod
    def constant_term(cls, value: int) -> "LinTerm":
        """The constant linear term ``value``."""
        return cls((), value)

    @classmethod
    def variable(cls, name: str) -> "LinTerm":
        """The linear term consisting of a single variable."""
        return cls(((name, 1),), 0)

    def coeff_of(self, name: str) -> int:
        """The coefficient of ``name`` (0 if absent)."""
        for var, coeff in self.coeffs:
            if var == name:
                return coeff
        return 0

    def variables(self) -> Tuple[str, ...]:
        """The variables with non-zero coefficient."""
        return tuple(v for v, _ in self.coeffs)

    def add(self, other: "LinTerm") -> "LinTerm":
        """Sum of two linear terms."""
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs:
            coeffs[var] = coeffs.get(var, 0) + coeff
        return LinTerm.make(coeffs, self.constant + other.constant)

    def negate(self) -> "LinTerm":
        """The additive inverse."""
        return self.scale(-1)

    def subtract(self, other: "LinTerm") -> "LinTerm":
        """Difference of two linear terms."""
        return self.add(other.negate())

    def scale(self, factor: int) -> "LinTerm":
        """Multiply by an integer constant."""
        coeffs = {var: coeff * factor for var, coeff in self.coeffs}
        return LinTerm.make(coeffs, self.constant * factor)

    def drop(self, name: str) -> "LinTerm":
        """The term with the coefficient of ``name`` removed."""
        coeffs = {var: coeff for var, coeff in self.coeffs if var != name}
        return LinTerm.make(coeffs, self.constant)

    def substitute(self, name: str, replacement: "LinTerm") -> "LinTerm":
        """Replace ``name`` by a linear term (its coefficient multiplies in)."""
        coeff = self.coeff_of(name)
        if coeff == 0:
            return self
        return self.drop(name).add(replacement.scale(coeff))

    def is_constant(self) -> bool:
        """True iff the term has no variables."""
        return not self.coeffs

    def evaluate(self, assignment: Dict[str, int]) -> int:
        """Evaluate under a complete integer assignment."""
        total = self.constant
        for var, coeff in self.coeffs:
            total += coeff * assignment[var]
        return total

    def to_logic_term(self) -> Term:
        """Convert back into the project-wide logic AST."""
        parts: List[Term] = []
        for var, coeff in self.coeffs:
            if coeff == 1:
                parts.append(Var(var))
            else:
                parts.append(Apply("*", (Const(coeff), Var(var))))
        if self.constant != 0 or not parts:
            parts.append(Const(self.constant))
        result = parts[0]
        for part in parts[1:]:
            result = Apply("+", (result, part))
        return result

    def __str__(self) -> str:
        pieces = [f"{c}*{v}" for v, c in self.coeffs]
        pieces.append(str(self.constant))
        return " + ".join(pieces)


# ---------------------------------------------------------------------------
# Internal constraint formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ILt:
    """The constraint ``term < 0``."""

    term: LinTerm


@dataclass(frozen=True)
class IEq:
    """The constraint ``term = 0``."""

    term: LinTerm


@dataclass(frozen=True)
class IDvd:
    """The constraint ``modulus | term`` (modulus a positive integer)."""

    modulus: int
    term: LinTerm


@dataclass(frozen=True)
class INot:
    body: "IFormula"


@dataclass(frozen=True)
class IAnd:
    parts: Tuple["IFormula", ...]


@dataclass(frozen=True)
class IOr:
    parts: Tuple["IFormula", ...]


@dataclass(frozen=True)
class IExists:
    var: str
    body: "IFormula"


@dataclass(frozen=True)
class ITrue:
    pass


@dataclass(frozen=True)
class IFalse:
    pass


IFormula = Union[ILt, IEq, IDvd, INot, IAnd, IOr, IExists, ITrue, IFalse]

_TRUE = ITrue()
_FALSE = IFalse()


def _iand(parts: Sequence[IFormula]) -> IFormula:
    flat: List[IFormula] = []
    for part in parts:
        if isinstance(part, IFalse):
            return _FALSE
        if isinstance(part, ITrue):
            continue
        if isinstance(part, IAnd):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return _TRUE
    if len(flat) == 1:
        return flat[0]
    return IAnd(tuple(flat))


def _ior(parts: Sequence[IFormula]) -> IFormula:
    flat: List[IFormula] = []
    for part in parts:
        if isinstance(part, ITrue):
            return _TRUE
        if isinstance(part, IFalse):
            continue
        if isinstance(part, IOr):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return _FALSE
    if len(flat) == 1:
        return flat[0]
    return IOr(tuple(flat))


# ---------------------------------------------------------------------------
# Conversion: logic AST -> internal representation
# ---------------------------------------------------------------------------


def linearize_term(term: Term) -> LinTerm:
    """Interpret a logic term as a linear integer term.

    Supported constructs: variables, integer constants, ``+``, ``-`` (binary),
    ``*`` (one side must be constant), and ``succ`` (add one).
    """
    if isinstance(term, Var):
        return LinTerm.variable(term.name)
    if isinstance(term, Const):
        if not isinstance(term.value, int):
            raise DomainError(f"non-integer constant {term.value!r} in arithmetic term")
        return LinTerm.constant_term(term.value)
    if isinstance(term, Apply):
        if term.function == "+" and len(term.args) == 2:
            return linearize_term(term.args[0]).add(linearize_term(term.args[1]))
        if term.function == "-" and len(term.args) == 2:
            return linearize_term(term.args[0]).subtract(linearize_term(term.args[1]))
        if term.function == "succ" and len(term.args) == 1:
            return linearize_term(term.args[0]).add(LinTerm.constant_term(1))
        if term.function == "*" and len(term.args) == 2:
            left = linearize_term(term.args[0])
            right = linearize_term(term.args[1])
            if left.is_constant():
                return right.scale(left.constant)
            if right.is_constant():
                return left.scale(right.constant)
            raise DomainError("non-linear multiplication is outside Presburger arithmetic")
        raise DomainError(f"unsupported function {term.function!r} in arithmetic term")
    raise TypeError(f"not a term: {term!r}")


def _atom_to_internal(formula: Formula) -> IFormula:
    if isinstance(formula, Equals):
        diff = linearize_term(formula.left).subtract(linearize_term(formula.right))
        return IEq(diff)
    if isinstance(formula, Atom):
        name = formula.predicate
        if name in ("<", "<=", ">", ">="):
            left = linearize_term(formula.args[0])
            right = linearize_term(formula.args[1])
            if name == "<":
                return ILt(left.subtract(right))
            if name == ">":
                return ILt(right.subtract(left))
            if name == "<=":
                return ILt(left.subtract(right).add(LinTerm.constant_term(-1)))
            return ILt(right.subtract(left).add(LinTerm.constant_term(-1)))
        if name == "divides" and len(formula.args) == 2:
            modulus_term = linearize_term(formula.args[0])
            if not modulus_term.is_constant() or modulus_term.constant <= 0:
                raise DomainError("divisibility modulus must be a positive integer constant")
            return IDvd(modulus_term.constant, linearize_term(formula.args[1]))
        raise DomainError(f"unknown arithmetic predicate {name!r}")
    raise TypeError(f"not an atom: {formula!r}")


def _formula_to_internal(formula: Formula, relativize_naturals: bool) -> IFormula:
    if isinstance(formula, Top):
        return _TRUE
    if isinstance(formula, Bottom):
        return _FALSE
    if isinstance(formula, (Atom, Equals)):
        return _atom_to_internal(formula)
    if isinstance(formula, Not):
        return INot(_formula_to_internal(formula.body, relativize_naturals))
    if isinstance(formula, And):
        return _iand([_formula_to_internal(c, relativize_naturals) for c in formula.conjuncts])
    if isinstance(formula, Or):
        return _ior([_formula_to_internal(d, relativize_naturals) for d in formula.disjuncts])
    if isinstance(formula, Implies):
        return _ior([
            INot(_formula_to_internal(formula.antecedent, relativize_naturals)),
            _formula_to_internal(formula.consequent, relativize_naturals),
        ])
    if isinstance(formula, Iff):
        left = _formula_to_internal(formula.left, relativize_naturals)
        right = _formula_to_internal(formula.right, relativize_naturals)
        return _iand([_ior([INot(left), right]), _ior([INot(right), left])])
    if isinstance(formula, Exists):
        body = _formula_to_internal(formula.body, relativize_naturals)
        if relativize_naturals:
            non_negative = ILt(LinTerm.make({formula.var: -1}, -1))  # -x - 1 < 0  <=>  x >= 0
            body = _iand([non_negative, body])
        return IExists(formula.var, body)
    if isinstance(formula, ForAll):
        inner = Not(Exists(formula.var, Not(formula.body)))
        return _formula_to_internal(inner, relativize_naturals)
    raise TypeError(f"not a formula: {formula!r}")


# ---------------------------------------------------------------------------
# Cooper's algorithm
# ---------------------------------------------------------------------------


def _nnf(formula: IFormula, positive: bool = True) -> IFormula:
    """Negation normal form over the internal atoms.

    Negations are eliminated entirely: ``not (t < 0)`` becomes ``-t - 1 < 0``,
    ``not (t = 0)`` becomes ``t < 0 or -t < 0``, and only negated
    divisibilities remain as negative literals.
    """
    if isinstance(formula, ITrue):
        return _TRUE if positive else _FALSE
    if isinstance(formula, IFalse):
        return _FALSE if positive else _TRUE
    if isinstance(formula, ILt):
        if positive:
            return formula
        return ILt(formula.term.negate().add(LinTerm.constant_term(-1)))
    if isinstance(formula, IEq):
        if positive:
            return formula
        return _ior([ILt(formula.term), ILt(formula.term.negate())])
    if isinstance(formula, IDvd):
        return formula if positive else INot(formula)
    if isinstance(formula, INot):
        return _nnf(formula.body, not positive)
    if isinstance(formula, IAnd):
        parts = [_nnf(p, positive) for p in formula.parts]
        return _iand(parts) if positive else _ior(parts)
    if isinstance(formula, IOr):
        parts = [_nnf(p, positive) for p in formula.parts]
        return _ior(parts) if positive else _iand(parts)
    if isinstance(formula, IExists):
        raise AssertionError("quantifiers must be eliminated innermost-first")
    raise TypeError(f"not an internal formula: {formula!r}")


def _collect_coefficients(formula: IFormula, var: str) -> List[int]:
    coefficients: List[int] = []
    if isinstance(formula, (ILt, IEq)):
        coeff = formula.term.coeff_of(var)
        if coeff:
            coefficients.append(coeff)
    elif isinstance(formula, IDvd):
        coeff = formula.term.coeff_of(var)
        if coeff:
            coefficients.append(coeff)
    elif isinstance(formula, INot):
        coefficients.extend(_collect_coefficients(formula.body, var))
    elif isinstance(formula, (IAnd, IOr)):
        for part in formula.parts:
            coefficients.extend(_collect_coefficients(part, var))
    return coefficients


def _normalize_coefficients(formula: IFormula, var: str, delta: int) -> IFormula:
    """Scale atoms so the coefficient of ``var`` is exactly ``+1`` or ``-1``.

    Conceptually the variable is replaced by ``delta * var``; the caller adds
    the divisibility constraint ``delta | var`` afterwards.
    """
    if isinstance(formula, ILt):
        coeff = formula.term.coeff_of(var)
        if coeff == 0:
            return formula
        factor = delta // abs(coeff)
        scaled = formula.term.scale(factor)
        # Coefficient of var is now +-delta; rewrite it as +-1.
        rest = scaled.drop(var)
        sign = 1 if coeff > 0 else -1
        return ILt(rest.add(LinTerm.make({var: sign}, 0)))
    if isinstance(formula, IEq):
        coeff = formula.term.coeff_of(var)
        if coeff == 0:
            return formula
        factor = delta // abs(coeff)
        scaled = formula.term.scale(factor)
        rest = scaled.drop(var)
        sign = 1 if coeff > 0 else -1
        return IEq(rest.add(LinTerm.make({var: sign}, 0)))
    if isinstance(formula, IDvd):
        coeff = formula.term.coeff_of(var)
        if coeff == 0:
            return formula
        factor = delta // abs(coeff)
        scaled = formula.term.scale(factor)
        modulus = formula.modulus * factor
        if coeff < 0:
            scaled = scaled.negate()
        rest = scaled.drop(var)
        return IDvd(modulus, rest.add(LinTerm.make({var: 1}, 0)))
    if isinstance(formula, INot):
        return INot(_normalize_coefficients(formula.body, var, delta))
    if isinstance(formula, IAnd):
        return _iand([_normalize_coefficients(p, var, delta) for p in formula.parts])
    if isinstance(formula, IOr):
        return _ior([_normalize_coefficients(p, var, delta) for p in formula.parts])
    if isinstance(formula, (ITrue, IFalse)):
        return formula
    raise TypeError(f"not an internal formula: {formula!r}")


def _substitute_var(formula: IFormula, var: str, replacement: LinTerm) -> IFormula:
    if isinstance(formula, ILt):
        return ILt(formula.term.substitute(var, replacement))
    if isinstance(formula, IEq):
        return IEq(formula.term.substitute(var, replacement))
    if isinstance(formula, IDvd):
        return IDvd(formula.modulus, formula.term.substitute(var, replacement))
    if isinstance(formula, INot):
        return INot(_substitute_var(formula.body, var, replacement))
    if isinstance(formula, IAnd):
        return _iand([_substitute_var(p, var, replacement) for p in formula.parts])
    if isinstance(formula, IOr):
        return _ior([_substitute_var(p, var, replacement) for p in formula.parts])
    if isinstance(formula, (ITrue, IFalse)):
        return formula
    raise TypeError(f"not an internal formula: {formula!r}")


def _minus_infinity(formula: IFormula, var: str) -> IFormula:
    """The ``F_-inf`` transform: the formula for arbitrarily small values of ``var``."""
    if isinstance(formula, ILt):
        coeff = formula.term.coeff_of(var)
        if coeff == 0:
            return formula
        # coefficient is +-1 after normalisation
        return _TRUE if coeff > 0 else _FALSE
    if isinstance(formula, IEq):
        if formula.term.coeff_of(var) == 0:
            return formula
        return _FALSE
    if isinstance(formula, (IDvd, ITrue, IFalse)):
        return formula
    if isinstance(formula, INot):
        return INot(_minus_infinity(formula.body, var))
    if isinstance(formula, IAnd):
        return _iand([_minus_infinity(p, var) for p in formula.parts])
    if isinstance(formula, IOr):
        return _ior([_minus_infinity(p, var) for p in formula.parts])
    raise TypeError(f"not an internal formula: {formula!r}")


def _lower_bound_terms(formula: IFormula, var: str) -> List[LinTerm]:
    """The B-set of Cooper's algorithm: terms ``b`` such that ``b < var`` occurs.

    After normalisation every literal containing ``var`` has coefficient
    ``+1`` or ``-1``.  Lower bounds come from ``-var + r < 0`` (i.e.
    ``r < var``, bound ``r``) and from equalities ``var + r = 0`` (bound
    ``-r - 1``).
    """
    bounds: List[LinTerm] = []
    if isinstance(formula, ILt):
        coeff = formula.term.coeff_of(var)
        if coeff == -1:
            bounds.append(formula.term.drop(var))
    elif isinstance(formula, IEq):
        coeff = formula.term.coeff_of(var)
        if coeff == 1:
            bounds.append(formula.term.drop(var).negate().add(LinTerm.constant_term(-1)))
        elif coeff == -1:
            bounds.append(formula.term.drop(var).add(LinTerm.constant_term(-1)))
    elif isinstance(formula, INot):
        bounds.extend(_lower_bound_terms(formula.body, var))
    elif isinstance(formula, (IAnd, IOr)):
        for part in formula.parts:
            bounds.extend(_lower_bound_terms(part, var))
    return bounds


def _divisibility_lcm(formula: IFormula, var: str) -> int:
    lcm = 1
    if isinstance(formula, IDvd):
        if formula.term.coeff_of(var) != 0:
            lcm = formula.modulus
    elif isinstance(formula, INot):
        lcm = _divisibility_lcm(formula.body, var)
    elif isinstance(formula, (IAnd, IOr)):
        for part in formula.parts:
            lcm = lcm * _divisibility_lcm(part, var) // math.gcd(lcm, _divisibility_lcm(part, var))
    return lcm


def _fold_constants(formula: IFormula) -> IFormula:
    """Evaluate variable-free atoms and deduplicate operands (keeps formulas small)."""
    if isinstance(formula, ILt):
        if formula.term.is_constant():
            return _TRUE if formula.term.constant < 0 else _FALSE
        return formula
    if isinstance(formula, IEq):
        if formula.term.is_constant():
            return _TRUE if formula.term.constant == 0 else _FALSE
        return formula
    if isinstance(formula, IDvd):
        if formula.term.is_constant():
            return _TRUE if formula.term.constant % formula.modulus == 0 else _FALSE
        return formula
    if isinstance(formula, INot):
        inner = _fold_constants(formula.body)
        if isinstance(inner, ITrue):
            return _FALSE
        if isinstance(inner, IFalse):
            return _TRUE
        return INot(inner)
    if isinstance(formula, IAnd):
        folded = _iand([_fold_constants(p) for p in formula.parts])
        if isinstance(folded, IAnd):
            unique = tuple(dict.fromkeys(folded.parts))
            return unique[0] if len(unique) == 1 else IAnd(unique)
        return folded
    if isinstance(formula, IOr):
        folded = _ior([_fold_constants(p) for p in formula.parts])
        if isinstance(folded, IOr):
            unique = tuple(dict.fromkeys(folded.parts))
            return unique[0] if len(unique) == 1 else IOr(unique)
        return folded
    return formula


def _eliminate_exists(var: str, body: IFormula) -> IFormula:
    """Eliminate ``exists var`` from a quantifier-free internal formula."""
    body = _nnf(body)
    coefficients = _collect_coefficients(body, var)
    if not coefficients:
        return body
    delta = 1
    for coeff in coefficients:
        delta = delta * abs(coeff) // math.gcd(delta, abs(coeff))
    normalised = _normalize_coefficients(body, var, delta)
    if delta != 1:
        normalised = _iand([normalised, IDvd(delta, LinTerm.variable(var))])
    modulus = _divisibility_lcm(normalised, var)
    lower_bounds = _lower_bound_terms(normalised, var)

    disjuncts: List[IFormula] = []
    minus_inf = _minus_infinity(normalised, var)
    for j in range(1, modulus + 1):
        disjuncts.append(_fold_constants(_substitute_var(minus_inf, var, LinTerm.constant_term(j))))
    unique_bounds = list(dict.fromkeys(lower_bounds))
    for bound in unique_bounds:
        for j in range(1, modulus + 1):
            replacement = bound.add(LinTerm.constant_term(j))
            disjuncts.append(_fold_constants(_substitute_var(normalised, var, replacement)))
    return _fold_constants(_ior(disjuncts))


def _eliminate_all(formula: IFormula) -> IFormula:
    """Eliminate every quantifier, innermost first."""
    if isinstance(formula, (ILt, IEq, IDvd, ITrue, IFalse)):
        return formula
    if isinstance(formula, INot):
        return INot(_eliminate_all(formula.body))
    if isinstance(formula, IAnd):
        return _iand([_eliminate_all(p) for p in formula.parts])
    if isinstance(formula, IOr):
        return _ior([_eliminate_all(p) for p in formula.parts])
    if isinstance(formula, IExists):
        body = _eliminate_all(formula.body)
        return _eliminate_exists(formula.var, body)
    raise TypeError(f"not an internal formula: {formula!r}")


# ---------------------------------------------------------------------------
# Evaluation and conversion back to the logic AST
# ---------------------------------------------------------------------------


def _evaluate_internal(formula: IFormula, assignment: Dict[str, int]) -> bool:
    if isinstance(formula, ITrue):
        return True
    if isinstance(formula, IFalse):
        return False
    if isinstance(formula, ILt):
        return formula.term.evaluate(assignment) < 0
    if isinstance(formula, IEq):
        return formula.term.evaluate(assignment) == 0
    if isinstance(formula, IDvd):
        return formula.term.evaluate(assignment) % formula.modulus == 0
    if isinstance(formula, INot):
        return not _evaluate_internal(formula.body, assignment)
    if isinstance(formula, IAnd):
        return all(_evaluate_internal(p, assignment) for p in formula.parts)
    if isinstance(formula, IOr):
        return any(_evaluate_internal(p, assignment) for p in formula.parts)
    raise TypeError(f"cannot evaluate {formula!r}")


def _internal_to_formula(formula: IFormula) -> Formula:
    if isinstance(formula, ITrue):
        return TOP
    if isinstance(formula, IFalse):
        return BOTTOM
    if isinstance(formula, ILt):
        return Atom("<", (formula.term.to_logic_term(), Const(0)))
    if isinstance(formula, IEq):
        return Equals(formula.term.to_logic_term(), Const(0))
    if isinstance(formula, IDvd):
        return Atom("divides", (Const(formula.modulus), formula.term.to_logic_term()))
    if isinstance(formula, INot):
        return neg(_internal_to_formula(formula.body))
    if isinstance(formula, IAnd):
        return conj(*(_internal_to_formula(p) for p in formula.parts))
    if isinstance(formula, IOr):
        return disj(*(_internal_to_formula(p) for p in formula.parts))
    raise TypeError(f"cannot convert {formula!r}")


def eliminate_presburger_quantifiers(
    formula: Formula, naturals: bool = True
) -> Formula:
    """Quantifier elimination for linear arithmetic, returning a logic formula.

    With ``naturals=True`` quantifiers are relativised to the non-negative
    integers before elimination, matching the domain ``(N, <, +, -)``.
    """
    internal = _formula_to_internal(formula, relativize_naturals=naturals)
    eliminated = _eliminate_all(internal)
    return _internal_to_formula(eliminated)


# ---------------------------------------------------------------------------
# The domain object
# ---------------------------------------------------------------------------


class PresburgerDomain(Domain):
    """Linear integer/natural arithmetic: ``<``, ``<=``, ``+``, ``-``, ``succ``, ``divides``.

    The default carrier is the natural numbers (the paper's ``N``); pass
    ``carrier='integers'`` for the integers, in which case subtraction is
    exact rather than truncated.
    """

    signature = Signature(
        predicates={"<": 2, "<=": 2, ">": 2, ">=": 2, "divides": 2},
        functions={"+": 2, "-": 2, "*": 2, "succ": 1},
    )
    has_decidable_theory = True

    def __init__(self, carrier: str = "naturals"):
        if carrier not in ("naturals", "integers"):
            raise ValueError("carrier must be 'naturals' or 'integers'")
        self._carrier = carrier
        self.name = "presburger_naturals" if carrier == "naturals" else "presburger_integers"

    @property
    def naturals(self) -> bool:
        """True iff the carrier is the natural numbers."""
        return self._carrier == "naturals"

    # -- carrier -------------------------------------------------------------

    def contains(self, element: Element) -> bool:
        if not isinstance(element, int) or isinstance(element, bool):
            return False
        return element >= 0 if self.naturals else True

    def enumerate_elements(self) -> Iterator[int]:
        if self.naturals:
            value = 0
            while True:
                yield value
                value += 1
        else:
            yield 0
            value = 1
            while True:
                yield value
                yield -value
                value += 1

    # -- evaluation ----------------------------------------------------------

    def eval_function(self, name: str, args: Sequence[Element]) -> Element:
        values = [int(a) for a in args]
        if name == "+":
            return values[0] + values[1]
        if name == "-":
            # Subtraction is exact (integer) subtraction, matching the
            # interpretation used by the quantifier-elimination procedure.
            return values[0] - values[1]
        if name == "*":
            return values[0] * values[1]
        if name == "succ":
            return values[0] + 1
        raise KeyError(f"unknown arithmetic function {name!r}")

    def eval_predicate(self, name: str, args: Sequence[Element]) -> bool:
        values = [int(a) for a in args]
        if name == "<":
            return values[0] < values[1]
        if name == "<=":
            return values[0] <= values[1]
        if name == ">":
            return values[0] > values[1]
        if name == ">=":
            return values[0] >= values[1]
        if name == "divides":
            if values[0] == 0:
                return values[1] == 0
            return values[1] % values[0] == 0
        raise KeyError(f"unknown arithmetic predicate {name!r}")

    # -- decision procedure ---------------------------------------------------

    def eliminate_quantifiers(self, formula: Formula) -> Formula:
        """Cooper quantifier elimination specialised to this domain's carrier."""
        return eliminate_presburger_quantifiers(formula, naturals=self.naturals)

    def decide(self, sentence: Formula) -> bool:
        """Decide a pure arithmetic sentence via quantifier elimination."""
        self._require_sentence(sentence)
        internal = _formula_to_internal(sentence, relativize_naturals=self.naturals)
        eliminated = _eliminate_all(internal)
        return _evaluate_internal(eliminated, {})
