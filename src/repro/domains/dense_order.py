"""The dense linear order ``(Q, <)`` of ordered rationals.

The paper's decidability results are stated for *any* domain with a decidable
theory; the ordered rationals are the classical contrast case to ``(N, <)``
from Section 2.1.  Density changes the safety landscape completely: "strictly
between two members" is finite over ``(N, <)`` but infinite over ``(Q, <)``,
and boundedness alone no longer certifies finiteness — a bounded open
interval still holds infinitely many rationals.  The matching safety decider
(:class:`repro.safety.relative_safety.DenseOrderRelativeSafety`) therefore
checks both boundedness *and* the absence of a full open interval in every
one-dimensional projection.

Decision procedure
------------------
The theory of dense linear orders without endpoints admits quantifier
elimination; the implementation uses the Ferrante–Rackoff test-point method
directly.  To evaluate ``∃x φ(x, p̄)`` it suffices to try finitely many
sample points: the constants mentioned in ``φ``, the current values of the
other free variables, midpoints between consecutive such values, and one
point below the minimum and above the maximum.  Truth of ``φ`` is invariant
on the intervals these points carve out (by quantifier elimination the body
is equivalent to a boolean combination of comparisons among ``x``, the
parameters, and the constants), so the finite sweep is exact.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterator, List, Sequence

from ..logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    walk_formulas,
)
from ..logic.terms import Apply, Const, Term, Var, walk_terms
from ..relational.state import Element
from .base import Domain, DomainError
from .signature import Signature

__all__ = ["DenseOrderDomain"]

_COMPARISONS = {"<", "<=", ">", ">="}


class DenseOrderDomain(Domain):
    """The ordered rationals ``(Q, <)`` — a dense order without endpoints."""

    name = "rationals_with_order"
    signature = Signature(predicates={"<": 2, "<=": 2, ">": 2, ">=": 2})
    has_decidable_theory = True

    # -- carrier -------------------------------------------------------------

    def contains(self, element: Element) -> bool:
        return isinstance(element, (int, Fraction)) and not isinstance(element, bool)

    def enumerate_elements(self) -> Iterator[Element]:
        """``0, 1, -1, 1/2, -1/2, 2, -2, ...`` — every rational exactly once.

        Positive rationals come from the Calkin–Wilf sequence (each appears
        exactly once, in lowest terms); negatives are interleaved.  Integral
        values are yielded as plain ``int`` so they compare and hash exactly
        like database elements.
        """
        yield 0
        q = Fraction(1)
        while True:
            value: Element = int(q) if q.denominator == 1 else q
            yield value
            yield -value
            q = 1 / (2 * (q.numerator // q.denominator) + 1 - q)

    # -- evaluation ----------------------------------------------------------

    def eval_function(self, name: str, args: Sequence[Element]) -> Element:
        raise KeyError(f"the dense-order domain has no function {name!r}")

    def eval_predicate(self, name: str, args: Sequence[Element]) -> bool:
        if name not in _COMPARISONS:
            raise KeyError(f"the dense-order domain has no predicate {name!r}")
        left, right = args
        if not self.contains(left) or not self.contains(right):
            raise DomainError(f"{args!r} are not rationals")
        if name == "<":
            return left < right
        if name == "<=":
            return left <= right
        if name == ">":
            return left > right
        return left >= right

    # -- decision procedure ---------------------------------------------------

    def decide(self, sentence: Formula) -> bool:
        """Decide a pure sentence of ``(Q, <)`` by Ferrante–Rackoff test points."""
        self._require_sentence(sentence)
        self._validate(sentence)
        return self._eval(sentence, {})

    def _validate(self, sentence: Formula) -> None:
        for sub in walk_formulas(sentence):
            terms: Sequence[Term] = ()
            if isinstance(sub, Atom):
                if sub.predicate not in _COMPARISONS:
                    raise DomainError(
                        f"predicate {sub.predicate!r} is not in the (Q, <) signature"
                    )
                terms = sub.args
            elif isinstance(sub, Equals):
                terms = (sub.left, sub.right)
            for term in terms:
                for node in walk_terms(term):
                    if isinstance(node, Apply):
                        raise DomainError("the (Q, <) signature has no functions")
                    if isinstance(node, Const) and not self.contains(node.value):
                        raise DomainError(
                            f"constant {node.value!r} is not a rational"
                        )

    def _eval(self, formula: Formula, env: Dict[str, Element]) -> bool:
        if isinstance(formula, Top):
            return True
        if isinstance(formula, Bottom):
            return False
        if isinstance(formula, Atom):
            return self.eval_predicate(
                formula.predicate, [self._value(t, env) for t in formula.args]
            )
        if isinstance(formula, Equals):
            return self._value(formula.left, env) == self._value(formula.right, env)
        if isinstance(formula, Not):
            return not self._eval(formula.body, env)
        if isinstance(formula, And):
            return all(self._eval(c, env) for c in formula.conjuncts)
        if isinstance(formula, Or):
            return any(self._eval(d, env) for d in formula.disjuncts)
        if isinstance(formula, Implies):
            return (not self._eval(formula.antecedent, env)) or self._eval(
                formula.consequent, env
            )
        if isinstance(formula, Iff):
            return self._eval(formula.left, env) == self._eval(formula.right, env)
        if isinstance(formula, Exists):
            inner = dict(env)
            for point in self._test_points(formula.body, formula.var, env):
                inner[formula.var] = point
                if self._eval(formula.body, inner):
                    return True
            return False
        if isinstance(formula, ForAll):
            return not self._eval(Exists(formula.var, Not(formula.body)), env)
        raise DomainError(f"cannot evaluate {formula!r} over (Q, <)")

    def _value(self, term: Term, env: Dict[str, Element]) -> Element:
        if isinstance(term, Const):
            return term.value
        if isinstance(term, Var):
            if term.name not in env:
                raise DomainError(f"unbound variable {term.name!r}")
            return env[term.name]
        raise DomainError("the (Q, <) signature has no functions")

    def _test_points(
        self, body: Formula, bound_var: str, env: Dict[str, Element]
    ) -> List[Element]:
        """Finitely many sample values that exhaust ``∃ bound_var . body``."""
        anchors = {
            node.value
            for sub in walk_formulas(body)
            if isinstance(sub, (Atom, Equals))
            for term in (sub.args if isinstance(sub, Atom) else (sub.left, sub.right))
            for node in walk_terms(term)
            if isinstance(node, Const)
        }
        anchors.update(
            value for name, value in env.items() if name != bound_var
        )
        if not anchors:
            return [0]
        ordered = sorted(anchors)
        points: List[Element] = [ordered[0] - 1]
        for low, high in zip(ordered, ordered[1:]):
            points.append(low)
            points.append(Fraction(low + high, 2))
        points.append(ordered[-1])
        points.append(ordered[-1] + 1)
        return points
