"""Declarative domain packs: a domain plus everything needed to validate it.

A :class:`DomainPack` bundles what :class:`~repro.domains.registry.DomainEntry`
already declares (factory, aliases, guard factories, capability flags) with
*evidence*: ground-truth sentences for the decision procedure, example
schemas/states/query corpora with known finiteness status, and random state
generators.  The conformance harness (:mod:`repro.conformance`) consumes the
evidence to run the whole validation suite — cross-substrate equivalence,
guard soundness, edge corpora, bench smoke — against any pack, so a
third-party domain gets the same scrutiny as the built-ins by declaring one
pack object.

All built-in domains are themselves declared here as packs;
``registry._register_builtins()`` delegates to :func:`register_builtin_packs`.
Corpora are built lazily (each pack holds factories, not data), so importing
the registry stays cheap and free of import cycles.
"""

from __future__ import annotations

import contextlib
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Iterator, Optional, Tuple

from ..logic.formulas import Formula
from .base import Domain

# NOTE: ``registry`` is imported lazily inside functions.  The two modules
# are mutually dependent — registry's ``_register_builtins()`` delegates to
# :func:`register_builtin_packs` here — and a module-level import in either
# direction would deadlock the other's initialisation.

__all__ = [
    "PackQuery",
    "PackSentence",
    "PackCorpus",
    "DomainPack",
    "register_pack",
    "unregister_pack",
    "temporary_pack",
    "get_pack",
    "available_packs",
    "register_builtin_packs",
]


# ---------------------------------------------------------------------------
# The declarative spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PackQuery:
    """A query with ground-truth finiteness on the corpus's canonical state.

    ``finite`` is ``True``/``False`` when the pack author asserts the answer
    is finite/infinite *in the canonical state* (the guard-soundness check
    verifies the safety decider agrees), or ``None`` when finiteness is not
    asserted (e.g. domains without a safety guard).
    """

    name: str
    query: Formula
    finite: Optional[bool] = None


@dataclass(frozen=True)
class PackSentence:
    """A pure domain sentence with known truth value."""

    name: str
    sentence: Formula
    truth: bool


@dataclass(frozen=True)
class PackCorpus:
    """A schema, a canonical state, queries, and a random-state generator.

    ``state_factory(rng, size)`` must build a schema-conformant state with
    roughly ``size`` stored rows (0 and 1 included — the harness uses those
    for the empty/one-element edge cases), deterministically from ``rng``.
    """

    name: str
    schema: object  # DatabaseSchema; typed loosely to keep imports lazy
    canonical_state: object  # DatabaseState
    queries: Tuple[PackQuery, ...]
    state_factory: Optional[Callable[[random.Random, int], object]] = None


@dataclass(frozen=True)
class DomainPack:
    """A domain declaration: registry entry fields plus validation evidence."""

    name: str
    factory: Callable[[], Domain]
    aliases: Tuple[str, ...] = ()
    summary: str = ""
    safety_factory: Optional[Callable[[Domain], object]] = None
    syntax_factory: Optional[Callable[[object], object]] = None
    finite_implies_domain_independent: bool = False
    supports_compiled_algebra: bool = False
    supports_vectorized: bool = False
    supports_parallel: bool = False
    ordered_carrier: bool = False
    finite_carrier: bool = False
    #: pytest marker slug: tests for this pack carry ``pack_<marker>``
    marker: str = ""
    #: builds the example corpora (lazily, so registration stays cheap)
    corpora_factory: Optional[Callable[[], Tuple[PackCorpus, ...]]] = None
    #: builds the ground-truth sentences for the decision procedure
    sentences_factory: Optional[Callable[[], Tuple[PackSentence, ...]]] = None
    #: rows in the bench-smoke state
    bench_size: int = 48
    #: wall-clock ceiling for the bench smoke, seconds
    bench_seconds: float = 20.0
    #: peak intermediate row ceiling for compiled plans in the bench smoke
    bench_row_limit: int = 250_000

    def to_entry(self):
        """The registry entry this pack declares."""
        from .registry import DomainEntry

        return DomainEntry(
            name=self.name,
            factory=self.factory,
            aliases=self.aliases,
            summary=self.summary,
            safety_factory=self.safety_factory,
            syntax_factory=self.syntax_factory,
            finite_implies_domain_independent=self.finite_implies_domain_independent,
            supports_compiled_algebra=self.supports_compiled_algebra,
            supports_vectorized=self.supports_vectorized,
            supports_parallel=self.supports_parallel,
            ordered_carrier=self.ordered_carrier,
            finite_carrier=self.finite_carrier,
        )

    def corpora(self) -> Tuple[PackCorpus, ...]:
        """The example corpora (built on demand)."""
        return self.corpora_factory() if self.corpora_factory is not None else ()

    def sentences(self) -> Tuple[PackSentence, ...]:
        """The ground-truth sentences (built on demand)."""
        return self.sentences_factory() if self.sentences_factory is not None else ()


# ---------------------------------------------------------------------------
# The pack registry (kept in lock-step with the domain registry)
# ---------------------------------------------------------------------------


_PACKS: Dict[str, DomainPack] = {}


def register_pack(pack: DomainPack) -> DomainPack:
    """Register a pack and its domain entry (atomically — see registry)."""
    from .registry import _normalise, register_domain

    canonical = _normalise(pack.name)
    if canonical in _PACKS:
        raise ValueError(f"pack {pack.name!r} is already registered")
    register_domain(pack.to_entry())  # validates names/aliases before writing
    _PACKS[canonical] = pack
    return pack


def unregister_pack(name: str) -> DomainPack:
    """Remove a pack (by name or alias) together with its domain entry."""
    from .registry import resolve_domain_name, unregister_domain

    canonical = resolve_domain_name(name)
    unregister_domain(canonical)
    return _PACKS.pop(canonical)


@contextlib.contextmanager
def temporary_pack(pack: DomainPack) -> Iterator[DomainPack]:
    """Register ``pack`` for the duration of a ``with`` block."""
    from .registry import _normalise

    register_pack(pack)
    try:
        yield pack
    finally:
        if _PACKS.get(_normalise(pack.name)) is pack:
            unregister_pack(pack.name)


def get_pack(name: str) -> DomainPack:
    """The pack registered under ``name`` (canonical name or alias)."""
    from .registry import UnknownDomainError, resolve_domain_name

    canonical = resolve_domain_name(name)
    try:
        return _PACKS[canonical]
    except KeyError:
        raise UnknownDomainError(
            f"domain {name!r} is registered without a pack declaration"
        ) from None


def available_packs() -> Tuple[str, ...]:
    """The canonical names of all registered packs, sorted."""
    return tuple(sorted(_PACKS))


# ---------------------------------------------------------------------------
# Lazy guard factories for the new packs
# ---------------------------------------------------------------------------


def _dense_order_safety(domain: Domain):
    from ..safety.relative_safety import DenseOrderRelativeSafety

    return DenseOrderRelativeSafety(domain)


def _finite_carrier_safety(domain: Domain):
    from ..safety.relative_safety import FiniteCarrierSafety

    return FiniteCarrierSafety(domain)


# ---------------------------------------------------------------------------
# Corpus builders for the built-in packs
# ---------------------------------------------------------------------------


def _unary_schema(relation: str):
    from ..relational.schema import DatabaseSchema, RelationSchema

    return DatabaseSchema((RelationSchema(relation, 1, ("value",)),))


def _unary_state(relation: str, values):
    from ..relational.state import DatabaseState

    return DatabaseState(_unary_schema(relation), {relation: [(v,) for v in values]})


def _family_corpus() -> Tuple[PackCorpus, ...]:
    from ..experiments.corpora import family_schema, family_state
    from ..logic.builders import atom, conj, eq, exists, neg, neq, var
    from ..relational.state import DatabaseState

    x, y, z = var("x"), var("y"), var("z")
    queries = (
        PackQuery("fathers-and-sons", atom("F", x, y), True),
        PackQuery(
            "grandfathers",
            exists("z", conj(atom("F", x, z), atom("F", z, y))),
            True,
        ),
        PackQuery(
            "more-than-one-son",
            exists("y", exists("z", conj(atom("F", x, y), atom("F", x, z), neq(y, z)))),
            True,
        ),
        PackQuery("not-a-father", neg(exists("y", atom("F", x, y))), False),
        PackQuery("anyone", eq(x, x), False),
    )

    def states(rng: random.Random, size: int):
        span = 3 * size + 2
        rows = [(rng.randrange(span), rng.randrange(span)) for _ in range(size)]
        return DatabaseState(family_schema(), {"F": rows})

    return (
        PackCorpus(
            name="family",
            schema=family_schema(),
            canonical_state=family_state(generations=2, sons_per_father=2),
            queries=queries,
            state_factory=states,
        ),
    )


def _numeric_states(lo: int = 0):
    from ..experiments.corpora import numeric_state

    def states(rng: random.Random, size: int):
        span = 4 * size + 4
        return numeric_state([rng.randrange(lo, span) for _ in range(size)])

    return states


def _ordered_corpus() -> Tuple[PackCorpus, ...]:
    from ..experiments.corpora import (
        numeric_schema,
        numeric_state,
        ordered_query_corpus,
        span_query_corpus,
        span_schema,
        span_state,
    )
    from ..relational.state import DatabaseState

    ordered_queries = tuple(
        PackQuery(name, query, finite) for name, query, finite in ordered_query_corpus()
    )
    span_queries = tuple(
        PackQuery(name, query, finite) for name, query, finite in span_query_corpus()
    )

    def span_states(rng: random.Random, size: int):
        span = 4 * size + 4
        n_spans = size // 3
        values = [rng.randrange(span) for _ in range(size - n_spans)]
        spans = [
            tuple(sorted((rng.randrange(span), rng.randrange(span))))
            for _ in range(n_spans)
        ]
        return DatabaseState(span_schema(), {
            "S": [(v,) for v in values],
            "R": spans,
        })

    return (
        PackCorpus(
            name="ordered-members",
            schema=numeric_schema(),
            canonical_state=numeric_state([2, 5, 9]),
            queries=ordered_queries,
            state_factory=_numeric_states(),
        ),
        PackCorpus(
            name="spans",
            schema=span_schema(),
            canonical_state=span_state([2, 4, 9], [(1, 5), (8, 12)]),
            queries=span_queries,
            state_factory=span_states,
        ),
    )


def _presburger_naturals_corpus() -> Tuple[PackCorpus, ...]:
    from ..experiments.corpora import numeric_schema, numeric_state, ordered_query_corpus

    queries = tuple(
        PackQuery(name, query, finite) for name, query, finite in ordered_query_corpus()
    )
    return (
        PackCorpus(
            name="ordered-members",
            schema=numeric_schema(),
            canonical_state=numeric_state([2, 5, 9]),
            queries=queries,
            state_factory=_numeric_states(),
        ),
    )


def _presburger_sentence_pack() -> Tuple[PackSentence, ...]:
    from ..experiments.corpora import presburger_sentences

    return tuple(
        PackSentence(name, sentence, truth)
        for name, sentence, truth in presburger_sentences()
    )


def _integers_corpus() -> Tuple[PackCorpus, ...]:
    from ..experiments.corpora import numeric_schema, numeric_state
    from ..logic.builders import atom, conj, eq, exists, neg, var

    x, y, z = var("x"), var("y"), var("z")
    queries = (
        PackQuery("members", atom("S", x), True),
        # Finite over N (Section 2.1), infinite over Z: no lower bound.
        PackQuery(
            "below-member", exists("y", conj(atom("S", y), atom("<", x, y))), False
        ),
        PackQuery(
            "between-members",
            exists("y", exists("z", conj(atom("S", y), atom("S", z),
                                         atom("<", y, x), atom("<", x, z)))),
            True,
        ),
        PackQuery(
            "pinched-member",
            exists("y", conj(atom("S", y), atom("<=", y, x), atom("<=", x, y))),
            True,
        ),
        PackQuery("equal-to-minus-three", eq(x, -3), True),
        PackQuery("not-a-member", neg(atom("S", x)), False),
    )

    def states(rng: random.Random, size: int):
        span = 2 * size + 2
        return numeric_state([rng.randrange(-span, span) for _ in range(size)])

    return (
        PackCorpus(
            name="integer-members",
            schema=numeric_schema(),
            canonical_state=numeric_state([-4, 0, 5]),
            queries=queries,
            state_factory=states,
        ),
    )


def _integers_sentences() -> Tuple[PackSentence, ...]:
    from ..logic.parser import parse_formula

    cases = (
        ("negatives-exist", "exists x. x < 0", True),
        ("zero-not-least", "forall x. (0 <= x)", False),
        ("unbounded-below", "forall x. exists y. y < x", True),
        ("even-seven", "exists x. x + x = 7", False),
    )
    return tuple(
        PackSentence(name, parse_formula(text), truth) for name, text, truth in cases
    )


def _successor_corpus() -> Tuple[PackCorpus, ...]:
    from ..experiments.corpora import numeric_schema, numeric_state, successor_query_corpus

    queries = tuple(
        PackQuery(name, query, finite)
        for name, query, finite in successor_query_corpus()
    )
    return (
        PackCorpus(
            name="successor-members",
            schema=numeric_schema(),
            canonical_state=numeric_state([3, 5, 9]),
            queries=queries,
            state_factory=_numeric_states(),
        ),
    )


def _successor_sentences() -> Tuple[PackSentence, ...]:
    from ..logic.builders import apply, eq, exists, forall, neg, var

    x, y = var("x"), var("y")
    return (
        PackSentence("every-number-has-a-successor",
                     forall("x", exists("y", eq(y, apply("succ", x)))), True),
        PackSentence("no-fixpoint", exists("x", eq(apply("succ", x), x)), False),
        PackSentence("zero-is-no-successor", exists("x", eq(apply("succ", x), 0)), False),
    )


def _trace_corpus() -> Tuple[PackCorpus, ...]:
    from ..logic.builders import atom, neg, var
    from ..relational.state import DatabaseState

    x = var("x")
    schema = _unary_schema("W")
    queries = (
        # No safety guard exists over T (Theorem 3.3), so finiteness is not
        # asserted; the corpus still drives the substrate-equivalence and
        # edge checks through the tree walker.
        PackQuery("stored-words", atom("W", x), None),
        PackQuery("not-stored", neg(atom("W", x)), None),
    )

    def states(rng: random.Random, size: int):
        words = ["1" * rng.randrange(1, 4) for _ in range(size)]
        return DatabaseState(schema, {"W": [(w,) for w in words]})

    return (
        PackCorpus(
            name="stored-trace-words",
            schema=schema,
            canonical_state=_unary_state("W", ["1", "11"]),
            queries=queries,
            state_factory=states,
        ),
    )


# ---------------------------------------------------------------------------
# Corpus builders for the four new packs
# ---------------------------------------------------------------------------


def _dense_order_corpus() -> Tuple[PackCorpus, ...]:
    from ..experiments.corpora import numeric_schema
    from ..logic.builders import atom, conj, eq, exists, forall, implies, neg, var
    from ..logic.terms import Const
    from ..relational.state import DatabaseState

    x, y, z = var("x"), var("y"), var("z")
    queries = (
        PackQuery("members", atom("S", x), True),
        # Finite over (N, <); infinite over (Q, <) by density — the key
        # contrast this pack exists to exercise.
        PackQuery(
            "strictly-between-members",
            exists("y", exists("z", conj(atom("S", y), atom("S", z),
                                         atom("<", y, x), atom("<", x, z)))),
            False,
        ),
        PackQuery(
            "pinched-member",
            exists("y", conj(atom("S", y), atom("<=", y, x), atom("<=", x, y))),
            True,
        ),
        PackQuery("equal-to-one-half", eq(x, Const(Fraction(1, 2))), True),
        PackQuery("not-a-member", neg(atom("S", x)), False),
        PackQuery(
            "below-member", exists("y", conj(atom("S", y), atom("<", x, y))), False
        ),
        PackQuery(
            "least-member",
            conj(atom("S", x), forall("y", implies(atom("S", y), atom("<=", x, y)))),
            True,
        ),
    )

    def states(rng: random.Random, size: int):
        values = []
        for _ in range(size):
            numerator = rng.randrange(-2 * size - 2, 2 * size + 2)
            denominator = rng.choice((1, 1, 2, 3))
            value = Fraction(numerator, denominator)
            values.append(int(value) if value.denominator == 1 else value)
        return DatabaseState(numeric_schema(), {"S": [(v,) for v in values]})

    return (
        PackCorpus(
            name="rational-members",
            schema=numeric_schema(),
            canonical_state=DatabaseState(
                numeric_schema(), {"S": [(0,), (1,), (Fraction(7, 2),)]}
            ),
            queries=queries,
            state_factory=states,
        ),
    )


def _dense_order_sentences() -> Tuple[PackSentence, ...]:
    from ..logic.builders import atom, conj, exists, forall, implies, neg, var

    x, y, z = var("x"), var("y"), var("z")
    between = exists("z", conj(atom("<", x, z), atom("<", z, y)))
    return (
        PackSentence(
            "dense", forall("x", forall("y", implies(atom("<", x, y), between))), True
        ),
        PackSentence("no-least-element", forall("x", exists("y", atom("<", y, x))), True),
        PackSentence(
            "discrete-somewhere",
            exists("x", exists("y", conj(atom("<", x, y), neg(between)))),
            False,
        ),
    )


def _difference_corpus() -> Tuple[PackCorpus, ...]:
    from ..experiments.corpora import numeric_schema, numeric_state
    from ..logic.builders import apply, atom, conj, eq, exists, neg, var

    x, y, z = var("x"), var("y"), var("z")
    queries = (
        PackQuery("members", atom("S", x), True),
        PackQuery(
            "within-two-of-member",
            exists("y", conj(atom("S", y),
                             atom("<=", apply("-", x, y), 2),
                             atom("<=", apply("-", y, x), 2))),
            True,
        ),
        PackQuery(
            "below-member", exists("y", conj(atom("S", y), atom("<", x, y))), False
        ),
        PackQuery(
            "above-member", exists("y", conj(atom("S", y), atom("<", y, x))), False
        ),
        PackQuery(
            "between-members",
            exists("y", exists("z", conj(atom("S", y), atom("S", z),
                                         atom("<", y, x), atom("<", x, z)))),
            True,
        ),
        PackQuery("equal-to-minus-three", eq(x, -3), True),
        PackQuery("not-a-member", neg(atom("S", x)), False),
    )

    def states(rng: random.Random, size: int):
        span = 2 * size + 2
        return numeric_state([rng.randrange(-span, span) for _ in range(size)])

    return (
        PackCorpus(
            name="difference-members",
            schema=numeric_schema(),
            canonical_state=numeric_state([-4, 0, 5]),
            queries=queries,
            state_factory=states,
        ),
    )


def _difference_sentences() -> Tuple[PackSentence, ...]:
    from ..logic.builders import apply, atom, conj, disj, eq, exists, forall, var

    x, y = var("x"), var("y")
    x_minus_y = apply("-", x, y)
    y_minus_x = apply("-", y, x)
    return (
        # Bellman–Ford fast path: satisfiable difference system (x = y + 1).
        PackSentence(
            "consistent-chain",
            exists("x", exists("y", conj(atom("<=", x_minus_y, 1),
                                         atom("<=", y_minus_x, -1)))),
            True,
        ),
        # Fast path: x - y <= 1 and y - x <= -2 sum to a -1 cycle.
        PackSentence(
            "negative-cycle",
            exists("x", exists("y", conj(atom("<=", x_minus_y, 1),
                                         atom("<=", y_minus_x, -2)))),
            False,
        ),
        # Fast path, single-variable constraints through the virtual zero node.
        PackSentence("negatives-exist", exists("x", atom("<", x, 0)), True),
        # Outside the fragment (disjunction): exercises the Cooper fallback.
        PackSentence(
            "integer-parity",
            forall("x", exists("y", disj(eq(x, apply("+", y, y)),
                                         eq(x, apply("+", apply("+", y, y), 1))))),
            True,
        ),
    )


def _cyclic_corpus() -> Tuple[PackCorpus, ...]:
    from ..experiments.corpora import numeric_schema, numeric_state
    from ..logic.builders import apply, atom, conj, eq, exists, neg, var

    x, y = var("x"), var("y")
    queries = (
        PackQuery("members", atom("S", x), True),
        # Finite *because the carrier is* — the canonical infinite queries
        # everywhere else are finite over Z/n.
        PackQuery("non-members", neg(atom("S", x)), True),
        PackQuery("everything", eq(x, x), True),
        PackQuery(
            "successor-of-member",
            exists("y", conj(atom("S", y), eq(x, apply("succ", y)))),
            True,
        ),
        PackQuery(
            "predecessor-of-member",
            exists("y", conj(atom("S", y), eq(apply("succ", x), y))),
            True,
        ),
    )

    def states(rng: random.Random, size: int):
        return numeric_state([rng.randrange(12) for _ in range(size)])

    return (
        PackCorpus(
            name="cyclic-members",
            schema=numeric_schema(),
            canonical_state=numeric_state([0, 3, 7]),
            queries=queries,
            state_factory=states,
        ),
    )


def _cyclic_sentences() -> Tuple[PackSentence, ...]:
    from ..logic.builders import apply, eq, exists, forall, neg, var

    x = var("x")
    twelve_around = x
    for _ in range(12):
        twelve_around = apply("succ", twelve_around)
    return (
        PackSentence("no-fixpoint", exists("x", eq(apply("succ", x), x)), False),
        PackSentence(
            "rotation-moves-everything", forall("x", neg(eq(apply("succ", x), x))), True
        ),
        PackSentence("order-twelve", forall("x", eq(twelve_around, x)), True),
        PackSentence(
            "pred-inverts-succ",
            forall("x", eq(apply("pred", apply("succ", x)), x)),
            True,
        ),
    )


def _shortlex_corpus() -> Tuple[PackCorpus, ...]:
    from ..logic.builders import atom, conj, eq, exists, forall, implies, neg, var
    from ..logic.terms import Const

    x, y = var("x"), var("y")
    schema = _unary_schema("W")
    queries = (
        PackQuery("members", atom("W", x), True),
        # Only finitely many words precede any word in shortlex order — the
        # (N, <) safety profile on a non-numeric carrier.
        PackQuery(
            "below-member", exists("y", conj(atom("W", y), atom("<", x, y))), True
        ),
        PackQuery(
            "above-member", exists("y", conj(atom("W", y), atom("<", y, x))), False
        ),
        PackQuery("not-a-member", neg(atom("W", x)), False),
        PackQuery("equal-to-ab", eq(x, Const("ab")), True),
        PackQuery(
            "least-member",
            conj(atom("W", x), forall("y", implies(atom("W", y), atom("<=", x, y)))),
            True,
        ),
    )

    def states(rng: random.Random, size: int):
        words = [
            "".join(rng.choice("ab") for _ in range(rng.randrange(5)))
            for _ in range(size)
        ]
        return _unary_state("W", words)

    return (
        PackCorpus(
            name="shortlex-words",
            schema=schema,
            canonical_state=_unary_state("W", ["", "ab", "ba"]),
            queries=queries,
            state_factory=states,
        ),
    )


def _shortlex_sentences() -> Tuple[PackSentence, ...]:
    from ..logic.builders import atom, conj, exists, forall, implies, var

    x, y, z = var("x"), var("y"), var("z")
    between = exists("z", conj(atom("<", x, z), atom("<", z, y)))
    return (
        PackSentence("no-greatest-word", forall("x", exists("y", atom("<", x, y))), True),
        PackSentence("has-least-word", exists("x", forall("y", atom("<=", x, y))), True),
        PackSentence(
            "dense-order",
            forall("x", forall("y", implies(atom("<", x, y), between))),
            False,
        ),
    )


# ---------------------------------------------------------------------------
# The built-in packs
# ---------------------------------------------------------------------------


def _builtin_packs() -> Tuple[DomainPack, ...]:
    from .registry import (
        _active_domain_syntax,
        _equality_safety,
        _extended_active_domain_syntax,
        _finitization_syntax,
        _finitization_syntax_integers,
        _ordered_safety,
        _successor_safety,
    )
    from .cyclic import CyclicSuccessorDomain
    from .dense_order import DenseOrderDomain
    from .difference import IntegerDifferenceDomain
    from .equality import EqualityDomain
    from .lex_strings import ShortlexStringDomain
    from .nat_order import NaturalOrderDomain
    from .presburger import PresburgerDomain
    from .reach_traces import ReachTracesDomain
    from .successor import SuccessorDomain
    from .traces_domain import TraceDomain

    return (
        DomainPack(
            name="equality",
            factory=EqualityDomain,
            aliases=("eq", "pure-equality"),
            summary="a countably infinite set with equality only (Section 2)",
            safety_factory=_equality_safety,
            syntax_factory=_active_domain_syntax,
            finite_implies_domain_independent=True,
            supports_compiled_algebra=True,
            supports_vectorized=True,
            supports_parallel=True,
            marker="equality",
            corpora_factory=_family_corpus,
        ),
        DomainPack(
            name="naturals_with_order",
            factory=NaturalOrderDomain,
            aliases=("nat<", "nat_order", "order"),
            summary="the ordered natural numbers (N, <) (Section 2.1)",
            safety_factory=_ordered_safety,
            syntax_factory=_finitization_syntax,
            supports_compiled_algebra=True,
            supports_vectorized=True,
            supports_parallel=True,
            ordered_carrier=True,
            marker="nat_order",
            corpora_factory=_ordered_corpus,
            sentences_factory=_presburger_sentence_pack,
        ),
        DomainPack(
            name="presburger_naturals",
            factory=PresburgerDomain,
            aliases=("presburger", "presburger_arithmetic"),
            summary="Presburger arithmetic over N (a decidable extension of (N, <))",
            safety_factory=_ordered_safety,
            syntax_factory=_finitization_syntax,
            supports_compiled_algebra=True,
            supports_vectorized=True,
            supports_parallel=True,
            ordered_carrier=True,
            marker="presburger",
            corpora_factory=_presburger_naturals_corpus,
            sentences_factory=_presburger_sentence_pack,
        ),
        DomainPack(
            name="presburger_integers",
            factory=lambda: PresburgerDomain(carrier="integers"),
            aliases=("integers",),
            summary="Presburger arithmetic over Z",
            safety_factory=_ordered_safety,
            syntax_factory=_finitization_syntax_integers,
            supports_compiled_algebra=True,
            supports_vectorized=True,
            supports_parallel=True,
            ordered_carrier=True,
            marker="integers",
            corpora_factory=_integers_corpus,
            sentences_factory=_integers_sentences,
        ),
        DomainPack(
            name="naturals_with_successor",
            factory=SuccessorDomain,
            aliases=("succ", "successor", "nat'"),
            summary="the natural numbers with successor (N, ') (Section 2.2)",
            safety_factory=_successor_safety,
            syntax_factory=_extended_active_domain_syntax,
            supports_vectorized=True,
            marker="successor",
            corpora_factory=_successor_corpus,
            sentences_factory=_successor_sentences,
        ),
        DomainPack(
            name="traces",
            factory=TraceDomain,
            aliases=("trace", "t"),
            summary="the trace domain T (Section 3): decidable theory, but no "
            "effective syntax (Thm 3.1) and undecidable relative safety (Thm 3.3)",
            marker="traces",
            corpora_factory=_trace_corpus,
        ),
        DomainPack(
            name="reach_traces",
            factory=ReachTracesDomain,
            aliases=("reach",),
            summary="the trace domain with the extended Reach signature (Appendix A)",
            marker="reach",
            corpora_factory=_trace_corpus,
        ),
        # -- the four new packs ------------------------------------------------
        DomainPack(
            name="rationals_with_order",
            factory=DenseOrderDomain,
            aliases=("qlinear", "dlo", "q<", "dense_order"),
            summary="the dense linear order (Q, <): bounded no longer implies "
            "finite, so safety needs the projection-finiteness decider",
            safety_factory=_dense_order_safety,
            syntax_factory=_active_domain_syntax,
            supports_compiled_algebra=True,
            marker="qlinear",
            corpora_factory=_dense_order_corpus,
            sentences_factory=_dense_order_sentences,
        ),
        DomainPack(
            name="integer_differences",
            factory=IntegerDifferenceDomain,
            aliases=("difference", "zdiff", "difference_constraints"),
            summary="integer difference constraints: (Z, <, -) with a "
            "Bellman-Ford fast path under the Cooper decision procedure",
            safety_factory=_ordered_safety,
            syntax_factory=_finitization_syntax_integers,
            supports_compiled_algebra=True,
            supports_vectorized=True,
            supports_parallel=True,
            ordered_carrier=True,
            marker="zdiff",
            corpora_factory=_difference_corpus,
            sentences_factory=_difference_sentences,
        ),
        DomainPack(
            name="cyclic_successor",
            factory=CyclicSuccessorDomain,
            aliases=("cyclic", "zmod", "z12"),
            summary="the finite cyclic successor structure Z/12: every query "
            "is finite because the carrier is",
            safety_factory=_finite_carrier_safety,
            supports_compiled_algebra=True,
            supports_vectorized=True,
            finite_carrier=True,
            marker="cyclic",
            corpora_factory=_cyclic_corpus,
            sentences_factory=_cyclic_sentences,
        ),
        DomainPack(
            name="shortlex_strings",
            factory=ShortlexStringDomain,
            aliases=("shortlex", "lex", "words"),
            summary="words under the shortlex order — order-isomorphic to "
            "(N, <), giving its safety profile on a string carrier",
            safety_factory=_ordered_safety,
            syntax_factory=_finitization_syntax,
            supports_compiled_algebra=True,
            supports_vectorized=True,
            marker="shortlex",
            corpora_factory=_shortlex_corpus,
            sentences_factory=_shortlex_sentences,
        ),
    )


def register_builtin_packs() -> None:
    """Register every built-in pack (idempotent per interpreter)."""
    from .registry import _normalise

    for pack in _builtin_packs():
        if _normalise(pack.name) not in _PACKS:
            register_pack(pack)
