"""The pure-equality domain.

"The simplest possible example to start with is an infinite domain with the
only domain relation of equality" (Section 2).  Over this domain every finite
query is domain-independent, the relative safety problem is decidable, and an
effective syntax exists (restrict all answers to the active domain).

The carrier is the set of natural numbers by default (any countably infinite
set works); the only relation is equality, which the logic provides anyway, so
the signature is empty.

Decision procedure
------------------
The theory of an infinite set with equality admits quantifier elimination in
the expanded language with the counting sentences "there exist at least *k*
elements" — all of which are true here.  Equivalently, a sentence of
quantifier rank *q* is true in one infinite set iff it is true in every set
with at least *q* elements, so the decision procedure evaluates the sentence
over a finite universe of ``q + |constants|`` fresh elements plus the
constants mentioned.  This small-model argument is classical and is also the
engine behind the relative-safety decider for this domain.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..logic.analysis import constants_of, quantifier_depth
from ..logic.formulas import Formula
from ..relational.state import Element
from .base import Domain, DomainError
from .signature import Signature

__all__ = ["EqualityDomain"]


class EqualityDomain(Domain):
    """A countably infinite domain whose only relation is equality."""

    name = "equality"
    signature = Signature()
    has_decidable_theory = True

    def __init__(self, carrier: str = "naturals"):
        if carrier not in ("naturals", "strings"):
            raise ValueError("carrier must be 'naturals' or 'strings'")
        self._carrier = carrier

    # -- carrier -------------------------------------------------------------

    def contains(self, element: Element) -> bool:
        if self._carrier == "naturals":
            return isinstance(element, int) and element >= 0
        return isinstance(element, str)

    def enumerate_elements(self) -> Iterator[Element]:
        if self._carrier == "naturals":
            return itertools.count(0)
        return self._enumerate_strings()

    @staticmethod
    def _enumerate_strings() -> Iterator[str]:
        alphabet = "ab"
        yield ""
        for length in itertools.count(1):
            for letters in itertools.product(alphabet, repeat=length):
                yield "".join(letters)

    # -- evaluation ----------------------------------------------------------

    def eval_function(self, name: str, args: Sequence[Element]) -> Element:
        raise KeyError(f"the equality domain has no function {name!r}")

    def eval_predicate(self, name: str, args: Sequence[Element]) -> bool:
        raise KeyError(f"the equality domain has no predicate {name!r}")

    # -- decision procedure ---------------------------------------------------

    def fresh_elements(self, count: int, avoid: Sequence[Element] = ()) -> list:
        """``count`` carrier elements distinct from everything in ``avoid``."""
        avoid_set = set(avoid)
        fresh = []
        for element in self.enumerate_elements():
            if element not in avoid_set:
                fresh.append(element)
                if len(fresh) == count:
                    break
        return fresh

    def decide(self, sentence: Formula) -> bool:
        """Decide a pure-equality sentence via the small-model property."""
        self._require_sentence(sentence)
        constants = [c.value for c in constants_of(sentence)]
        for value in constants:
            if not self.contains(value):
                raise DomainError(f"constant {value!r} is not a domain element")
        rank = quantifier_depth(sentence)
        universe = list(dict.fromkeys(constants))
        universe += self.fresh_elements(rank + 1, avoid=universe)
        return self.check_bounded(sentence, universe=universe)
