"""The finite cyclic successor structure ``Z/n`` with ``succ`` and ``pred``.

The paper's domains are infinite, and all the subtlety of safety comes from
that infinitude.  The cyclic successor structure is the degenerate contrast
case: the carrier is *finite*, so every query is finite — even ``¬S(x)`` and
``x = x``, the canonical infinite queries over every other domain — and the
"decision procedure" is plain model checking over the carrier.  Registering
it as a pack (with ``finite_carrier=True``) exercises the planner's
full-carrier evaluation path and the trivial safety guard
(:class:`repro.safety.relative_safety.FiniteCarrierSafety`).

Note that finiteness of every answer does *not* make finite queries
domain-independent: ``¬S(x)`` depends on the carrier, not just on the state.
The planner handles this by evaluating over the whole (finite) carrier,
which :meth:`CyclicSuccessorDomain.carrier_elements` supplies.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from ..logic.formulas import Atom, Equals, Formula, walk_formulas
from ..logic.terms import Apply, Const, walk_terms
from ..relational.state import Element
from .base import Domain, DomainError
from .signature import Signature

__all__ = ["CyclicSuccessorDomain"]


class CyclicSuccessorDomain(Domain):
    """The integers modulo ``n`` with the rotation ``succ`` and its inverse."""

    name = "cyclic_successor"
    signature = Signature(functions={"succ": 1, "pred": 1})
    has_decidable_theory = True

    def __init__(self, modulus: int = 12):
        if modulus < 1:
            raise ValueError("the modulus must be a positive integer")
        self._modulus = modulus

    @property
    def modulus(self) -> int:
        """The size ``n`` of the carrier ``{0, ..., n - 1}``."""
        return self._modulus

    # -- carrier -------------------------------------------------------------

    def contains(self, element: Element) -> bool:
        return (
            isinstance(element, int)
            and not isinstance(element, bool)
            and 0 <= element < self._modulus
        )

    def enumerate_elements(self) -> Iterator[Element]:
        return iter(range(self._modulus))

    def carrier_elements(self) -> Tuple[Element, ...]:
        return tuple(range(self._modulus))

    # -- evaluation ----------------------------------------------------------

    def eval_function(self, name: str, args: Sequence[Element]) -> Element:
        (value,) = args
        if not self.contains(value):
            raise DomainError(f"{value!r} is not an element of Z/{self._modulus}")
        if name == "succ":
            return (value + 1) % self._modulus
        if name == "pred":
            return (value - 1) % self._modulus
        raise KeyError(f"the cyclic-successor domain has no function {name!r}")

    def eval_predicate(self, name: str, args: Sequence[Element]) -> bool:
        raise KeyError(f"the cyclic-successor domain has no predicate {name!r}")

    # -- decision procedure ---------------------------------------------------

    def decide(self, sentence: Formula) -> bool:
        """Decide a pure sentence by model checking the whole finite carrier.

        Unlike :meth:`Domain.check_bounded` over a *sample* of an infinite
        carrier, quantification over all of ``Z/n`` is the exact semantics.
        """
        self._require_sentence(sentence)
        self._validate(sentence)
        return self.check_bounded(sentence, universe=self.carrier_elements())

    def _validate(self, sentence: Formula) -> None:
        for sub in walk_formulas(sentence):
            if isinstance(sub, Atom):
                raise DomainError(
                    f"predicate {sub.predicate!r} is not in the Z/{self._modulus} "
                    "signature (it has only succ, pred and equality)"
                )
            if isinstance(sub, Equals):
                for term in (sub.left, sub.right):
                    for node in walk_terms(term):
                        if isinstance(node, Apply) and node.function not in ("succ", "pred"):
                            raise DomainError(
                                f"function {node.function!r} is not in the "
                                f"Z/{self._modulus} signature"
                            )
                        if isinstance(node, Const) and not self.contains(node.value):
                            raise DomainError(
                                f"constant {node.value!r} is not an element of "
                                f"Z/{self._modulus}"
                            )
