"""The domain **T** of traces (Section 3).

The carrier is the set of all words over the alphabet ``{'1', '&', '*', '|'}``
(the paper's ``{1, &, *, ⋆}``).  The signature contains the single ternary
predicate ``P`` — ``P(M, w, p)`` holds iff ``M`` is a machine word, ``w`` an
input word, ``p`` a trace word, and ``p`` is a trace of ``M`` in ``w`` — plus
constants for every word and equality.

The domain is recursive (Fact A.1): :meth:`TraceDomain.eval_predicate` decides
``P`` by bounded simulation.  Its first-order theory is decidable
(Corollary A.4); the decision procedure lives in
:mod:`repro.domains.reach_traces` and is exposed here through
:meth:`TraceDomain.decide`.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..logic.formulas import Formula
from ..relational.state import Element
from ..turing.traces import classify_word, holds_P, input_of_trace, machine_of_trace
from ..turing.words import DOMAIN_ALPHABET, WordSort
from .base import Domain, DomainError
from .signature import Signature

__all__ = ["TraceDomain"]


class TraceDomain(Domain):
    """The recursive domain **T** with the ternary trace predicate ``P``."""

    name = "traces"
    signature = Signature(predicates={"P": 3}, functions={})
    has_decidable_theory = True

    # -- carrier -------------------------------------------------------------

    def contains(self, element: Element) -> bool:
        return isinstance(element, str) and all(c in DOMAIN_ALPHABET for c in element)

    def enumerate_elements(self) -> Iterator[str]:
        yield ""
        for length in itertools.count(1):
            for letters in itertools.product(DOMAIN_ALPHABET, repeat=length):
                yield "".join(letters)

    def classify(self, element: str) -> WordSort:
        """The sort (machine / input / trace / other) of a domain word."""
        if not self.contains(element):
            raise DomainError(f"{element!r} is not a word of the trace domain")
        return classify_word(element)

    # -- evaluation ----------------------------------------------------------

    def eval_function(self, name: str, args: Sequence[Element]) -> Element:
        value = str(args[0])
        if name == "w":
            return input_of_trace(value)
        if name == "m":
            return machine_of_trace(value)
        raise KeyError(f"unknown trace-domain function {name!r}")

    def eval_predicate(self, name: str, args: Sequence[Element]) -> bool:
        if name == "P":
            machine_word, input_word, trace_word = (str(a) for a in args)
            return holds_P(machine_word, input_word, trace_word)
        raise KeyError(f"unknown trace-domain predicate {name!r}")

    # -- decision procedure ---------------------------------------------------

    def decide(self, sentence: Formula) -> bool:
        """Decide a pure sentence of the Theory of Traces (Corollary A.4).

        The sentence is translated into the Reach Theory of Traces (the
        definitional extension of the Appendix) whose quantifier elimination
        then decides it.
        """
        from .reach_traces import ReachTracesDomain

        self._require_sentence(sentence)
        return ReachTracesDomain().decide(sentence)
