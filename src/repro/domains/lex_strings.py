"""Strings under the shortlex (length-lexicographic) order.

Words over a finite alphabet, compared first by length and then
lexicographically, form a discrete linear order with a least element and no
greatest element — order-isomorphic to ``(N, <)``.  The isomorphism is the
*rank*: the position of a word in the shortlex enumeration
``"", "a", "b", "aa", ...``.  The domain decides its sentences by translating
every string constant to its rank and delegating to the Presburger decision
procedure over the naturals; since rank is an order isomorphism and the
signature is pure order, truth is preserved exactly.

This gives a non-numeric carrier with the *safety profile* of ``(N, <)``
(Section 2.1): "shortlex-below a stored word" is finite (only finitely many
words precede any word), while "shortlex-above" is infinite, and the
``(N, <)`` relative-safety guard applies verbatim through the isomorphism.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    walk_formulas,
)
from ..logic.terms import Apply, Const, Term, Var, walk_terms
from ..relational.state import Element
from .base import Domain, DomainError
from .presburger import PresburgerDomain
from .signature import Signature

__all__ = ["ShortlexStringDomain"]

_COMPARISONS = {"<", "<=", ">", ">="}


class ShortlexStringDomain(Domain):
    """Words over a finite alphabet, ordered by length then lexicographically."""

    name = "shortlex_strings"
    signature = Signature(predicates={"<": 2, "<=": 2, ">": 2, ">=": 2})
    has_decidable_theory = True

    def __init__(self, alphabet: str = "ab"):
        if len(alphabet) < 2 or len(set(alphabet)) != len(alphabet):
            raise ValueError("the alphabet must have at least two distinct letters")
        self._alphabet = "".join(sorted(alphabet))
        self._index = {letter: i for i, letter in enumerate(self._alphabet)}
        self._presburger = PresburgerDomain(carrier="naturals")

    @property
    def alphabet(self) -> str:
        return self._alphabet

    # -- carrier -------------------------------------------------------------

    def contains(self, element: Element) -> bool:
        return isinstance(element, str) and all(c in self._index for c in element)

    def enumerate_elements(self) -> Iterator[Element]:
        """All words in shortlex order: ``"", "a", "b", "aa", "ab", ...``."""
        yield ""
        for length in itertools.count(1):
            for letters in itertools.product(self._alphabet, repeat=length):
                yield "".join(letters)

    # -- the order isomorphism with (N, <) ------------------------------------

    def rank(self, word: str) -> int:
        """The position of ``word`` in the shortlex enumeration."""
        if not self.contains(word):
            raise DomainError(f"{word!r} is not a word over {self._alphabet!r}")
        k = len(self._alphabet)
        # Words strictly shorter than len(word): k^0 + k^1 + ... + k^(L-1).
        shorter = (k ** len(word) - 1) // (k - 1)
        index = 0
        for letter in word:
            index = index * k + self._index[letter]
        return shorter + index

    def unrank(self, rank: int) -> str:
        """The word at position ``rank`` (the inverse of :meth:`rank`)."""
        if rank < 0:
            raise DomainError("ranks are natural numbers")
        k = len(self._alphabet)
        length = 0
        while (k ** (length + 1) - 1) // (k - 1) <= rank:
            length += 1
        index = rank - (k ** length - 1) // (k - 1)
        letters = []
        for _ in range(length):
            index, digit = divmod(index, k)
            letters.append(self._alphabet[digit])
        return "".join(reversed(letters))

    # -- evaluation ----------------------------------------------------------

    def eval_function(self, name: str, args: Sequence[Element]) -> Element:
        raise KeyError(f"the shortlex domain has no function {name!r}")

    def eval_predicate(self, name: str, args: Sequence[Element]) -> bool:
        if name not in _COMPARISONS:
            raise KeyError(f"the shortlex domain has no predicate {name!r}")
        left, right = args
        for value in (left, right):
            if not self.contains(value):
                raise DomainError(f"{value!r} is not a word over {self._alphabet!r}")
        lkey = (len(left), [self._index[c] for c in left])
        rkey = (len(right), [self._index[c] for c in right])
        if name == "<":
            return lkey < rkey
        if name == "<=":
            return lkey <= rkey
        if name == ">":
            return lkey > rkey
        return lkey >= rkey

    # -- decision procedure ---------------------------------------------------

    def decide(self, sentence: Formula) -> bool:
        """Decide a pure order sentence through the rank isomorphism.

        Every string constant is replaced by its rank and the resulting
        sentence is handed to Cooper's procedure over ``(N, <)``; the rank
        map is an order isomorphism, so the translation preserves truth.
        """
        self._require_sentence(sentence)
        self._validate(sentence)
        return self._presburger.decide(self._translate(sentence))

    def _validate(self, sentence: Formula) -> None:
        for sub in walk_formulas(sentence):
            terms: Sequence[Term] = ()
            if isinstance(sub, Atom):
                if sub.predicate not in _COMPARISONS:
                    raise DomainError(
                        f"predicate {sub.predicate!r} is not in the shortlex signature"
                    )
                terms = sub.args
            elif isinstance(sub, Equals):
                terms = (sub.left, sub.right)
            for term in terms:
                for node in walk_terms(term):
                    if isinstance(node, Apply):
                        raise DomainError("the shortlex signature has no functions")
                    if isinstance(node, Const) and not self.contains(node.value):
                        raise DomainError(
                            f"constant {node.value!r} is not a word over "
                            f"{self._alphabet!r}"
                        )

    def _translate(self, formula: Formula) -> Formula:
        if isinstance(formula, (Top, Bottom)):
            return formula
        if isinstance(formula, Atom):
            return Atom(formula.predicate, tuple(self._translate_term(t) for t in formula.args))
        if isinstance(formula, Equals):
            return Equals(self._translate_term(formula.left), self._translate_term(formula.right))
        if isinstance(formula, Not):
            return Not(self._translate(formula.body))
        if isinstance(formula, And):
            return And(tuple(self._translate(c) for c in formula.conjuncts))
        if isinstance(formula, Or):
            return Or(tuple(self._translate(d) for d in formula.disjuncts))
        if isinstance(formula, Implies):
            return Implies(self._translate(formula.antecedent), self._translate(formula.consequent))
        if isinstance(formula, Iff):
            return Iff(self._translate(formula.left), self._translate(formula.right))
        if isinstance(formula, Exists):
            return Exists(formula.var, self._translate(formula.body))
        if isinstance(formula, ForAll):
            return ForAll(formula.var, self._translate(formula.body))
        raise DomainError(f"cannot translate {formula!r}")

    def _translate_term(self, term: Term) -> Term:
        if isinstance(term, Const):
            return Const(self.rank(term.value))
        if isinstance(term, Var):
            return term
        raise DomainError("the shortlex signature has no functions")
