"""The domain ``(N, ')`` — unordered natural numbers with the successor function.

Section 2.2 of the paper uses this domain to make a technical point: a
recursive syntax for finite queries does not require a discrete order.  The
order is not definable from the successor alone, so the finitization trick of
Theorem 2.2 is unavailable; instead the paper follows Mal'cev's quantifier
elimination:

    "Observe that any formula is equivalent to a disjunction of the formulas
    of the form (∃x)Φ, or their negations, where Φ is a conjunction of
    formulas of the forms x = y⁽ⁿ⁾, x⁽ⁿ⁾ = y, x ≠ y⁽ⁿ⁾, x⁽ⁿ⁾ ≠ y."

The elimination step implemented here follows the paper exactly:

* if Φ contains inequalities only, ``(∃x)Φ`` reduces to the x-free residue
  (a fresh natural number avoiding finitely many excluded values always
  exists);
* if Φ contains an equality ``x = y⁽ⁿ⁾`` the quantifier is eliminated by
  substitution;
* if the equality is of the form ``x = y⁽⁻ⁿ⁾`` the substitution additionally
  introduces the conjunction ``y ≠ 0 ∧ ... ∧ y ≠ n-1``.

Two consequences proved in the paper are exposed programmatically: relative
safety is decidable (Theorem 2.6), and the constants introduced by the
elimination stay within distance ``2^q`` of the original constants, where
``q`` is the quantifier depth — which yields the *extended active domain*
effective syntax of Theorem 2.7 (see
:func:`extended_active_domain_elements`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..logic.builders import conj, disj
from ..logic.formulas import (
    BOTTOM,
    TOP,
    Atom,
    Bottom,
    Equals,
    Formula,
    Not,
    Top,
)
from ..logic.terms import Apply, Const, Term, Var
from ..logic.transform import eliminate_quantifiers
from ..relational.state import Element
from .base import Domain, DomainError
from .signature import Signature

__all__ = [
    "SuccessorDomain",
    "SuccTerm",
    "parse_successor_term",
    "successor_term_to_logic",
    "eliminate_successor_quantifiers",
    "extended_active_domain_radius",
    "extended_active_domain_elements",
]


@dataclass(frozen=True)
class SuccTerm:
    """A normalised successor term: either ``n`` (a constant) or ``x⁽ⁿ⁾``.

    ``base`` is ``None`` for constants; ``shift`` is the constant value or the
    number of successor applications.  Shifts may be temporarily negative
    inside the elimination procedure and are rebalanced before emitting
    formulas.
    """

    base: Optional[str]
    shift: int

    def is_constant(self) -> bool:
        """True iff the term denotes a fixed natural number."""
        return self.base is None

    def shifted(self, offset: int) -> "SuccTerm":
        """The term with ``offset`` added to its shift."""
        return SuccTerm(self.base, self.shift + offset)


def parse_successor_term(term: Term) -> SuccTerm:
    """Normalise a logic term of the successor language."""
    if isinstance(term, Var):
        return SuccTerm(term.name, 0)
    if isinstance(term, Const):
        if not isinstance(term.value, int) or term.value < 0:
            raise DomainError(f"constant {term.value!r} is not a natural number")
        return SuccTerm(None, term.value)
    if isinstance(term, Apply):
        if term.function == "succ" and len(term.args) == 1:
            inner = parse_successor_term(term.args[0])
            return inner.shifted(1)
        raise DomainError(f"function {term.function!r} is not in the successor signature")
    raise TypeError(f"not a term: {term!r}")


def successor_term_to_logic(term: SuccTerm) -> Term:
    """Convert a normalised successor term back to the logic AST."""
    if term.base is None:
        if term.shift < 0:
            raise DomainError("negative constant cannot be expressed in (N, ')")
        return Const(term.shift)
    result: Term = Var(term.base)
    if term.shift < 0:
        raise DomainError("negative shift must be rebalanced before conversion")
    for _ in range(term.shift):
        result = Apply("succ", (result,))
    return result


def _rebalance(left: SuccTerm, right: SuccTerm) -> Optional[Tuple[SuccTerm, SuccTerm]]:
    """Shift both sides of an equality so that no shift is negative.

    Returns ``None`` if the literal is unsatisfiable for trivial reasons (a
    constant would have to be negative).
    """
    offset = 0
    if left.base is not None and left.shift < 0:
        offset = max(offset, -left.shift)
    if right.base is not None and right.shift < 0:
        offset = max(offset, -right.shift)
    left = left.shifted(offset)
    right = right.shifted(offset)
    # Constants may now be negative only if they started negative, which is
    # impossible for well-formed inputs; a negative constant paired with a
    # variable term means the equality can still be rebalanced further.
    extra = 0
    if left.base is None and left.shift < 0:
        extra = max(extra, -left.shift)
    if right.base is None and right.shift < 0:
        extra = max(extra, -right.shift)
    if extra:
        left = left.shifted(extra)
        right = right.shifted(extra)
    if (left.base is None and left.shift < 0) or (right.base is None and right.shift < 0):
        return None
    return left, right


@dataclass(frozen=True)
class _Literal:
    """An (in)equality between normalised successor terms."""

    left: SuccTerm
    right: SuccTerm
    positive: bool

    def mentions(self, var: str) -> bool:
        return self.left.base == var or self.right.base == var

    def to_formula(self) -> Formula:
        rebalanced = _rebalance(self.left, self.right)
        if rebalanced is None:
            return BOTTOM if self.positive else TOP
        left, right = rebalanced
        equality = Equals(successor_term_to_logic(left), successor_term_to_logic(right))
        return equality if self.positive else Not(equality)


def _literal_truth(literal: _Literal) -> Optional[bool]:
    """The truth value of a literal that can be decided syntactically."""
    left, right = literal.left, literal.right
    if left.base is not None and left.base == right.base:
        value = left.shift == right.shift
        return value if literal.positive else not value
    if left.base is None and right.base is None:
        value = left.shift == right.shift
        return value if literal.positive else not value
    return None


def _parse_literal(formula: Formula) -> _Literal:
    if isinstance(formula, Equals):
        return _Literal(
            parse_successor_term(formula.left), parse_successor_term(formula.right), True
        )
    if isinstance(formula, Not) and isinstance(formula.body, Equals):
        return _Literal(
            parse_successor_term(formula.body.left),
            parse_successor_term(formula.body.right),
            False,
        )
    if isinstance(formula, Atom):
        raise DomainError(
            f"predicate {formula.predicate!r} is not in the successor signature"
        )
    raise DomainError(f"unexpected literal in successor formula: {formula!r}")


def _substitute_literal(literal: _Literal, var: str, replacement: SuccTerm) -> _Literal:
    def sub(term: SuccTerm) -> SuccTerm:
        if term.base == var:
            return replacement.shifted(term.shift)
        return term

    return _Literal(sub(literal.left), sub(literal.right), literal.positive)


def _eliminate_exists_clause(var: str, literals: Sequence[Formula]) -> Formula:
    """Eliminate ``exists var`` from a conjunction of successor literals."""
    parsed: List[_Literal] = []
    for raw in literals:
        if isinstance(raw, Top):
            continue
        if isinstance(raw, Bottom):
            return BOTTOM
        parsed.append(_parse_literal(raw))

    # Resolve literals that are decidable outright (x = x, 3 = 5, ...).
    remaining: List[_Literal] = []
    for literal in parsed:
        truth = _literal_truth(literal)
        if truth is True:
            continue
        if truth is False:
            return BOTTOM
        remaining.append(literal)

    with_var = [lit for lit in remaining if lit.mentions(var)]
    without_var = [lit for lit in remaining if not lit.mentions(var)]
    residual = conj(*(lit.to_formula() for lit in without_var))

    equality = next((lit for lit in with_var if lit.positive), None)
    if equality is None:
        # Inequalities only: a natural number avoiding finitely many excluded
        # values always exists, so the quantifier disappears.
        return residual

    # Orient the equality as  var⁽ᵃ⁾ = t  with t free of var.
    if equality.left.base == var:
        var_side, other = equality.left, equality.right
    else:
        var_side, other = equality.right, equality.left
    if other.base == var:
        raise AssertionError("trivial equalities were resolved above")

    # var = other shifted by -var_side.shift  (possibly a "negative successor").
    replacement = other.shifted(-var_side.shift)
    guards: List[Formula] = []
    if replacement.base is None:
        if replacement.shift < 0:
            return BOTTOM
    elif replacement.shift < 0:
        # x = y⁽⁻ⁿ⁾ requires y ≥ n:  y ≠ 0 ∧ ... ∧ y ≠ n-1  (the paper's extra conjunction).
        for value in range(-replacement.shift):
            guards.append(Not(Equals(Var(replacement.base), Const(value))))

    substituted = [
        _substitute_literal(lit, var, replacement)
        for lit in with_var
        if lit is not equality
    ]
    pieces: List[Formula] = guards
    for literal in substituted:
        truth = _literal_truth(literal)
        if truth is True:
            continue
        if truth is False:
            return BOTTOM
        pieces.append(literal.to_formula())
    return conj(residual, *pieces)


def eliminate_successor_quantifiers(formula: Formula) -> Formula:
    """Quantifier elimination for ``(N, ')`` following Section 2.2."""
    return eliminate_quantifiers(formula, _eliminate_exists_clause)


def extended_active_domain_radius(quantifier_depth: int) -> int:
    """The radius ``2^q`` of Section 2.2's extended active domain."""
    if quantifier_depth < 0:
        raise ValueError("quantifier depth must be non-negative")
    return 2 ** quantifier_depth


def extended_active_domain_elements(
    elements: Sequence[int], quantifier_depth: int
) -> Set[int]:
    """The active-domain elements plus everything within distance ``2^q`` of them (and of 0)."""
    radius = extended_active_domain_radius(quantifier_depth)
    extended: Set[int] = set()
    anchors = set(int(e) for e in elements) | {0}
    for anchor in anchors:
        for offset in range(-radius, radius + 1):
            value = anchor + offset
            if value >= 0:
                extended.add(value)
    return extended


class SuccessorDomain(Domain):
    """The natural numbers with the successor function and equality only."""

    name = "naturals_with_successor"
    signature = Signature(predicates={}, functions={"succ": 1})
    has_decidable_theory = True

    # -- carrier -------------------------------------------------------------

    def contains(self, element: Element) -> bool:
        return isinstance(element, int) and not isinstance(element, bool) and element >= 0

    def enumerate_elements(self) -> Iterator[int]:
        value = 0
        while True:
            yield value
            value += 1

    # -- evaluation ----------------------------------------------------------

    def eval_function(self, name: str, args: Sequence[Element]) -> Element:
        if name == "succ":
            return int(args[0]) + 1
        raise KeyError(f"unknown successor-domain function {name!r}")

    def eval_predicate(self, name: str, args: Sequence[Element]) -> bool:
        raise KeyError(f"the successor domain has no predicate {name!r}")

    # -- decision procedure ---------------------------------------------------

    def eliminate_quantifiers(self, formula: Formula) -> Formula:
        """The Section 2.2 quantifier elimination."""
        return eliminate_successor_quantifiers(formula)

    def decide(self, sentence: Formula) -> bool:
        """Decide a pure successor sentence by elimination plus ground evaluation."""
        self._require_sentence(sentence)
        eliminated = eliminate_successor_quantifiers(sentence)
        return self._evaluate_ground(eliminated)

    def _evaluate_ground(self, formula: Formula) -> bool:
        from ..relational.calculus import evaluate_formula

        return evaluate_formula(formula, universe=(), assignment={}, interpretation=self)
