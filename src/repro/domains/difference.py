"""Integer difference constraints: ``(Z, <)`` with a graph-based fast path.

Difference constraints — conjunctions of atoms of the forms ``x - y <= c``,
``x <= c`` and ``c <= x`` — are the workhorse fragment of linear arithmetic
in verification.  Satisfiability of a conjunction over the integers is
equivalent to the absence of a negative cycle in the induced constraint
graph, which Bellman–Ford detects in ``O(V * E)`` — far cheaper than Cooper
quantifier elimination.

:class:`IntegerDifferenceDomain` is the Presburger domain over the integer
carrier with that fast path bolted onto :meth:`decide`: purely existential
sentences whose matrix is a conjunction of difference literals are settled by
Bellman–Ford; everything else falls back to the full Cooper procedure, so the
domain remains complete for all of linear integer arithmetic.  The counters
``fast_path_decisions`` / ``cooper_decisions`` record which route each
sentence took (the conformance bench smoke asserts the fast path actually
fires on its corpus).

As a safety case study the domain contrasts with ``(N, <)``: the integers
are unbounded in *both* directions, so "below some member" — finite over the
naturals — is infinite here, and the finitization used by the relative-safety
guard must bound answers from below as well as above.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    Formula,
    Not,
    Top,
)
from .base import DomainError
from .presburger import LinTerm, PresburgerDomain, linearize_term

__all__ = ["IntegerDifferenceDomain"]

#: the virtual node representing the constant 0 in the constraint graph
_ZERO = "__zero__"

#: a difference constraint ``value(target) - value(source) <= weight``
_Edge = Tuple[str, str, int]


class IntegerDifferenceDomain(PresburgerDomain):
    """Linear integer arithmetic with a Bellman–Ford difference fast path."""

    def __init__(self) -> None:
        super().__init__(carrier="integers")
        self.name = "integer_differences"
        #: sentences settled by the Bellman–Ford fast path
        self.fast_path_decisions = 0
        #: sentences that fell back to Cooper quantifier elimination
        self.cooper_decisions = 0

    def decide(self, sentence: Formula) -> bool:
        self._require_sentence(sentence)
        edges = _difference_edges(sentence)
        if edges is not None:
            self.fast_path_decisions += 1
            return _satisfiable(edges)
        self.cooper_decisions += 1
        return super().decide(sentence)


# ---------------------------------------------------------------------------
# Recognising the fragment
# ---------------------------------------------------------------------------


def _difference_edges(sentence: Formula) -> Optional[List[_Edge]]:
    """The constraint graph of an ``∃``-prefixed difference conjunction.

    Returns ``None`` when the sentence is outside the fragment (the caller
    then falls back to Cooper).  ``Bottom`` literals become an unsatisfiable
    self-loop so the graph faithfully represents the sentence.
    """
    body = sentence
    while isinstance(body, Exists):
        body = body.body
    literals = body.conjuncts if isinstance(body, And) else (body,)
    edges: List[_Edge] = []
    for literal in literals:
        converted = _literal_edges(literal)
        if converted is None:
            return None
        edges.extend(converted)
    return edges


def _literal_edges(literal: Formula) -> Optional[List[_Edge]]:
    if isinstance(literal, Top):
        return []
    if isinstance(literal, Bottom):
        return [(_ZERO, _ZERO, -1)]
    if isinstance(literal, Not):
        body = literal.body
        if isinstance(body, Atom):
            flipped = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}.get(body.predicate)
            if flipped is None:
                return None
            return _literal_edges(Atom(flipped, body.args))
        # A disequality is a disjunction of strict inequalities — not a
        # conjunction of difference constraints.
        return None
    if isinstance(literal, Equals):
        try:
            diff = linearize_term(literal.left).subtract(linearize_term(literal.right))
        except DomainError:
            return None
        below = _edge_of(diff, 0)
        above = _edge_of(diff.negate(), 0)
        if below is None or above is None:
            return None
        return [below, above]
    if isinstance(literal, Atom):
        if literal.predicate not in ("<", "<=", ">", ">=") or len(literal.args) != 2:
            return None
        try:
            left = linearize_term(literal.args[0])
            right = linearize_term(literal.args[1])
        except DomainError:
            return None
        if literal.predicate in (">", ">="):
            left, right = right, left
        diff = left.subtract(right)
        slack = 0 if literal.predicate in ("<=", ">=") else 1
        edge = _edge_of(diff, slack)
        return None if edge is None else [edge]
    return None


def _edge_of(diff: LinTerm, slack: int) -> Optional[_Edge]:
    """The edge for ``diff + slack <= 0``, or ``None`` outside the fragment.

    ``diff`` must have coefficient pattern ``x - y``, ``x``, ``-y`` or be
    constant; the constraint ``x - y <= c`` becomes the edge ``(y, x, c)``
    (meaning ``dist(x) <= dist(y) + c``), with the virtual :data:`_ZERO` node
    standing in for a missing variable.
    """
    bound = -diff.constant - slack
    coeffs = dict(diff.coeffs)
    positive = [v for v, c in coeffs.items() if c == 1]
    negative = [v for v, c in coeffs.items() if c == -1]
    if len(coeffs) != len(positive) + len(negative):
        return None  # some |coefficient| != 1
    if len(positive) > 1 or len(negative) > 1:
        return None
    target = positive[0] if positive else _ZERO
    source = negative[0] if negative else _ZERO
    return (source, target, bound)


# ---------------------------------------------------------------------------
# Bellman–Ford negative-cycle detection
# ---------------------------------------------------------------------------


def _satisfiable(edges: List[_Edge]) -> bool:
    """True iff the difference-constraint system has an integer solution.

    Classical result: the system ``{x - y <= c}`` is satisfiable (over Z, Q
    or R alike) iff the constraint graph has no negative-weight cycle.
    """
    nodes = {_ZERO}
    for source, target, _weight in edges:
        nodes.add(source)
        nodes.add(target)
    distance: Dict[str, int] = {node: 0 for node in nodes}
    for _round in range(len(nodes) - 1):
        changed = False
        for source, target, weight in edges:
            if distance[source] + weight < distance[target]:
                distance[target] = distance[source] + weight
                changed = True
        if not changed:
            return True
    for source, target, weight in edges:
        if distance[source] + weight < distance[target]:
            return False  # still relaxing after |V| - 1 rounds: negative cycle
    return True
