"""Conformance: one harness that validates any registered domain pack.

``python -m repro.conformance [pack ...]`` runs the whole suite from the
command line; :func:`run_conformance` / :func:`run_pack_conformance` are the
programmatic entry points (the registry-parametrized tests call them per
pack).
"""

from .harness import (
    CHECK_NAMES,
    CheckResult,
    ConformanceReport,
    PackReport,
    run_conformance,
    run_pack_conformance,
)

__all__ = [
    "CheckResult",
    "PackReport",
    "ConformanceReport",
    "CHECK_NAMES",
    "run_pack_conformance",
    "run_conformance",
]
