"""Command-line conformance runner: ``python -m repro.conformance [pack ...]``.

With no arguments, every registered pack is checked; otherwise only the named
packs (canonical names or aliases).  Exits non-zero when any check fails, so
CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..domains.packs import available_packs
from .harness import CHECK_NAMES, run_conformance


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="Run the domain-pack conformance suite.",
    )
    parser.add_argument(
        "packs",
        nargs="*",
        help="packs to check (canonical names or aliases); default: all "
        f"({', '.join(available_packs())})",
    )
    parser.add_argument(
        "--seeds",
        default="0,1",
        help="comma-separated seeds for the randomized state generators",
    )
    parser.add_argument(
        "--checks",
        default="",
        help="comma-separated check families to run; default: all "
        f"({', '.join(CHECK_NAMES)})",
    )
    options = parser.parse_args(argv)
    seeds = tuple(s for s in options.seeds.split(",") if s)
    checks = tuple(c for c in options.checks.split(",") if c) or None
    report = run_conformance(options.packs or None, seeds=seeds, checks=checks)
    print(report.describe())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
