"""The conformance harness: auto-generated validation for any domain pack.

Given a :class:`~repro.domains.packs.DomainPack`, the harness derives and
runs seven families of checks — no per-domain test code required:

1. **decision-procedure** — every declared ground-truth sentence decides to
   its declared truth value.
2. **substrate-equivalence** — on the canonical state and on randomized
   states (including the empty and one-row edge states), every claimed
   execution substrate (compiled set algebra, vectorized columnar,
   morsel-parallel) returns exactly the tree walker's active-domain answer,
   and each claimed substrate actually engages (produces its own method
   string, not just a fallback's) at least once.
3. **guard-soundness** — for packs that declare a relative-safety guard, the
   guarded session's verdict on the canonical state matches each query's
   declared finiteness; guard-rejected queries never come back as silent
   finite answers; and where the pack claims finite ⇒ domain-independent,
   answers do not change under fresh extra elements.
4. **edge-corpora** — queries run without error on empty and one-row states,
   duplicated rows do not change any answer, and the corpus exercises
   negation or a universal quantifier somewhere.
5. **delta-equivalence** — for packs with a compiled substrate, a sequence
   of randomized interleaved insert/delete deltas applied through
   :meth:`~repro.relational.state.DatabaseState.apply` and answered by the
   incremental substrate (:class:`~repro.engine.plans.IncrementalAlgebraPlan`)
   matches a rebuilt-from-scratch evaluation after every mutation, and the
   ΔQ maintenance path genuinely engages at least once.
6. **bench-smoke** — all queries on a ``bench_size``-row random state finish
   inside the pack's wall-clock budget, with compiled executions staying
   under the pack's peak-intermediate-rows ceiling (the blowup guard).
7. **faults** — under every fault in the seeded injection matrix
   (:meth:`repro.testing.faults.FaultPlan.matrix`: exceptions, delays, and
   corrupted plan-store pickles at each named injection point), every
   substrate either still answers exactly the tree walker's rows (the
   fallback ladder absorbed the fault) or fails *cleanly* with a structured
   error — never a hang (a watchdog bounds each run), never wrong rows.

The vectorized and parallel substrates are checked only when NumPy is
available; their *claims* checks are skipped (not failed) without it.

``run_pack_conformance(..., checks=("faults",))`` (CLI: ``--checks``)
restricts a run to named check families — the chaos CI job runs the
``faults`` family alone over a seed matrix.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..domains.base import Domain
from ..domains.packs import DomainPack, available_packs, get_pack
from ..engine.budget import Budget
from ..engine.plans import (
    CompiledAlgebraPlan,
    ParallelAlgebraPlan,
    VectorizedAlgebraPlan,
)
from ..logic.formulas import ForAll, Not, walk_formulas
from ..relational.calculus import evaluate_query_active_domain
from ..relational.columnar import HAVE_NUMPY
from ..relational.compile import CompilationError, compile_query
from ..relational.exec import ExecutionStats, run_plan
from ..relational.state import DatabaseState, Element, Relation

__all__ = [
    "CheckResult",
    "PackReport",
    "ConformanceReport",
    "CHECK_NAMES",
    "run_pack_conformance",
    "run_conformance",
]

#: randomized-state sizes always exercised per seed (0 and 1 are the
#: mandatory edge states; the rest probe ordinary small states)
STATE_SIZES = (0, 1, 3, 6)


@dataclass(frozen=True)
class CheckResult:
    """The outcome of one conformance check for one pack."""

    check: str
    ok: bool
    details: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        text = f"{self.check}: {status}"
        if self.details:
            text += f" — {self.details}"
        return text


@dataclass(frozen=True)
class PackReport:
    """All check results for one pack."""

    pack: str
    checks: Tuple[CheckResult, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> Tuple[CheckResult, ...]:
        return tuple(check for check in self.checks if not check.ok)

    def describe(self) -> str:
        lines = [f"[{'ok' if self.ok else 'FAIL'}] {self.pack}"]
        lines += [f"  {check.describe()}" for check in self.checks]
        return "\n".join(lines)


@dataclass(frozen=True)
class ConformanceReport:
    """Reports for every pack a run covered."""

    reports: Tuple[PackReport, ...]

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    def describe(self) -> str:
        failed = sum(1 for report in self.reports if not report.ok)
        lines = [report.describe() for report in self.reports]
        lines.append(
            f"{len(self.reports)} pack(s): "
            + ("all conformant" if not failed else f"{failed} FAILED")
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _carrier_extras(pack: DomainPack, domain: Domain) -> Tuple[Element, ...]:
    """The extra elements evaluation ranges over (the carrier, if finite)."""
    return tuple(domain.carrier_elements()) if pack.finite_carrier else ()


def _reference_rows(
    query, state: DatabaseState, domain: Domain, extras: Sequence[Element]
) -> frozenset:
    """The tree walker's active-domain answer — the equivalence oracle."""
    relation = evaluate_query_active_domain(
        query, state, interpretation=domain, extra_elements=extras
    )
    return frozenset(relation.rows)


def _substrate_plans(pack: DomainPack, domain: Domain, extras):
    """The (name, plan) pairs for every substrate the pack claims."""
    plans = []
    if pack.supports_compiled_algebra:
        plans.append((
            "compiled-algebra",
            CompiledAlgebraPlan(domain=domain, budget=Budget(), extra_elements=extras),
        ))
    if pack.supports_vectorized and HAVE_NUMPY:
        plans.append((
            "vectorized",
            VectorizedAlgebraPlan(domain=domain, budget=Budget(), extra_elements=extras),
        ))
    if pack.supports_parallel and HAVE_NUMPY:
        # threshold 1 forces the worker pool even on tiny states, so the
        # parallel path itself (not its small-state shortcut) is what runs
        plans.append((
            "parallel",
            ParallelAlgebraPlan(
                domain=domain,
                budget=Budget(),
                extra_elements=extras,
                parallel_threshold=1,
                morsel_rows=3,
            ),
        ))
    return plans


def _conformance_states(
    corpus, seeds: Sequence[str]
) -> List[Tuple[str, DatabaseState]]:
    """The canonical state plus deterministic randomized states per seed."""
    states: List[Tuple[str, DatabaseState]] = [("canonical", corpus.canonical_state)]
    if corpus.state_factory is None:
        return states
    for seed in seeds:
        for size in STATE_SIZES:
            rng = random.Random(f"conformance/{corpus.name}/{seed}/{size}")
            states.append((f"seed={seed}/rows={size}", corpus.state_factory(rng, size)))
    return states


# ---------------------------------------------------------------------------
# The checks
# ---------------------------------------------------------------------------


def _check_decision_procedure(pack: DomainPack, domain: Domain) -> CheckResult:
    sentences = pack.sentences()
    if not sentences:
        return CheckResult(
            "decision-procedure", True, "skipped: no ground-truth sentences declared"
        )
    problems = []
    for ps in sentences:
        try:
            got = domain.decide(ps.sentence)
        except Exception as error:  # a crash is a conformance failure, not ours
            problems.append(f"{ps.name}: raised {type(error).__name__}: {error}")
            continue
        if got != ps.truth:
            problems.append(f"{ps.name}: decided {got}, declared {ps.truth}")
    if problems:
        return CheckResult("decision-procedure", False, "; ".join(problems))
    return CheckResult(
        "decision-procedure", True, f"{len(sentences)} sentence(s) decided correctly"
    )


def _check_substrate_equivalence(
    pack: DomainPack, domain: Domain, seeds: Sequence[str]
) -> CheckResult:
    extras = _carrier_extras(pack, domain)
    plans = _substrate_plans(pack, domain, extras)
    if not plans:
        return CheckResult(
            "substrate-equivalence", True, "skipped: no algebra substrates claimed"
        )
    problems: List[str] = []
    engaged = {name: False for name, _ in plans}
    executions = 0
    for corpus in pack.corpora():
        for state_name, state in _conformance_states(corpus, seeds):
            for pq in corpus.queries:
                expected = _reference_rows(pq.query, state, domain, extras)
                for substrate, plan in plans:
                    answer = plan.execute(pq.query, state)
                    executions += 1
                    if answer.method == substrate:
                        engaged[substrate] = True
                    got = frozenset(answer.relation.rows)
                    if got != expected:
                        problems.append(
                            f"{corpus.name}/{pq.name} on {state_name} via "
                            f"{substrate}: {len(got)} row(s) != tree walker's "
                            f"{len(expected)}"
                        )
    # Every claimed substrate must have actually run its own executor at
    # least once — a flag that only ever falls back is a false claim.
    for substrate, hit in engaged.items():
        if not hit:
            problems.append(
                f"claimed substrate {substrate!r} never engaged "
                "(every execution fell back down the ladder)"
            )
    if problems:
        return CheckResult("substrate-equivalence", False, "; ".join(problems[:8]))
    names = ", ".join(name for name, _ in plans)
    return CheckResult(
        "substrate-equivalence",
        True,
        f"{executions} execution(s) across {names} matched the tree walker",
    )


def _check_guard_soundness(
    pack: DomainPack, domain: Domain
) -> CheckResult:
    if pack.safety_factory is None:
        return CheckResult(
            "guard-soundness",
            True,
            "skipped: no relative-safety guard declared "
            "(cf. Theorem 3.3 — one need not exist)",
        )
    from ..api.session import Session

    problems: List[str] = []
    asserted = 0
    for corpus in pack.corpora():
        session = Session(pack.name, corpus.schema)
        for pq in corpus.queries:
            if pq.finite is None:
                continue
            asserted += 1
            answer = session.query(pq.query, state=corpus.canonical_state)
            if answer.is_finite != pq.finite:
                problems.append(
                    f"{corpus.name}/{pq.name}: guard says finite={answer.is_finite}, "
                    f"pack declares {pq.finite}"
                )
                continue
            if not pq.finite:
                # A rejected query must be visibly rejected, never a silent
                # finite row set.
                if answer.rows() and answer.is_finite is not False:
                    problems.append(
                        f"{corpus.name}/{pq.name}: infinite query answered silently"
                    )
                if not answer.explain():
                    problems.append(
                        f"{corpus.name}/{pq.name}: rejection carries no explanation"
                    )
            elif pack.finite_implies_domain_independent:
                # Where finiteness implies domain independence, enlarging the
                # evaluation universe must not change the answer.
                fresh = _fresh_elements(domain, corpus.canonical_state, count=3)
                enlarged = session.query(
                    pq.query, state=corpus.canonical_state, extra_elements=fresh
                )
                if frozenset(enlarged.rows()) != frozenset(answer.rows()):
                    problems.append(
                        f"{corpus.name}/{pq.name}: answer changed under fresh "
                        "extra elements despite the domain-independence claim"
                    )
    if problems:
        return CheckResult("guard-soundness", False, "; ".join(problems[:8]))
    return CheckResult(
        "guard-soundness", True, f"{asserted} declared verdict(s) confirmed"
    )


def _fresh_elements(
    domain: Domain, state: DatabaseState, count: int
) -> Tuple[Element, ...]:
    """``count`` carrier elements not stored in ``state``."""
    stored = state.elements()
    fresh: List[Element] = []
    for element in domain.enumerate_elements():
        if element not in stored:
            fresh.append(element)
            if len(fresh) == count:
                break
    return tuple(fresh)


def _check_edge_corpora(
    pack: DomainPack, domain: Domain, seeds: Sequence[str]
) -> CheckResult:
    extras = _carrier_extras(pack, domain)
    problems: List[str] = []
    saw_factory = False
    saw_shape = False
    for corpus in pack.corpora():
        for pq in corpus.queries:
            for sub in walk_formulas(pq.query):
                if isinstance(sub, (Not, ForAll)):
                    saw_shape = True
        # Duplicated stored rows must be invisible under set semantics.
        doubled = DatabaseState(
            corpus.schema,
            {
                name: Relation(rel.arity, tuple(rel.rows) + tuple(rel.rows))
                for name, rel in corpus.canonical_state.relations.items()
            },
        )
        for pq in corpus.queries:
            base = _reference_rows(pq.query, corpus.canonical_state, domain, extras)
            dup = _reference_rows(pq.query, doubled, domain, extras)
            if base != dup:
                problems.append(
                    f"{corpus.name}/{pq.name}: duplicated rows changed the answer"
                )
        if corpus.state_factory is None:
            continue
        saw_factory = True
        for size in (0, 1):
            rng = random.Random(f"edge/{corpus.name}/{seeds[0]}/{size}")
            state = corpus.state_factory(rng, size)
            if state.total_rows() > size:
                problems.append(
                    f"{corpus.name}: state_factory(rng, {size}) stored "
                    f"{state.total_rows()} row(s)"
                )
            for pq in corpus.queries:
                try:
                    _reference_rows(pq.query, state, domain, extras)
                except Exception as error:
                    problems.append(
                        f"{corpus.name}/{pq.name} on {size}-row state: raised "
                        f"{type(error).__name__}: {error}"
                    )
    if not saw_shape:
        problems.append("no corpus query exercises negation or a universal")
    if not pack.corpora():
        problems.append("pack declares no corpora")
    if problems:
        return CheckResult("edge-corpora", False, "; ".join(problems[:8]))
    detail = "empty/one-row/duplicate states covered, negation/∀ shapes present"
    if not saw_factory:
        detail += " (no state factory: randomized edge states skipped)"
    return CheckResult("edge-corpora", True, detail)


def _random_delta(
    rng: random.Random,
    state: DatabaseState,
    pool: DatabaseState,
    *,
    insert_only: bool,
) -> "Delta":
    """A small random mutation: inserts drawn from ``pool``, deletes from
    ``state`` (unless ``insert_only``)."""
    from ..relational.state import Delta

    inserts = {}
    deletes = {}
    for name, relation in pool.relations.items():
        candidates = sorted(relation.rows, key=repr)
        if candidates and rng.random() < 0.8:
            inserts[name] = rng.sample(candidates, min(2, len(candidates)))
    if not insert_only:
        for name, relation in state.relations.items():
            stored = sorted(relation.rows, key=repr)
            if stored and rng.random() < 0.5:
                deletes[name] = [rng.choice(stored)]
    return Delta(inserts=inserts, deletes=deletes)


def _check_delta_equivalence(
    pack: DomainPack, domain: Domain, seeds: Sequence[str]
) -> CheckResult:
    """Interleaved insert/delete deltas answered incrementally must match a
    rebuilt-from-scratch evaluation after every mutation."""
    if not pack.supports_compiled_algebra:
        return CheckResult(
            "delta-equivalence",
            True,
            "skipped: no compiled substrate to maintain incrementally",
        )
    corpora = [c for c in pack.corpora() if c.state_factory is not None]
    if not corpora:
        return CheckResult(
            "delta-equivalence", True, "skipped: no state factory declared"
        )
    from ..engine.answer_cache import AnswerCache
    from ..engine.plans import IncrementalAlgebraPlan

    extras = _carrier_extras(pack, domain)
    problems: List[str] = []
    executions = 0
    maintained = 0
    cached_plans = 0
    insert_only_steps = 0
    for corpus in corpora:
        for seed in seeds:
            rng = random.Random(f"delta/{pack.name}/{corpus.name}/{seed}")
            state = corpus.state_factory(rng, 3)
            pool = corpus.state_factory(rng, 8)
            cache = AnswerCache()
            plan = IncrementalAlgebraPlan(
                domain=domain,
                budget=Budget(),
                extra_elements=extras,
                answer_cache=cache,
            )
            for step in range(5):
                if step:
                    delta = _random_delta(
                        rng, state, pool, insert_only=step == 1
                    )
                    mutated = state.apply(delta)
                    if mutated is state:
                        continue
                    if step == 1:
                        insert_only_steps += 1
                    state = mutated
                for pq in corpus.queries:
                    expected = _reference_rows(pq.query, state, domain, extras)
                    answer = plan.execute(pq.query, state)
                    executions += 1
                    got = frozenset(answer.relation.rows)
                    if got != expected:
                        problems.append(
                            f"{corpus.name}/{pq.name} seed={seed} step={step}: "
                            f"incremental answer {len(got)} row(s) != rebuilt "
                            f"{len(expected)}"
                        )
            maintained += cache.info().maintained
            cached_plans += len(cache)
    # The ΔQ path must genuinely engage somewhere: with at least one
    # effective insert-only delta and at least one compilable (cached) query,
    # zero maintained answers means every repeat fell back to re-execution.
    if insert_only_steps and cached_plans and not maintained:
        problems.append(
            "no answer was ever delta-maintained "
            "(every mutated repeat fell back to full re-execution)"
        )
    if problems:
        return CheckResult("delta-equivalence", False, "; ".join(problems[:8]))
    return CheckResult(
        "delta-equivalence",
        True,
        f"{executions} post-mutation execution(s) matched rebuilt states "
        f"({maintained} delta-maintained)",
    )


#: seconds the faults check allows one injected-fault scenario before
#: declaring it hung (the acceptance bar is "never hangs")
FAULT_WATCHDOG_SECONDS = 60.0


def _check_faults(
    pack: DomainPack, domain: Domain, seeds: Sequence[str]
) -> CheckResult:
    """Every substrate answers correctly or fails cleanly under injection.

    For each fault in the seeded matrix, the full claimed ladder (plus the
    incremental plan across a mutation, so maintenance rules run) executes
    every corpus query with the fault active.  Acceptable outcomes per
    execution: rows identical to the tree walker's, or a structured error
    (:class:`~repro.testing.faults.InjectedFault` /
    :class:`~repro.engine.budget.EvaluationInterrupted`).  Wrong rows, an
    unstructured crash, or blowing the watchdog fail the check.
    """
    if not pack.supports_compiled_algebra:
        return CheckResult(
            "faults", True, "skipped: no algebra substrates to inject faults into"
        )
    import shutil
    import tempfile
    from concurrent.futures import ThreadPoolExecutor
    from concurrent.futures import TimeoutError as FutureTimeout

    from ..engine.answer_cache import AnswerCache
    from ..engine.breaker import SubstrateBreaker
    from ..engine.budget import EvaluationInterrupted
    from ..engine.plans import IncrementalAlgebraPlan
    from ..serve.plan_store import PersistentPlanCache, PlanStore
    from ..testing import faults

    extras = _carrier_extras(pack, domain)
    # Precompute the mutation scenarios and their tree-walker references
    # outside injection, so the oracle itself never sees a fault and the
    # per-point hit counts inside the scenario stay deterministic.
    scenarios = []  # (corpus, [(state, {query name: expected rows})...])
    for corpus in pack.corpora():
        states = [corpus.canonical_state]
        if corpus.state_factory is not None:
            rng = random.Random(f"faults/{pack.name}/{corpus.name}/{seeds[0]}")
            pool = corpus.state_factory(rng, 6)
            delta = _random_delta(rng, states[0], pool, insert_only=True)
            mutated = states[0].apply(delta)
            if mutated is not states[0]:
                states.append(mutated)
        expected = [
            {
                pq.name: _reference_rows(pq.query, state, domain, extras)
                for pq in corpus.queries
            }
            for state in states
        ]
        scenarios.append((corpus, list(zip(states, expected))))

    def run_scenario(tmp_dir: str) -> Tuple[List[str], int]:
        """One full ladder pass under the active fault; (problems, runs)."""
        problems: List[str] = []
        runs = 0
        # Fresh breaker and plan store per fault: no cross-fault pollution,
        # and never the process-global default breaker.
        breaker = SubstrateBreaker()
        cache = PersistentPlanCache(maxsize=64, store=PlanStore(tmp_dir))
        for corpus, steps in scenarios:
            plans = [(
                "compiled-algebra",
                CompiledAlgebraPlan(
                    domain=domain, budget=Budget(), extra_elements=extras,
                    cache=cache, breaker=breaker,
                ),
            )]
            if pack.supports_vectorized and HAVE_NUMPY:
                plans.append((
                    "vectorized",
                    VectorizedAlgebraPlan(
                        domain=domain, budget=Budget(), extra_elements=extras,
                        cache=cache, breaker=breaker,
                    ),
                ))
            if pack.supports_parallel and HAVE_NUMPY:
                plans.append((
                    "parallel",
                    ParallelAlgebraPlan(
                        domain=domain, budget=Budget(), extra_elements=extras,
                        cache=cache, breaker=breaker,
                        parallel_threshold=1, morsel_rows=3,
                    ),
                ))
            plans.append((
                "incremental",
                IncrementalAlgebraPlan(
                    domain=domain, budget=Budget(), extra_elements=extras,
                    cache=cache, answer_cache=AnswerCache(), breaker=breaker,
                ),
            ))
            for substrate, plan in plans:
                # Each plan walks canonical → mutated, so the incremental
                # plan's second step exercises the maintenance rules.
                for step, (state, expected) in enumerate(steps):
                    for pq in corpus.queries:
                        runs += 1
                        try:
                            answer = plan.execute(pq.query, state)
                        except (faults.InjectedFault, EvaluationInterrupted):
                            continue  # clean, structured failure
                        except Exception as error:
                            problems.append(
                                f"{corpus.name}/{pq.name} step={step} via "
                                f"{substrate}: unstructured "
                                f"{type(error).__name__}: {error}"
                            )
                            continue
                        got = frozenset(answer.relation.rows)
                        if got != expected[pq.name]:
                            problems.append(
                                f"{corpus.name}/{pq.name} step={step} via "
                                f"{substrate}: {len(got)} row(s) != tree "
                                f"walker's {len(expected[pq.name])}"
                            )
        return problems, runs

    problems: List[str] = []
    executions = 0
    fired = 0
    fault_plans = [
        plan for seed in seeds for plan in faults.FaultPlan.matrix(seed)
    ]
    for fault_plan in fault_plans:
        tmp_dir = tempfile.mkdtemp(prefix="repro-faults-")
        # One watchdog thread per fault: a hang must fail *this* fault's
        # verdict without wedging the rest of the matrix.
        watchdog = ThreadPoolExecutor(max_workers=1)
        try:
            with faults.inject(fault_plan):
                future = watchdog.submit(run_scenario, tmp_dir)
                try:
                    fault_problems, runs = future.result(
                        timeout=FAULT_WATCHDOG_SECONDS
                    )
                except FutureTimeout:
                    problems.append(
                        f"[{fault_plan.label}] hung past the "
                        f"{FAULT_WATCHDOG_SECONDS:.0f}s watchdog"
                    )
                    continue
                executions += runs
                fired += sum(fault_plan.fired().values())
                problems.extend(
                    f"[{fault_plan.label}] {text}" for text in fault_problems
                )
        finally:
            watchdog.shutdown(wait=False)
            shutil.rmtree(tmp_dir, ignore_errors=True)
    if problems:
        return CheckResult("faults", False, "; ".join(problems[:8]))
    return CheckResult(
        "faults",
        True,
        f"{executions} execution(s) under {len(fault_plans)} injected fault(s) "
        f"({fired} trigger(s) fired) answered correctly or failed cleanly",
    )


def _check_bench_smoke(pack: DomainPack, domain: Domain) -> CheckResult:
    corpora = [c for c in pack.corpora() if c.state_factory is not None]
    if not corpora:
        return CheckResult("bench-smoke", True, "skipped: no state factory declared")
    extras = _carrier_extras(pack, domain)
    problems: List[str] = []
    peak = 0
    started = time.perf_counter()
    for corpus in corpora:
        rng = random.Random(f"bench/{pack.name}/{corpus.name}")
        state = corpus.state_factory(rng, pack.bench_size)
        for pq in corpus.queries:
            if pack.supports_compiled_algebra:
                try:
                    compiled = compile_query(pq.query, state.schema, domain)
                except CompilationError:
                    compiled = None
                if compiled is not None:
                    stats = ExecutionStats()
                    run_plan(
                        compiled.plan,
                        state,
                        compiled.universe(state, extras),
                        domain,
                        stats,
                    )
                    peak = max(peak, stats.peak_rows)
                    if stats.peak_rows > pack.bench_row_limit:
                        problems.append(
                            f"{corpus.name}/{pq.name}: peak intermediate "
                            f"{stats.peak_rows} row(s) exceeds the "
                            f"{pack.bench_row_limit}-row blowup guard"
                        )
                    continue
            _reference_rows(pq.query, state, domain, extras)
    elapsed = time.perf_counter() - started
    if elapsed > pack.bench_seconds:
        problems.append(
            f"bench corpus took {elapsed:.1f}s, over the "
            f"{pack.bench_seconds:.0f}s budget"
        )
    if problems:
        return CheckResult("bench-smoke", False, "; ".join(problems))
    return CheckResult(
        "bench-smoke",
        True,
        f"{pack.bench_size}-row state answered in {elapsed:.2f}s "
        f"(peak intermediate {peak} row(s))",
    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


#: every check family, in the order reports print them
CHECK_NAMES = (
    "decision-procedure",
    "substrate-equivalence",
    "guard-soundness",
    "edge-corpora",
    "delta-equivalence",
    "bench-smoke",
    "faults",
)


def run_pack_conformance(
    pack: Union[str, DomainPack],
    *,
    seeds: Sequence[str] = ("0", "1"),
    checks: Optional[Sequence[str]] = None,
) -> PackReport:
    """Run the conformance suite against one pack.

    ``checks`` selects a subset of :data:`CHECK_NAMES` (default: all).
    """
    if isinstance(pack, str):
        pack = get_pack(pack)
    domain = pack.factory()
    selected = CHECK_NAMES if checks is None else tuple(checks)
    unknown = set(selected) - set(CHECK_NAMES)
    if unknown:
        raise ValueError(
            f"unknown check(s) {sorted(unknown)}; expected from {CHECK_NAMES}"
        )
    runners = {
        "decision-procedure": lambda: _check_decision_procedure(pack, domain),
        "substrate-equivalence": lambda: _check_substrate_equivalence(
            pack, domain, seeds
        ),
        "guard-soundness": lambda: _check_guard_soundness(pack, domain),
        "edge-corpora": lambda: _check_edge_corpora(pack, domain, seeds),
        "delta-equivalence": lambda: _check_delta_equivalence(pack, domain, seeds),
        "bench-smoke": lambda: _check_bench_smoke(pack, domain),
        "faults": lambda: _check_faults(pack, domain, seeds),
    }
    results = tuple(runners[name]() for name in CHECK_NAMES if name in selected)
    return PackReport(pack=pack.name, checks=results)


def run_conformance(
    names: Optional[Iterable[str]] = None,
    *,
    seeds: Sequence[str] = ("0", "1"),
    checks: Optional[Sequence[str]] = None,
) -> ConformanceReport:
    """Run the conformance suite against ``names`` (default: every pack)."""
    targets = tuple(names) if names is not None else available_packs()
    reports = tuple(
        run_pack_conformance(name, seeds=seeds, checks=checks) for name in targets
    )
    return ConformanceReport(reports=reports)
