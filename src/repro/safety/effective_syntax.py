"""Effective syntaxes for finite queries (the paper's central notion).

An *effective syntax* (recursive syntax) for the finite queries of a domain is
a recursive subclass of formulas such that every formula in the subclass is
finite and every finite formula is equivalent to one in the subclass.  The
paper gives three positive constructions, all implemented here:

* :class:`ActiveDomainSyntax` — for the pure-equality domain (and any domain
  where finite = domain-independent): restrict every answer variable to the
  active domain;
* :class:`FinitizationSyntax` — for every extension of ``(N, <)``
  (Theorem 2.2), including Presburger arithmetic and full arithmetic
  (Corollary 2.3): the set of finitizations of all formulas;
* :class:`ExtendedActiveDomainSyntax` — for ``(N, ')`` (Theorem 2.7): restrict
  every answer variable to the *extended* active domain of radius ``2^q``
  where ``q`` is the quantifier depth.

Theorem 3.1 shows that no such construction — indeed no recursive or even
recursively enumerable subclass — exists for the trace domain **T**; the
executable form of that argument lives in :mod:`repro.safety.reductions`.

Each syntax object offers three operations:

* ``restrict(φ)`` — map an arbitrary formula into the subclass; if ``φ`` is
  finite the result is equivalent to ``φ``;
* ``contains(φ)`` — recursive membership test for the subclass;
* ``enumerate_syntax(formulas)`` — the recursive enumeration of the subclass
  induced by an enumeration of all formulas.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Optional, Sequence

from ..logic.analysis import constants_of, free_variables, quantifier_depth
from ..logic.builders import conj, disj
from ..logic.formulas import And, Atom, Equals, Formula
from ..logic.terms import Apply, Const, Var
from ..relational.schema import DatabaseSchema
from .domain_independence import active_domain_formula
from .finitization import finitize, split_finitization

__all__ = [
    "EffectiveSyntax",
    "ActiveDomainSyntax",
    "FinitizationSyntax",
    "ExtendedActiveDomainSyntax",
]


class EffectiveSyntax(ABC):
    """A recursive subclass of formulas capturing exactly the finite queries."""

    #: short human-readable name used in experiment reports
    name: str = "effective-syntax"

    @abstractmethod
    def restrict(self, formula: Formula) -> Formula:
        """Map an arbitrary formula to a member of the subclass.

        For finite formulas the result must be equivalent to the input; for
        arbitrary formulas the result must be finite.
        """

    @abstractmethod
    def contains(self, formula: Formula) -> bool:
        """Recursive membership test for the subclass."""

    def enumerate_syntax(self, formulas: Iterable[Formula]) -> Iterator[Formula]:
        """Enumerate the subclass, given an enumeration of all formulas."""
        for formula in formulas:
            yield self.restrict(formula)


class ActiveDomainSyntax(EffectiveSyntax):
    """Restrict every free variable to the active domain.

    Over the pure-equality domain every finite query is domain-independent
    (Section 2), so conjoining the active-domain guard ``Δ(x_i)`` for every
    free variable both forces finiteness and preserves finite queries.
    """

    name = "active-domain-restriction"

    def __init__(self, schema: DatabaseSchema):
        self._schema = schema

    def guard(self, formula: Formula) -> Formula:
        """The conjunction of active-domain guards for the free variables."""
        constants = constants_of(formula)
        variables = sorted(free_variables(formula), key=lambda v: v.name)
        guards = [
            active_domain_formula(self._schema, v, query_constants=constants)
            for v in variables
        ]
        return conj(*guards)

    def restrict(self, formula: Formula) -> Formula:
        return And((formula, self.guard(formula)))

    def contains(self, formula: Formula) -> bool:
        if not isinstance(formula, And) or len(formula.conjuncts) != 2:
            return False
        core, guard = formula.conjuncts
        return guard == self.guard(core)


class FinitizationSyntax(EffectiveSyntax):
    """The Theorem 2.2 syntax: the set of finitizations of all formulas."""

    name = "finitization"

    def __init__(self, integers: bool = False):
        self._integers = integers

    def restrict(self, formula: Formula) -> Formula:
        return finitize(formula, integers=self._integers)

    def contains(self, formula: Formula) -> bool:
        return split_finitization(formula) is not None


class ExtendedActiveDomainSyntax(EffectiveSyntax):
    """The Theorem 2.7 syntax for ``(N, ')``.

    A formula of quantifier depth ``q`` is finite iff its answer is contained
    in the *extended* active domain: the active domain, the element 0, and
    everything within successor-distance ``2^q`` of them.  The syntax
    conjoins, for every free variable, the guard "within distance ``2^q`` of
    the active domain or of 0".
    """

    name = "extended-active-domain"

    def __init__(self, schema: DatabaseSchema):
        self._schema = schema

    @staticmethod
    def _within_distance(x: Var, anchor, radius: int) -> Formula:
        """``x`` is within successor-distance ``radius`` of ``anchor`` (a term)."""
        options = []
        for distance in range(radius + 1):
            shifted_anchor = anchor
            shifted_x: object = x
            for _ in range(distance):
                shifted_anchor = Apply("succ", (shifted_anchor,))
                shifted_x = Apply("succ", (shifted_x,))
            options.append(Equals(x, shifted_anchor))      # x = anchor + d
            options.append(Equals(shifted_x, anchor))       # x + d = anchor
        return disj(*options)

    def guard(self, formula: Formula) -> Formula:
        """The extended-active-domain guard for every free variable of ``formula``."""
        radius = 2 ** quantifier_depth(formula)
        constants = sorted(constants_of(formula), key=repr)
        variables = sorted(free_variables(formula), key=lambda v: v.name)
        guards = []
        for x in variables:
            anchors: list = [Const(0)] + list(constants)
            options = [self._within_distance(x, anchor, radius) for anchor in anchors]
            # Anchors stored in the database: exists y in some column of some
            # relation with x within distance 2^q of y.
            from ..logic.builders import exists_many
            from ..logic.substitution import fresh_variables

            for relation in self._schema:
                if relation.arity == 0:
                    continue
                fresh = fresh_variables(relation.arity, [x], stem="u")
                atom = Atom(relation.name, tuple(fresh))
                for position in range(relation.arity):
                    near = self._within_distance(x, fresh[position], radius)
                    options.append(exists_many([v.name for v in fresh], conj(atom, near)))
            guards.append(disj(*options))
        return conj(*guards)

    def restrict(self, formula: Formula) -> Formula:
        return And((formula, self.guard(formula)))

    def contains(self, formula: Formula) -> bool:
        if not isinstance(formula, And) or len(formula.conjuncts) != 2:
            return False
        core, guard = formula.conjuncts
        return guard == self.guard(core)
