"""Domain independence, active-domain formulas, and the Fact 2.1 counterexample.

A query is *domain-independent* iff its answer is always contained in the
active domain of the query and the state.  Over the pure-equality domain the
finite and domain-independent queries coincide; over ``(N, <)`` they do not:
Fact 2.1 exhibits a finite query (the least element strictly greater than the
whole active domain) that is not domain-independent.  This module provides

* :func:`active_domain_formula` — the relational-calculus formula ``Δ(x)``
  defining the active domain of a database schema (used both in Fact 2.1 and
  in the active-domain effective syntax);
* :func:`fact_2_1_query` — the Fact 2.1 formula itself;
* :func:`check_domain_independence` — an empirical (sound-for-refutation)
  domain-independence check used by the experiments.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..logic.analysis import constants_of, free_variables
from ..logic.builders import conj, disj, exists_many
from ..logic.formulas import Atom, Equals, Exists, ForAll, Formula, Implies
from ..logic.substitution import fresh_variables
from ..logic.terms import Const, Var
from ..relational.active_domain import active_domain
from ..relational.calculus import evaluate_query
from ..relational.schema import DatabaseSchema
from ..relational.state import DatabaseState, Element, Relation
from ..domains.base import Domain
from .classes import SafetyVerdict

__all__ = [
    "active_domain_formula",
    "fact_2_1_query",
    "check_domain_independence",
    "answer_over_universe",
]


def active_domain_formula(
    schema: DatabaseSchema,
    variable: Var,
    query_constants: Iterable[Const] = (),
) -> Formula:
    """The formula ``Δ(x)`` defining the active domain.

    ``x`` belongs to the active domain iff it equals one of the query
    constants or occurs in some column of some database relation.
    """
    options = [Equals(variable, c) for c in sorted(set(query_constants), key=repr)]
    for relation in schema:
        if relation.arity == 0:
            continue
        used = [variable]
        others = fresh_variables(relation.arity, used, stem="u")
        for position in range(relation.arity):
            args = list(others)
            args[position] = variable
            quantified = [v for i, v in enumerate(others) if i != position]
            atom = Atom(relation.name, tuple(args))
            options.append(exists_many([v.name for v in quantified], atom))
    return disj(*options)


def fact_2_1_query(schema: DatabaseSchema, variable: str = "x") -> Formula:
    """The Fact 2.1 query: the least element greater than the whole active domain.

    ``φ(x) := ∀y (Δ(y) → y < x)  ∧  ∀y (y < x → ∃z (Δ(z) ∧ y ≤ z))``

    The answer always contains exactly one element, so the query is finite,
    but the element lies outside the active domain, so the query is not
    domain-independent — in any extension of ``(N, <)``.
    """
    x = Var(variable)
    y = Var("y" if variable != "y" else "y0")
    z = Var("z" if variable != "z" else "z0")
    delta_y = active_domain_formula(schema, y)
    delta_z = active_domain_formula(schema, z)
    above_all = ForAll(y.name, Implies(delta_y, Atom("<", (y, x))))
    minimal = ForAll(
        y.name,
        Implies(
            Atom("<", (y, x)),
            Exists(z.name, conj(delta_z, Atom("<=", (y, z)))),
        ),
    )
    return conj(above_all, minimal)


def answer_over_universe(
    query: Formula,
    state: DatabaseState,
    domain: Domain,
    universe: Sequence[Element],
) -> Relation:
    """Evaluate ``query`` with quantifiers and answers restricted to ``universe``."""
    return evaluate_query(query, universe, state=state, interpretation=domain)


def check_domain_independence(
    query: Formula,
    state: DatabaseState,
    domain: Domain,
    extra_elements: Sequence[Element],
) -> SafetyVerdict:
    """Empirically check domain independence of ``query`` in ``state``.

    The answer over the active domain is compared with the answer over the
    active domain enlarged by ``extra_elements``.  If they differ, the query
    is certainly not domain-independent (the verdict carries a witness tuple);
    if they agree, the check is inconclusive in general and the verdict says
    so.
    """
    base_universe = sorted(active_domain(state, query), key=repr)
    enlarged = list(base_universe) + [e for e in extra_elements if e not in base_universe]
    base_answer = answer_over_universe(query, state, domain, base_universe)
    enlarged_answer = answer_over_universe(query, state, domain, enlarged)
    difference = enlarged_answer.rows - base_answer.rows
    escaped = {
        row
        for row in enlarged_answer.rows
        if any(value not in base_universe for value in row)
    }
    if difference or escaped:
        witnesses = tuple(sorted(difference | escaped))
        return SafetyVerdict.infinite(
            method="active-domain-comparison",
            details="the answer changes (or escapes the active domain) when the "
            "universe is enlarged, so the query is not domain-independent",
            witnesses=witnesses,
        )
    return SafetyVerdict.unknown(
        method="active-domain-comparison",
        details="no difference observed on the sampled universe; "
        "domain independence is not refuted",
    )
