"""Corollary 2.4: every domain extends to one with an effective syntax.

"For any domain D there exists its extension D' with a recursive syntax for
finite queries.  If D is recursive, a recursive D' can be chosen."  The hint
is to take D' to be a common extension of D and ``(N, <)``: keep the carrier
and all symbols of D, and add a discrete linear order of type ω.  For a
recursive domain with a computable enumeration of its carrier the induced
order ("earlier in the enumeration") is itself recursive, so D' is recursive,
and the finitization syntax of Theorem 2.2 (stated for the new order) is an
effective syntax for the finite queries of D'.

Corollary 3.2 is the sting in the tail: for the trace domain **T** every such
extension has an *undecidable* theory, so the effective syntax exists only at
the price of losing effective query answering.  :class:`OrderedExtensionDomain`
therefore reports ``has_decidable_theory = False`` unless the base domain
explicitly certifies that adding the enumeration order keeps its theory
decidable (as is the case for ``(N, <)`` itself).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional, Sequence

from ..domains.base import Domain, TheoryUndecidableError
from ..domains.signature import Signature
from ..logic.formulas import Formula
from ..relational.state import Element
from .effective_syntax import FinitizationSyntax

__all__ = ["OrderedExtensionDomain", "extension_with_effective_syntax"]


class OrderedExtensionDomain(Domain):
    """The base domain extended with the enumeration order ``<`` (Corollary 2.4).

    The carrier and every symbol of the base domain are preserved; the new
    binary predicate ``<`` compares positions in the base domain's element
    enumeration, which is recursive whenever the base domain is.  The
    finitization operator with respect to this order yields a recursive
    syntax for finite queries of the extension.
    """

    def __init__(self, base: Domain, index_cache_limit: int = 100_000):
        self._base = base
        self.name = f"{base.name}+order"
        self.signature = base.signature.merge(
            Signature(predicates={"<": 2, "<=": 2}, functions={})
        )
        self._index_cache: Dict[Element, int] = {}
        self._enumerated = base.enumerate_elements()
        self._cache_limit = index_cache_limit
        # The extension is recursive, but its theory is in general *not*
        # decidable (Corollary 3.2 shows it cannot be for the trace domain).
        self.has_decidable_theory = False

    @property
    def base(self) -> Domain:
        """The domain being extended."""
        return self._base

    # -- carrier -------------------------------------------------------------

    def contains(self, element: Element) -> bool:
        return self._base.contains(element)

    def enumerate_elements(self) -> Iterator[Element]:
        return self._base.enumerate_elements()

    # -- the enumeration order ------------------------------------------------

    def index_of(self, element: Element) -> int:
        """The position of ``element`` in the base domain's enumeration."""
        if element in self._index_cache:
            return self._index_cache[element]
        for index, candidate in zip(itertools.count(len(self._index_cache)), self._enumerated):
            self._index_cache[candidate] = index
            if candidate == element:
                return index
            if index > self._cache_limit:
                break
        raise ValueError(
            f"element {element!r} not found within the first {self._cache_limit} "
            "elements of the enumeration"
        )

    # -- evaluation ----------------------------------------------------------

    def eval_function(self, name: str, args: Sequence[Element]) -> Element:
        return self._base.eval_function(name, args)

    def eval_predicate(self, name: str, args: Sequence[Element]) -> bool:
        if name == "<":
            return self.index_of(args[0]) < self.index_of(args[1])
        if name == "<=":
            return self.index_of(args[0]) <= self.index_of(args[1])
        return self._base.eval_predicate(name, args)

    # -- decidability ----------------------------------------------------------

    def decide(self, sentence: Formula) -> bool:
        raise TheoryUndecidableError(
            f"the ordered extension of {self._base.name!r} does not ship a decision "
            "procedure; Corollary 3.2 shows that for the trace domain none can exist"
        )


def extension_with_effective_syntax(base: Domain):
    """Corollary 2.4 packaged: the extension together with its finitization syntax."""
    extension = OrderedExtensionDomain(base)
    return extension, FinitizationSyntax()
