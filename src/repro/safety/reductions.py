"""The negative results of Section 3, as executable reductions.

* **Theorem 3.1 / Corollary 3.2** (no effective syntax over **T**): given a
  machine ``M``, the query ``M(x) ≡ P(M, c, x)`` is finite iff ``M`` is total.
  If a recursive (or r.e.) syntax for finite queries existed, then by deciding
  the pure-domain sentences

      ∀z ∀x ( M_k(x)[z/c]  ↔  φ_r(x)[z/c] )

  for all pairs of machines ``M_k`` and syntax members ``φ_r`` — possible
  because the theory of traces is decidable — one could recursively enumerate
  exactly the total Turing machines, which is impossible.
  :class:`TotalityEnumerator` implements that procedure literally, so that the
  experiment suite can run it on finite corpora and observe both directions of
  the biconditional.

* **Theorem 3.3** (relative safety over **T** undecidable): the query
  ``M(x)`` is finite in the state ``c := w`` iff ``M`` halts on ``w``.
  :func:`halting_reduction` produces the (query, state) instance;
  :func:`extract_halting_instance` inverts it (used by the trace-domain
  relative-safety decider).

The database-scheme technicality of the paper ("a constant is formally not a
database scheme") is handled the same way: the canonical encoding uses a
unary relation ``R`` constrained to be a singleton.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..domains.base import Domain
from ..domains.reach_traces import ReachTracesDomain
from ..logic.analysis import constants_of, free_variables
from ..logic.builders import conj, exists, forall, forall_many, iff, implies
from ..logic.formulas import Atom, Equals, Exists, ForAll, Formula, Implies, Not
from ..logic.substitution import replace_constant_with_variable, substitute
from ..logic.terms import Const, Var
from ..relational.schema import DatabaseSchema, RelationSchema
from ..relational.state import DatabaseState
from ..turing.encoding import decode_machine, encode_machine
from ..turing.machine import TuringMachine, run_machine
from ..turing.traces import trace_count, traces_of
from ..turing.words import is_input_word, is_machine_word

__all__ = [
    "REDUCTION_SCHEMA",
    "RELATION_NAME",
    "CONSTANT_PLACEHOLDER",
    "totality_query",
    "totality_query_with_relation",
    "totality_equivalence_sentence",
    "halting_reduction",
    "extract_halting_instance",
    "machine_is_total_on_sample",
    "machine_halts_within",
    "query_answer_when_finite",
    "TotalityEnumerator",
    "fresh_total_machine_not_in",
]

#: The one-relation database scheme used by the reductions: a unary relation
#: ``R`` that the queries constrain to be a singleton holding the input word.
RELATION_NAME = "R"
REDUCTION_SCHEMA = DatabaseSchema((RelationSchema(RELATION_NAME, 1),))

#: The distinguished constant symbol ``c`` of Theorem 3.1 is modelled as a
#: string constant with this placeholder value; ``[z/c]`` replaces it by a
#: variable via :func:`repro.logic.substitution.replace_constant_with_variable`.
CONSTANT_PLACEHOLDER = "__c__"


def totality_query(machine: Union[TuringMachine, str], constant: str = CONSTANT_PLACEHOLDER) -> Formula:
    """The query ``M(x) := P(M, c, x)`` of Theorem 3.1 (constant-symbol form).

    ``M(x)`` is finite iff the machine is total: for a total machine every
    input yields finitely many traces; for a non-total machine some input
    yields infinitely many.
    """
    machine_word = machine if isinstance(machine, str) else encode_machine(machine)
    if not is_machine_word(machine_word):
        raise ValueError(f"not a machine word: {machine_word!r}")
    return Atom("P", (Const(machine_word), Const(constant), Var("x")))


def totality_query_with_relation(machine: Union[TuringMachine, str]) -> Formula:
    """The database-scheme form of ``M(x)`` using the unary relation ``R``.

    ``M(x) := ∀y∀z (R(y) ∧ R(z) → y = z)  ∧  ∃y (R(y) ∧ P(M, y, x))``
    """
    machine_word = machine if isinstance(machine, str) else encode_machine(machine)
    functional = forall(
        "y",
        forall(
            "z",
            implies(
                conj(Atom(RELATION_NAME, (Var("y"),)), Atom(RELATION_NAME, (Var("z"),))),
                Equals(Var("y"), Var("z")),
            ),
        ),
    )
    member = exists(
        "y",
        conj(
            Atom(RELATION_NAME, (Var("y"),)),
            Atom("P", (Const(machine_word), Var("y"), Var("x"))),
        ),
    )
    return conj(functional, member)


def totality_equivalence_sentence(
    machine: Union[TuringMachine, str],
    candidate: Formula,
    constant: str = CONSTANT_PLACEHOLDER,
    variable: str = "z",
) -> Formula:
    """The Theorem 3.1 sentence ``∀z ∀x ( M_k(x)[z/c] ↔ φ_r(x)[z/c] )``.

    ``candidate`` is a purported finite query with one free variable ``x``
    that may mention the constant ``c`` (the placeholder constant); both
    queries have the constant replaced by the fresh variable ``z`` and the
    equivalence is universally closed.  The result is a *pure domain sentence*
    of the theory of traces, so it can be handed to the decision procedure.
    """
    query = totality_query(machine, constant=constant)
    z = Var(variable)
    query_z = replace_constant_with_variable(query, Const(constant), z)
    if Const(constant) in constants_of(candidate):
        candidate_z = replace_constant_with_variable(candidate, Const(constant), z)
    else:
        candidate_z = candidate
    body = iff(query_z, candidate_z)
    free = sorted(free_variables(body), key=lambda v: v.name)
    return forall_many([v.name for v in free], body)


# ---------------------------------------------------------------------------
# Theorem 3.3: halting  <->  relative safety
# ---------------------------------------------------------------------------


def halting_reduction(
    machine: Union[TuringMachine, str], input_word: str
) -> Tuple[Formula, DatabaseState]:
    """Map a halting instance ``(M, w)`` to a relative-safety instance.

    Returns the query ``M(x)`` (relation form) and the database state in which
    ``R = {w}``; the query is finite in that state iff ``M`` halts on ``w``
    (Theorem 3.3).
    """
    machine_word = machine if isinstance(machine, str) else encode_machine(machine)
    if not is_input_word(input_word):
        raise ValueError(f"not an input word: {input_word!r}")
    query = totality_query_with_relation(machine_word)
    state = DatabaseState(REDUCTION_SCHEMA, {RELATION_NAME: [(input_word,)]})
    return query, state


def extract_halting_instance(query: Formula, state: DatabaseState) -> Tuple[str, str]:
    """Invert :func:`halting_reduction`: recover ``(machine word, input word)``.

    Accepts both the relation form and the constant form of the query.  Raises
    ``ValueError`` if the query does not have the reduction shape.
    """
    machine_word: Optional[str] = None
    for constant in constants_of(query):
        value = constant.value
        if isinstance(value, str) and is_machine_word(value):
            machine_word = value
            break
    if machine_word is None:
        raise ValueError("the query does not mention a machine word constant")

    if RELATION_NAME in state.schema:
        rows = list(state[RELATION_NAME])
        if len(rows) != 1:
            raise ValueError("the reduction state must hold exactly one input word")
        input_word = str(rows[0][0])
    else:
        word_constants = [
            str(c.value)
            for c in constants_of(query)
            if isinstance(c.value, str) and is_input_word(str(c.value))
        ]
        if len(word_constants) != 1:
            raise ValueError("cannot determine the input word from the query")
        input_word = word_constants[0]
    if not is_input_word(input_word):
        raise ValueError(f"not an input word: {input_word!r}")
    return machine_word, input_word


def machine_halts_within(machine: Union[TuringMachine, str], input_word: str, fuel: int) -> Optional[bool]:
    """``True`` if the machine halts on ``input_word`` within ``fuel`` steps, else ``None``.

    (A ``False`` answer is never returned: halting is only semi-decidable.)
    """
    decoded = decode_machine(machine) if isinstance(machine, str) else machine
    result = run_machine(decoded, input_word, fuel)
    return True if result.halted else None


def machine_is_total_on_sample(
    machine: Union[TuringMachine, str], inputs: Iterable[str], fuel: int
) -> Optional[bool]:
    """Check totality on a finite sample of inputs.

    Returns ``False`` as soon as some sampled input exceeds the fuel (evidence
    of probable divergence — in our curated corpora this is exact), ``True``
    if every sampled input halts, and never claims more than the sample shows.
    """
    decoded = decode_machine(machine) if isinstance(machine, str) else machine
    for word in inputs:
        result = run_machine(decoded, word, fuel)
        if not result.halted:
            return False
    return True


def query_answer_when_finite(
    machine: Union[TuringMachine, str], input_word: str, fuel: int
) -> Optional[List[str]]:
    """The full (finite) answer to ``M(x)`` in state ``c := w``, if determinable.

    Returns the list of traces if the machine halts within ``fuel`` steps, and
    ``None`` otherwise (the answer may be infinite).
    """
    machine_word = machine if isinstance(machine, str) else encode_machine(machine)
    count = trace_count(machine_word, input_word, fuel)
    if count is None:
        return None
    return list(traces_of(machine_word, input_word, count))


# ---------------------------------------------------------------------------
# Theorem 3.1: the totality enumerator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TotalityCertificate:
    """A pair certified by the Theorem 3.1 procedure: the machine is total."""

    machine_word: str
    candidate: Formula
    sentence: Formula


class TotalityEnumerator:
    """The recursive enumeration of total machines extracted from a claimed syntax.

    Given an enumeration ``φ_1, φ_2, ...`` of a purported effective syntax for
    finite queries and an enumeration ``M_1, M_2, ...`` of all Turing
    machines, the paper's procedure checks, for every pair ``(k, r)``, the
    sentence ``∀z∀x(M_k(x)[z/c] ↔ φ_r(x)[z/c])`` with the decision procedure
    of the theory of traces.  Every certified machine is total; and if the
    syntax really contained (up to equivalence) all finite one-variable
    queries, every total machine would eventually be certified — contradicting
    the classical fact that the total machines are not recursively enumerable.
    """

    def __init__(self, domain: Optional[Domain] = None):
        self._domain = domain or ReachTracesDomain()

    def certify_pair(
        self, machine: Union[TuringMachine, str], candidate: Formula
    ) -> Optional[TotalityCertificate]:
        """Check one (machine, candidate) pair; return a certificate if it verifies."""
        machine_word = machine if isinstance(machine, str) else encode_machine(machine)
        sentence = totality_equivalence_sentence(machine_word, candidate)
        if self._domain.decide(sentence):
            return TotalityCertificate(machine_word, candidate, sentence)
        return None

    def enumerate_certified(
        self,
        machines: Sequence[Union[TuringMachine, str]],
        candidates: Sequence[Formula],
    ) -> Iterator[TotalityCertificate]:
        """Dovetail over all (machine, candidate) pairs, yielding certificates."""
        for machine, candidate in itertools.product(machines, candidates):
            certificate = self.certify_pair(machine, candidate)
            if certificate is not None:
                yield certificate


def fresh_total_machine_not_in(machine_words: Iterable[str]) -> TuringMachine:
    """A total machine whose canonical encoding differs from every given word.

    This is the finite-list face of the diagonal argument: any finite (or
    effectively given) list of machines omits some total machine.  We simply
    take "write ``n`` marks and halt" machines for growing ``n`` until the
    encoding is new; all of them are total.
    """
    from ..turing.builders import unary_writer

    excluded = set(machine_words)
    for n in itertools.count():
        machine = unary_writer(n)
        if encode_machine(machine) not in excluded:
            return machine
    raise AssertionError("unreachable")
