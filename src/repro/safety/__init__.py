"""Safety, relative safety, effective syntax, and the paper's reductions."""

from .classes import FinitenessStatus, QueryClass, SafetyVerdict
from .domain_independence import (
    active_domain_formula,
    answer_over_universe,
    check_domain_independence,
    fact_2_1_query,
)
from .effective_syntax import (
    ActiveDomainSyntax,
    EffectiveSyntax,
    ExtendedActiveDomainSyntax,
    FinitizationSyntax,
)
from .extension import OrderedExtensionDomain, extension_with_effective_syntax
from .finitization import (
    finitization_bound_part,
    finitize,
    is_finitization_of,
    split_finitization,
)
from .reductions import (
    CONSTANT_PLACEHOLDER,
    REDUCTION_SCHEMA,
    RELATION_NAME,
    TotalityEnumerator,
    extract_halting_instance,
    fresh_total_machine_not_in,
    halting_reduction,
    machine_halts_within,
    machine_is_total_on_sample,
    query_answer_when_finite,
    totality_equivalence_sentence,
    totality_query,
    totality_query_with_relation,
)
from .relative_safety import (
    EqualityRelativeSafety,
    OrderedRelativeSafety,
    RelativeSafetyDecider,
    RelativeSafetyUndecidable,
    SuccessorRelativeSafety,
    TraceRelativeSafety,
)

__all__ = [
    "QueryClass", "FinitenessStatus", "SafetyVerdict",
    "finitize", "finitization_bound_part", "split_finitization", "is_finitization_of",
    "EffectiveSyntax", "ActiveDomainSyntax", "FinitizationSyntax",
    "ExtendedActiveDomainSyntax",
    "RelativeSafetyDecider", "EqualityRelativeSafety", "OrderedRelativeSafety",
    "SuccessorRelativeSafety", "TraceRelativeSafety", "RelativeSafetyUndecidable",
    "active_domain_formula", "fact_2_1_query", "check_domain_independence",
    "answer_over_universe",
    "totality_query", "totality_query_with_relation", "totality_equivalence_sentence",
    "halting_reduction", "extract_halting_instance", "machine_halts_within",
    "machine_is_total_on_sample", "query_answer_when_finite",
    "TotalityEnumerator", "fresh_total_machine_not_in",
    "REDUCTION_SCHEMA", "RELATION_NAME", "CONSTANT_PLACEHOLDER",
    "OrderedExtensionDomain", "extension_with_effective_syntax",
]
