"""Query classifications: finite (safe), infinite, domain-independent.

A query is *finite* (the paper's "safe") iff it yields a finite answer in
every database state; it is *domain-independent* iff its answer is always
contained in the active domain.  Both properties are undecidable in general
(the safety problem), which is why the library traffics in *verdicts* that
carry the method used and, when possible, a certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

__all__ = ["QueryClass", "SafetyVerdict", "FinitenessStatus"]


class QueryClass(Enum):
    """Semantic classes of queries studied in the paper."""

    FINITE = "finite"
    INFINITE = "infinite"
    DOMAIN_INDEPENDENT = "domain-independent"


class FinitenessStatus(Enum):
    """Outcome of a finiteness check (three-valued: the problem is undecidable)."""

    FINITE = "finite"
    INFINITE = "infinite"
    UNKNOWN = "unknown"

    @property
    def is_finite(self) -> Optional[bool]:
        """``True``/``False`` when determined, ``None`` when unknown."""
        if self is FinitenessStatus.FINITE:
            return True
        if self is FinitenessStatus.INFINITE:
            return False
        return None


@dataclass(frozen=True)
class SafetyVerdict:
    """The result of a safety / relative-safety check.

    ``status`` is the three-valued outcome; ``method`` names the procedure
    that produced it (e.g. ``"finitization-equivalence"``); ``details`` is a
    human-readable explanation, and ``witnesses`` optionally carries evidence
    (e.g. a tuple outside the active domain satisfying the query).
    """

    status: FinitenessStatus
    method: str
    details: str = ""
    witnesses: Tuple = ()

    @classmethod
    def finite(cls, method: str, details: str = "", witnesses: Tuple = ()) -> "SafetyVerdict":
        """A verdict asserting the answer is finite."""
        return cls(FinitenessStatus.FINITE, method, details, witnesses)

    @classmethod
    def infinite(cls, method: str, details: str = "", witnesses: Tuple = ()) -> "SafetyVerdict":
        """A verdict asserting the answer is infinite."""
        return cls(FinitenessStatus.INFINITE, method, details, witnesses)

    @classmethod
    def unknown(cls, method: str, details: str = "") -> "SafetyVerdict":
        """A verdict reporting that the procedure could not determine finiteness."""
        return cls(FinitenessStatus.UNKNOWN, method, details)

    @property
    def is_finite(self) -> Optional[bool]:
        """``True``/``False`` when determined, ``None`` when unknown."""
        return self.status.is_finite
