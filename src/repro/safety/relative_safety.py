"""Relative safety: is a query finite in a *given* database state?

The paper's results, in implementation form:

* pure-equality domain (Section 2): decidable — fix one fresh element outside
  the active domain and check whether any tuple involving it satisfies the
  query (:class:`EqualityRelativeSafety`);
* decidable extensions of ``(N, <)`` (Theorem 2.5): decidable — in a fixed
  state the query is finite iff it is equivalent to its finitization, and the
  equivalence is a pure domain sentence that the domain's decision procedure
  settles (:class:`OrderedRelativeSafety`);
* ``(N, ')`` (Theorem 2.6): decidable — eliminate quantifiers, then analyse
  the resulting quantifier-free formula clause by clause: a clause with a
  satisfiable constraint system whose variables are not all anchored to
  constants has infinitely many solutions (:class:`SuccessorRelativeSafety`);
* the trace domain **T** (Theorem 3.3): *undecidable* — the query
  ``P(M, c, x)`` is finite in state ``c := w`` iff machine ``M`` halts on
  ``w``.  :class:`TraceRelativeSafety` therefore only offers a fuel-bounded
  semi-decision procedure and an oracle-parameterised decision procedure; the
  reduction itself lives in :mod:`repro.safety.reductions`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..domains.base import Domain
from ..domains.presburger import PresburgerDomain
from ..domains.successor import SuccessorDomain, eliminate_successor_quantifiers, parse_successor_term
from ..logic.analysis import all_variables, free_variables, quantifier_depth
from ..logic.builders import conj, exists_many, forall_many, iff
from ..logic.formulas import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    ForAll,
    Formula,
    Implies,
    Not,
    Or,
    Top,
)
from ..logic.substitution import fresh_variables
from ..logic.terms import Const, Var
from ..relational.active_domain import active_domain
from ..relational.calculus import evaluate_query
from ..relational.state import DatabaseState
from ..relational.translate import expand_database_atoms
from ..turing.machine import run_machine
from ..turing.encoding import decode_machine
from .classes import SafetyVerdict
from .finitization import finitize

__all__ = [
    "RelativeSafetyDecider",
    "EqualityRelativeSafety",
    "OrderedRelativeSafety",
    "DenseOrderRelativeSafety",
    "FiniteCarrierSafety",
    "SuccessorRelativeSafety",
    "TraceRelativeSafety",
    "RelativeSafetyUndecidable",
]


class RelativeSafetyUndecidable(RuntimeError):
    """Raised when a decider is asked to solve an instance it provably cannot."""


class RelativeSafetyDecider(ABC):
    """Decide (or semi-decide) finiteness of a query in a given state."""

    name: str = "relative-safety"

    @abstractmethod
    def decide(self, query: Formula, state: DatabaseState) -> SafetyVerdict:
        """Return a verdict on the finiteness of ``query`` in ``state``."""


class EqualityRelativeSafety(RelativeSafetyDecider):
    """Relative safety over the pure-equality domain (Section 2).

    A query is finite in a state iff no tuple containing an element outside
    the active domain satisfies it; by the symmetry of the domain it suffices
    to test tuples built from the active domain plus a single fresh element.
    """

    name = "equality-fresh-element"

    def __init__(self, domain):
        self._domain = domain
        # Compiled probe plans, memoised per (query, schema): a CompiledQuery
        # is state-independent, so entries never go stale.  Imported lazily —
        # repro.engine imports this module at package-init time.
        from ..engine.plan_cache import PlanCache

        self._probe_plans = PlanCache(maxsize=64)

    def decide(self, query: Formula, state: DatabaseState) -> SafetyVerdict:
        base = sorted(active_domain(state, query), key=repr)
        rank = quantifier_depth(query)
        fresh = self._domain.fresh_elements(rank + 1, avoid=base)
        if not fresh:
            raise RuntimeError("the carrier is too small to supply fresh elements")
        probe = fresh[0]
        universe = list(base) + fresh
        # The probe evaluation is itself an active-domain query over the
        # enlarged universe, so it benefits from the compiled algebra backend
        # exactly like ordinary evaluation does; the tree walker remains the
        # fallback for queries that do not compile.
        compiled = self._compiled_probe(query, state.schema)
        if compiled is None:
            answer = evaluate_query(
                query, universe, state=state, interpretation=self._domain
            )
        else:
            answer = compiled.execute(state, self._domain, extra_elements=fresh)
        escaping = [row for row in answer.rows if probe in row]
        if escaping:
            return SafetyVerdict.infinite(
                method=self.name,
                details="a tuple containing a fresh element satisfies the query; "
                "by symmetry infinitely many do",
                witnesses=tuple(sorted(escaping)),
            )
        return SafetyVerdict.finite(
            method=self.name,
            details="no tuple containing a fresh element satisfies the query",
        )

    def _compiled_probe(self, query: Formula, schema):
        """The memoised compiled plan for ``query``, or ``None`` when the
        query has no algebra translation (failures are memoised too)."""
        from ..relational.compile import CompilationError, compile_query

        key = (query, schema)
        if key in self._probe_plans:
            return self._probe_plans.get(key)
        try:
            compiled = compile_query(query, schema, self._domain)
        except CompilationError:
            compiled = None
        self._probe_plans.put(key, compiled)
        return compiled


class OrderedRelativeSafety(RelativeSafetyDecider):
    """Theorem 2.5: relative safety for decidable extensions of ``(N, <)``.

    In a fixed state the query is translated into a pure domain formula
    ``φ'``; it yields a finite answer iff ``φ'`` is equivalent to its
    finitization, a sentence the domain's decision procedure settles.
    """

    name = "finitization-equivalence"

    def __init__(
        self,
        domain: Optional[Domain] = None,
        memo_size: int = 64,
        integers: Optional[bool] = None,
    ):
        self._domain = domain or PresburgerDomain()
        if not self._domain.has_decidable_theory:
            raise ValueError("Theorem 2.5 requires a decidable extension of (N, <)")
        # Over carriers unbounded in both directions (the integers) the
        # finitization must bound answers from below as well as above —
        # ``x < 0`` is finite over N but infinite over Z.  Auto-detect from
        # Presburger-style domains; other ordered carriers pass it explicitly.
        if integers is None:
            integers = getattr(self._domain, "naturals", True) is False
        self._integers = integers
        # Verdicts memoised per (formula, state fingerprint): expanding the
        # database atoms builds a disjunction per stored row and the decision
        # procedure then quantifier-eliminates it, so a guarded serving
        # workload re-deciding the same query on an unchanged state pays the
        # full cost every time without this.  Both keys are immutable value
        # objects (states carry a cached fingerprint hash), so entries can
        # never go stale.  Imported lazily — repro.engine imports this module
        # at package-init time.
        from ..engine.plan_cache import PlanCache

        self._verdicts = PlanCache(maxsize=memo_size)

    def memo_info(self):
        """Hit/miss/eviction counters of the per-(formula, state) memo."""
        return self._verdicts.info()

    def decide(self, query: Formula, state: DatabaseState) -> SafetyVerdict:
        key = (query, state)
        cached = self._verdicts.get(key)
        if cached is not None:
            return cached
        verdict = self._decide_uncached(query, state)
        self._verdicts.put(key, verdict)
        return verdict

    def _decide_uncached(self, query: Formula, state: DatabaseState) -> SafetyVerdict:
        pure = expand_database_atoms(query, state)
        # The answer columns are the free variables of the *query*; expanding the
        # database atoms may make some of them vanish syntactically (e.g. when a
        # stored relation is empty), but they still index the answer.
        variables = sorted(free_variables(query), key=lambda v: v.name)
        equivalence = forall_many(
            [v.name for v in variables],
            iff(pure, finitize(pure, free_order=variables, integers=self._integers)),
        )
        finite = self._domain.decide(equivalence)
        if finite:
            return SafetyVerdict.finite(
                method=self.name,
                details="the query is equivalent to its finitization in this state",
            )
        return SafetyVerdict.infinite(
            method=self.name,
            details="the query differs from its finitization in this state, "
            "so its answer is unbounded",
        )


class DenseOrderRelativeSafety(RelativeSafetyDecider):
    """Relative safety over dense linear orders such as ``(Q, <)``.

    Density breaks the finitization argument of Theorem 2.5: a bounded
    definable set can still be infinite (any open interval is).  The decider
    uses the structure of definable sets instead.  A set of tuples is finite
    iff each of its one-dimensional projections is, and by quantifier
    elimination a ``(Q, <)``-definable subset of the line is a finite union
    of points and intervals — finite iff it is **bounded** and contains **no
    nonempty open interval**.  Both conditions are pure domain sentences that
    the domain's decision procedure settles.
    """

    name = "projection-finiteness"

    def __init__(self, domain: Optional[Domain] = None, memo_size: int = 64):
        if domain is None:
            from ..domains.dense_order import DenseOrderDomain

            domain = DenseOrderDomain()
        if not domain.has_decidable_theory:
            raise ValueError("projection finiteness needs a decidable dense order")
        self._domain = domain
        # Memoised like OrderedRelativeSafety: keys are immutable value
        # objects, so entries never go stale.
        from ..engine.plan_cache import PlanCache

        self._verdicts = PlanCache(maxsize=memo_size)

    def memo_info(self):
        """Hit/miss/eviction counters of the per-(formula, state) memo."""
        return self._verdicts.info()

    def decide(self, query: Formula, state: DatabaseState) -> SafetyVerdict:
        key = (query, state)
        cached = self._verdicts.get(key)
        if cached is not None:
            return cached
        verdict = self._decide_uncached(query, state)
        self._verdicts.put(key, verdict)
        return verdict

    def _decide_uncached(self, query: Formula, state: DatabaseState) -> SafetyVerdict:
        pure = expand_database_atoms(query, state)
        variables = sorted(free_variables(query), key=lambda v: v.name)
        if not variables:
            return SafetyVerdict.finite(
                method=self.name, details="a sentence has at most one answer row"
            )
        used = set(all_variables(pure)) | set(variables)
        for variable in variables:
            others = [v.name for v in variables if v != variable]
            projection = exists_many(others, pure)
            if not self._domain.decide(self._bounded(projection, variable, used)):
                return SafetyVerdict.infinite(
                    method=self.name,
                    details=f"the projection onto {variable.name!r} is unbounded",
                )
            if self._domain.decide(self._has_interval(projection, variable, used)):
                return SafetyVerdict.infinite(
                    method=self.name,
                    details=f"the projection onto {variable.name!r} contains an "
                    "open interval, which is infinite by density",
                )
        return SafetyVerdict.finite(
            method=self.name,
            details="every one-dimensional projection is bounded and contains "
            "no open interval",
        )

    @staticmethod
    def _bounded(projection: Formula, variable: Var, used) -> Formula:
        """``∃l ∃u ∀x (proj(x) → l < x ∧ x < u)``."""
        low, high = fresh_variables(2, used, stem="b")
        body = Implies(
            projection, conj(Atom("<", (low, variable)), Atom("<", (variable, high)))
        )
        return Exists(low.name, Exists(high.name, ForAll(variable.name, body)))

    @staticmethod
    def _has_interval(projection: Formula, variable: Var, used) -> Formula:
        """``∃a ∃b (a < b ∧ ∀x (a < x ∧ x < b → proj(x)))``."""
        left, right = fresh_variables(2, used, stem="i")
        inside = conj(Atom("<", (left, variable)), Atom("<", (variable, right)))
        body = conj(
            Atom("<", (left, right)),
            ForAll(variable.name, Implies(inside, projection)),
        )
        return Exists(left.name, Exists(right.name, body))


class FiniteCarrierSafety(RelativeSafetyDecider):
    """The trivial safety decider for domains whose carrier is finite.

    Over a finite carrier every query answer is a subset of a finite product,
    hence finite — including ``¬S(x)`` and ``x = x``, the canonical infinite
    queries everywhere else.
    """

    name = "finite-carrier"

    def __init__(self, domain: Domain):
        self._domain = domain

    def decide(self, query: Formula, state: DatabaseState) -> SafetyVerdict:
        size = len(self._domain.carrier_elements())
        return SafetyVerdict.finite(
            method=self.name,
            details=f"the carrier of {self._domain.name!r} has only {size} "
            "elements, so every answer is finite",
        )


@dataclass
class _OffsetUnionFind:
    """Union-find over variables with integer offsets: ``x = y + offset``."""

    parent: Dict[str, str]
    offset: Dict[str, int]  # value(x) = value(find(x)) + offset[x]
    anchor: Dict[str, Optional[int]]  # concrete value of a root, if known

    @classmethod
    def empty(cls) -> "_OffsetUnionFind":
        return cls({}, {}, {})

    def add(self, item: str) -> None:
        if item not in self.parent:
            self.parent[item] = item
            self.offset[item] = 0
            self.anchor[item] = None

    def find(self, item: str) -> Tuple[str, int]:
        self.add(item)
        if self.parent[item] == item:
            return item, 0
        root, above = self.find(self.parent[item])
        self.parent[item] = root
        self.offset[item] += above
        return root, self.offset[item]

    def union(self, left: str, right: str, delta: int) -> bool:
        """Record ``value(left) = value(right) + delta``; False on contradiction."""
        lroot, loff = self.find(left)
        rroot, roff = self.find(right)
        if lroot == rroot:
            return loff == roff + delta
        # value(lroot) = value(rroot) + (roff + delta - loff)
        self.parent[lroot] = rroot
        self.offset[lroot] = roff + delta - loff
        left_anchor = self.anchor.pop(lroot)
        if left_anchor is not None:
            return self.anchor_value(lroot, left_anchor)
        return True

    def anchor_value(self, item: str, value: int) -> bool:
        """Record ``value(item) = value``; False on contradiction or negativity."""
        root, off = self.find(item)
        root_value = value - off
        if root_value < 0:
            return False
        existing = self.anchor.get(root)
        if existing is None:
            self.anchor[root] = root_value
            return True
        return existing == root_value

    def value_of(self, item: str) -> Optional[int]:
        root, off = self.find(item)
        base = self.anchor.get(root)
        if base is None:
            return None
        return base + off


class SuccessorRelativeSafety(RelativeSafetyDecider):
    """Theorem 2.6: relative safety for ``(N, ')``.

    The query (with the state folded in) is reduced to a quantifier-free
    formula by the Section 2.2 elimination; a clause of its DNF contributes an
    infinite set of solutions iff its positive equalities are consistent, its
    negative literals are satisfiable, and some free variable is not anchored
    (through positive equalities) to a concrete natural number.
    """

    name = "successor-clause-analysis"

    def __init__(self, domain: Optional[SuccessorDomain] = None):
        self._domain = domain or SuccessorDomain()

    def decide(self, query: Formula, state: DatabaseState) -> SafetyVerdict:
        pure = expand_database_atoms(query, state)
        quantifier_free = eliminate_successor_quantifiers(pure)
        variables = sorted(v.name for v in free_variables(query))
        status = self._classify(quantifier_free, variables)
        if status:
            return SafetyVerdict.infinite(
                method=self.name,
                details="a satisfiable clause leaves a free variable unanchored, "
                "so it has infinitely many solutions",
            )
        return SafetyVerdict.finite(
            method=self.name,
            details="every satisfiable clause anchors all free variables to constants",
        )

    def _classify(self, quantifier_free: Formula, variables: Sequence[str]) -> bool:
        """True iff the quantifier-free formula has infinitely many solutions."""
        from ..logic.transform import dnf_clauses

        for clause in dnf_clauses(quantifier_free):
            if self._clause_is_infinite(clause, variables):
                return True
        return False

    def _clause_is_infinite(self, clause: Sequence[Formula], variables: Sequence[str]) -> bool:
        union_find = _OffsetUnionFind.empty()
        negatives: List[Tuple] = []
        for literal in clause:
            positive = True
            body = literal
            if isinstance(literal, Not):
                positive = False
                body = literal.body
            if isinstance(body, Top):
                continue
            if isinstance(body, Bottom):
                if positive:
                    return False
                continue
            if not isinstance(body, Equals):
                raise ValueError(f"unexpected literal in successor clause: {literal!r}")
            left = parse_successor_term(body.left)
            right = parse_successor_term(body.right)
            if not positive:
                negatives.append((left, right))
                continue
            if left.base is None and right.base is None:
                if left.shift != right.shift:
                    return False
                continue
            if left.base is None:
                if not union_find.anchor_value(right.base, left.shift - right.shift):
                    return False
                continue
            if right.base is None:
                if not union_find.anchor_value(left.base, right.shift - left.shift):
                    return False
                continue
            if not union_find.union(left.base, right.base, right.shift - left.shift):
                return False

        if not variables:
            return False

        unanchored = [v for v in variables if union_find.value_of(v) is None]
        if not unanchored:
            # Every free variable has a single possible value in this clause;
            # the clause contributes at most one tuple, hence finitely many.
            return False

        # The clause has free play in the unanchored variables.  Negative
        # literals exclude only finitely many values, so if they are jointly
        # satisfiable at all (which they are, by choosing the unanchored
        # components large and far apart) the clause has infinitely many
        # solutions.  The only remaining failure mode is a negative literal
        # contradicted by the positive equalities alone.
        for left, right in negatives:
            if left.base is None and right.base is None:
                if left.shift == right.shift:
                    return False
                continue
            if left.base is not None and right.base is not None:
                lroot, loff = union_find.find(left.base)
                rroot, roff = union_find.find(right.base)
                if lroot == rroot and loff + left.shift == roff + right.shift:
                    return False
                continue
            variable_term = left if left.base is not None else right
            constant_term = right if left.base is not None else left
            value = union_find.value_of(variable_term.base)
            if value is not None and value + variable_term.shift == constant_term.shift:
                return False
        return True


class TraceRelativeSafety(RelativeSafetyDecider):
    """Theorem 3.3: relative safety over the trace domain is undecidable.

    :meth:`decide` raises :class:`RelativeSafetyUndecidable` for queries built
    by the halting reduction (there is provably no algorithm); use
    :meth:`semi_decide` for a fuel-bounded attempt or :meth:`decide_with_oracle`
    to see how a halting oracle would settle every instance.
    """

    name = "trace-relative-safety"

    def decide(self, query: Formula, state: DatabaseState) -> SafetyVerdict:
        raise RelativeSafetyUndecidable(
            "relative safety over the trace domain reduces from the halting "
            "problem (Theorem 3.3); use semi_decide(fuel=...) or "
            "decide_with_oracle(...)"
        )

    @staticmethod
    def _reduction_instance(query: Formula, state: DatabaseState) -> Tuple[str, str]:
        """Extract (machine word, input word) from a halting-reduction instance."""
        from .reductions import extract_halting_instance

        return extract_halting_instance(query, state)

    def semi_decide(
        self, query: Formula, state: DatabaseState, fuel: int = 10_000
    ) -> SafetyVerdict:
        """Bounded simulation: FINITE if the machine halts within ``fuel`` steps."""
        machine_word, input_word = self._reduction_instance(query, state)
        result = run_machine(decode_machine(machine_word), input_word, fuel)
        if result.halted:
            return SafetyVerdict.finite(
                method="bounded-simulation",
                details=f"the machine halts after {result.steps} steps, so the "
                "set of traces (the query answer) is finite",
            )
        return SafetyVerdict.unknown(
            method="bounded-simulation",
            details=f"the machine did not halt within {fuel} steps; finiteness "
            "remains undetermined (and is undecidable in general)",
        )

    def decide_with_oracle(
        self, query: Formula, state: DatabaseState, halting_oracle
    ) -> SafetyVerdict:
        """Decide relative safety given an oracle for the halting problem."""
        machine_word, input_word = self._reduction_instance(query, state)
        if halting_oracle(machine_word, input_word):
            return SafetyVerdict.finite(
                method="halting-oracle",
                details="the oracle asserts the machine halts, so the answer is finite",
            )
        return SafetyVerdict.infinite(
            method="halting-oracle",
            details="the oracle asserts the machine diverges, so there are "
            "infinitely many traces",
        )
