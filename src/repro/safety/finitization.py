"""The finitization operator of Theorem 2.2.

For a formula ``φ(x1, ..., xk)`` over (an extension of) the ordered natural
numbers, its *finitization* is

    φ^F(x1, ..., xk)  :=  φ(x1, ..., xk)
                          ∧ ∃m ∀x1 ... ∀xk ( φ(x1, ..., xk) → ⋀_i xi < m )

The second conjunct states that some element exceeds every tuple in the
answer, hence:

* ``φ^F`` is always finite, and
* if ``φ`` is finite then ``φ^F`` is equivalent to ``φ``.

Consequently the set of finitizations of all formulas is a recursive syntax
for the finite queries (Theorem 2.2); the same trick works for Presburger
arithmetic and for full arithmetic (Corollary 2.3), and a minor modification
(bounding from below as well) handles the integers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..logic.analysis import all_variables, free_variables
from ..logic.builders import conj
from ..logic.formulas import And, Atom, Exists, ForAll, Formula, Implies
from ..logic.substitution import fresh_variable
from ..logic.terms import Var

__all__ = ["finitize", "finitization_bound_part", "is_finitization_of", "split_finitization"]


def _ordered_free_variables(formula: Formula, order: Optional[Sequence[Var]] = None):
    if order is not None:
        return list(order)
    return sorted(free_variables(formula), key=lambda v: v.name)


def finitization_bound_part(
    formula: Formula,
    free_order: Optional[Sequence[Var]] = None,
    integers: bool = False,
) -> Formula:
    """The sentence ``∃m ∀x̄ (φ → ⋀ xi < m)`` (plus a lower bound for integers)."""
    variables = _ordered_free_variables(formula, free_order)
    used = set(all_variables(formula)) | set(variables)
    upper = fresh_variable(used, stem="m")
    used.add(upper)
    bounds = [Atom("<", (v, upper)) for v in variables]
    quantified_vars = list(variables)
    if integers:
        lower = fresh_variable(used, stem="l")
        bounds = [
            conj(Atom("<", (lower, v)), Atom("<", (v, upper))) for v in variables
        ]
        inner: Formula = Implies(formula, conj(*bounds))
        for v in reversed(quantified_vars):
            inner = ForAll(v.name, inner)
        return Exists(lower.name, Exists(upper.name, inner))
    inner = Implies(formula, conj(*bounds))
    for v in reversed(quantified_vars):
        inner = ForAll(v.name, inner)
    return Exists(upper.name, inner)


def finitize(
    formula: Formula,
    free_order: Optional[Sequence[Var]] = None,
    integers: bool = False,
) -> Formula:
    """The finitization ``φ^F`` of Theorem 2.2.

    The result is literally the two-conjunct formula of the paper, built with
    a plain :class:`~repro.logic.formulas.And` node (not flattened), so that
    :func:`split_finitization` can recover the original formula and the
    finitization syntax is recursively recognisable.
    """
    bound_part = finitization_bound_part(formula, free_order, integers)
    return And((formula, bound_part))


def split_finitization(formula: Formula) -> Optional[Formula]:
    """If ``formula`` is syntactically a finitization ``φ^F``, return ``φ``.

    Returns ``None`` when the formula does not have the finitization shape.
    """
    if not isinstance(formula, And) or len(formula.conjuncts) != 2:
        return None
    core, bound = formula.conjuncts
    for integers in (False, True):
        if bound == finitization_bound_part(core, integers=integers):
            return core
    return None


def is_finitization_of(candidate: Formula, original: Formula, integers: bool = False) -> bool:
    """True iff ``candidate`` is exactly the finitization of ``original``."""
    return candidate == finitize(original, integers=integers)
