"""Deterministic test harnesses shipped with the library.

Currently one member: :mod:`repro.testing.faults`, the seeded
fault-injection harness behind the ``faults`` conformance check and the
chaos CI job.  The package deliberately imports nothing from the rest of
``repro`` so every layer (relational executors, serving, conformance) can
hook into it without import cycles.
"""

from . import faults

__all__ = ["faults"]
