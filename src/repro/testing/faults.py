"""Deterministic fault injection for the execution and serving stacks.

The production code paths carry **named injection points** — one-line hooks
that are no-ops until a :class:`FaultPlan` is activated:

* ``"kernel-entry"`` — the vectorized/parallel columnar executor, before
  each operator's kernel dispatch;
* ``"pool-submit"`` — the morsel-parallel executor, before each wave of
  worker-pool submissions;
* ``"plan-store-io"`` — the on-disk plan store, around pickle read/write
  (the only point where ``"corrupt-pickle"`` mangles bytes instead of
  raising);
* ``"maintenance-rule"`` — the ΔQ maintenance engine, before each node's
  maintenance rule.

A plan is a list of :class:`FaultSpec` triggers: *at hit ``after`` of point
``P``, do ``kind``* — raise an :class:`InjectedFault`, sleep ``delay``
seconds, or corrupt the bytes passing through.  :meth:`FaultPlan.seeded`
derives the trigger offsets from a seed, and :meth:`FaultPlan.matrix`
enumerates one seeded plan per (point, kind) pair — the fixed matrix the
``faults`` conformance check and the chaos CI job run over.

Everything is deterministic given the seed and the execution, and the whole
module is thread-safe: hooks fire on the coordinating thread, but counters
are locked anyway so worker-thread hooks stay correct.

>>> plan = FaultPlan([FaultSpec("kernel-entry", "exception", after=1)])
>>> with inject(plan):
...     fire("kernel-entry")      # hit 0: below the trigger
...     try:
...         fire("kernel-entry")  # hit 1: trips
...     except InjectedFault as error:
...         print("tripped:", error.point)
tripped: kernel-entry
>>> fire("kernel-entry")          # inactive outside the context: no-op
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "INJECTION_POINTS",
    "FAULT_KINDS",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "inject",
    "active",
    "fire",
    "corrupt",
]

#: every named injection point wired into the production code paths
INJECTION_POINTS: Tuple[str, ...] = (
    "kernel-entry",
    "pool-submit",
    "plan-store-io",
    "maintenance-rule",
)

#: the fault behaviours a spec can trigger
FAULT_KINDS: Tuple[str, ...] = ("exception", "delay", "corrupt-pickle")


class InjectedFault(RuntimeError):
    """The structured failure an ``"exception"`` spec raises.

    Deliberately *not* a subclass of any engine error: the fallback ladder
    and the serving layer must degrade it like an arbitrary substrate fault.
    """

    def __init__(self, message: str, *, point: str, hit: int) -> None:
        super().__init__(message)
        self.point = point
        self.hit = hit


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: at hit ``after`` (0-based) of ``point``, do ``kind``
    for ``count`` consecutive hits (``None`` = every hit from ``after`` on)."""

    point: str
    kind: str
    after: int = 0
    count: Optional[int] = 1
    delay: float = 0.02

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; "
                f"expected one of {INJECTION_POINTS}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.after < 0:
            raise ValueError(f"after must be non-negative, got {self.after!r}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be positive or None, got {self.count!r}")
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay!r}")

    def covers(self, hit: int) -> bool:
        if hit < self.after:
            return False
        return self.count is None or hit < self.after + self.count


class FaultPlan:
    """A deterministic set of fault triggers plus per-point hit counters."""

    def __init__(self, specs: Sequence[FaultSpec], label: str = "") -> None:
        self.specs = tuple(specs)
        self.label = label or ", ".join(
            f"{spec.kind}@{spec.point}#{spec.after}" for spec in self.specs
        )
        self._hits: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return f"FaultPlan({self.label})"

    def trigger(self, point: str) -> Tuple[Optional[FaultSpec], int]:
        """Count one hit of ``point``; the spec covering it (if any) and the
        hit index."""
        with self._lock:
            hit = self._hits.get(point, 0)
            self._hits[point] = hit + 1
            for spec in self.specs:
                if spec.point == point and spec.covers(hit):
                    self._fired[point] = self._fired.get(point, 0) + 1
                    return spec, hit
            return None, hit

    def hits(self) -> Dict[str, int]:
        """Hits observed per point (did the instrumented path actually run?)."""
        with self._lock:
            return dict(self._hits)

    def fired(self) -> Dict[str, int]:
        """Faults actually triggered per point."""
        with self._lock:
            return dict(self._fired)

    @classmethod
    def seeded(
        cls,
        seed: object,
        *,
        points: Sequence[str] = INJECTION_POINTS,
        kinds: Sequence[str] = ("exception", "delay"),
        max_after: int = 3,
    ) -> "FaultPlan":
        """One plan with a seeded random (point, kind, offset) triple."""
        rng = random.Random(f"faults/{seed}")
        point = rng.choice(tuple(points))
        kind = rng.choice(tuple(kinds))
        after = rng.randrange(max_after + 1)
        return cls(
            [FaultSpec(point, kind, after=after)], label=f"seed={seed!r}"
        )

    @classmethod
    def matrix(cls, seed: object, *, max_after: int = 3) -> "List[FaultPlan]":
        """One plan per applicable (point, kind) pair, offsets seeded.

        ``"corrupt-pickle"`` only means anything where bytes flow through
        (the plan store), so the matrix pairs it with ``"plan-store-io"``
        alone; every point gets ``"exception"`` and ``"delay"``.
        """
        rng = random.Random(f"faults-matrix/{seed}")
        plans: List[FaultPlan] = []
        for point in INJECTION_POINTS:
            kinds: Tuple[str, ...] = ("exception", "delay")
            if point == "plan-store-io":
                kinds += ("corrupt-pickle",)
            for kind in kinds:
                after = rng.randrange(max_after + 1)
                plans.append(
                    cls(
                        [FaultSpec(point, kind, after=after)],
                        label=f"{kind}@{point}#{after} (seed={seed!r})",
                    )
                )
        return plans


_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_LOCK = threading.Lock()


def active() -> Optional[FaultPlan]:
    """The currently injected plan, or ``None`` (the production state)."""
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the dynamic extent of the block.

    Injection is process-global (the hooks live in shared executors), so
    nesting or concurrent activation is refused rather than silently
    interleaved.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError(
                f"a fault plan is already active ({_ACTIVE!r}); "
                "fault injection does not nest"
            )
        _ACTIVE = plan
    try:
        yield plan
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = None


def fire(point: str) -> None:
    """The injection hook: no-op unless an active spec covers this hit.

    ``"exception"`` raises :class:`InjectedFault`; ``"delay"`` sleeps the
    spec's ``delay``; ``"corrupt-pickle"`` is meaningless without a byte
    stream and degrades to an exception so a mis-paired spec still fails
    loudly instead of passing silently.
    """
    plan = _ACTIVE
    if plan is None:
        return
    spec, hit = plan.trigger(point)
    if spec is None:
        return
    if spec.kind == "delay":
        time.sleep(spec.delay)
        return
    raise InjectedFault(
        f"injected {spec.kind} at {point!r} (hit #{hit})", point=point, hit=hit
    )


def corrupt(point: str, blob: bytes) -> bytes:
    """The byte-stream injection hook (plan-store I/O).

    ``"corrupt-pickle"`` returns a mangled copy of ``blob``; the other kinds
    behave exactly like :func:`fire`.
    """
    plan = _ACTIVE
    if plan is None:
        return blob
    spec, hit = plan.trigger(point)
    if spec is None:
        return blob
    if spec.kind == "delay":
        time.sleep(spec.delay)
        return blob
    if spec.kind == "corrupt-pickle":
        # Flip bytes mid-stream; keep the length so size checks still pass.
        middle = len(blob) // 2
        mangled = bytearray(blob)
        for offset in range(middle, min(middle + 8, len(mangled))):
            mangled[offset] ^= 0xFF
        return bytes(mangled)
    raise InjectedFault(
        f"injected {spec.kind} at {point!r} (hit #{hit})", point=point, hit=hit
    )
