"""Server policy: the knobs that turn the library into a multi-tenant service.

A single :class:`ServerPolicy` value configures every serving component —
session lifecycle (:mod:`repro.serve.sessions`), admission control
(:mod:`repro.serve.admission`), the shared/persistent plan cache
(:mod:`repro.serve.plan_store`), and the HTTP front end
(:mod:`repro.serve.server`).  It is a frozen dataclass so a running server's
policy can be reported verbatim from ``/stats`` without aliasing worries.

The one piece of *behaviour* here is :meth:`ServerPolicy.clamp`: per-request
:class:`~repro.engine.budget.Budget` values are taken from the client but
**clamped** by the server's caps, so no request can buy more enumeration
candidates, answer rows, fuel, or wall-clock than the operator allows.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from ..engine.budget import Budget

__all__ = ["ServerPolicy", "DEFAULT_POLICY"]


@dataclass(frozen=True)
class ServerPolicy:
    """Operator-set limits and sizes for one server process."""

    # -- session lifecycle ---------------------------------------------------
    #: sessions kept alive at once; beyond this the least recently used is
    #: evicted (even if not yet expired)
    max_sessions: int = 64
    #: idle seconds before a session expires (TTL; refreshed on every use)
    session_ttl: float = 300.0

    # -- per-request budget caps --------------------------------------------
    #: hard ceilings a request's Budget is clamped to (see :meth:`clamp`)
    max_rows_cap: int = 10_000
    max_candidates_cap: int = 100_000
    fuel_cap: int = 100_000
    #: wall-clock ceiling per request, seconds (also the default when the
    #: request does not set a time limit)
    time_limit_cap: float = 30.0

    # -- rate limiting / queueing -------------------------------------------
    #: token-bucket refill rate per session id, requests/second
    rate: float = 50.0
    #: token-bucket capacity (burst size) per session id
    burst: int = 20
    #: requests admitted concurrently (running + queued on the thread pool);
    #: beyond this the server rejects fast with 503 instead of queueing
    max_inflight: int = 32
    #: worker threads executing queries (distinct sessions run concurrently;
    #: one session's queries serialize on its lock)
    workers: int = 8
    #: worker threads in the process-wide *morsel* pool the parallel
    #: substrate dispatches NumPy kernels to (:mod:`repro.relational.parallel`).
    #: ``None`` keeps the library default (``REPRO_PARALLEL_WORKERS`` env or
    #: the machine's core count).  This pool is deliberately distinct from
    #: ``workers``: request threads *block on* morsel futures, so sharing one
    #: pool would deadlock the moment every worker held a query.
    morsel_workers: Optional[int] = None

    # -- shared / persistent plan cache -------------------------------------
    #: entries in the process-wide shared plan cache
    plan_cache_size: int = 1024
    #: directory for the on-disk PlanStore (None disables persistence)
    plan_store_path: Optional[str] = None

    # -- incremental evaluation ---------------------------------------------
    #: open sessions with ``incremental=True`` so repeat queries after a
    #: ``/mutate`` are answered by ΔQ maintenance instead of re-execution
    incremental: bool = True
    #: materialised answers kept per session (the answer cache's LRU size)
    answer_cache_size: int = 64

    # -- HTTP/SSE ------------------------------------------------------------
    #: rows per SSE ``rows`` event when streaming large answers
    sse_chunk_rows: int = 256

    # -- resilience ----------------------------------------------------------
    #: seconds a graceful shutdown waits for in-flight queries to drain
    #: before cancelling them
    shutdown_grace: float = 5.0
    #: consecutive faults before the per-substrate failure breaker demotes
    #: an accelerated substrate in the fallback ladder
    breaker_threshold: int = 3
    #: seconds a tripped breaker stays open before a recovery probe
    breaker_cooldown: float = 30.0
    #: maximum relative jitter added to computed ``Retry-After`` values
    #: (0.25 = up to +25%), de-synchronizing client retry stampedes
    retry_jitter: float = 0.25

    def __post_init__(self) -> None:
        for name in ("max_sessions", "burst", "max_inflight", "workers",
                     "plan_cache_size", "sse_chunk_rows", "answer_cache_size",
                     "breaker_threshold"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        for name in ("session_ttl", "rate", "time_limit_cap"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        for name in ("max_rows_cap", "max_candidates_cap", "fuel_cap"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
        for name in ("shutdown_grace", "breaker_cooldown", "retry_jitter"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value!r}")
        if self.morsel_workers is not None and (
            not isinstance(self.morsel_workers, int) or self.morsel_workers <= 0
        ):
            raise ValueError(
                "morsel_workers must be a positive integer or None, "
                f"got {self.morsel_workers!r}"
            )

    def clamp(self, requested: Optional[Budget] = None) -> Budget:
        """The budget a request actually runs under.

        Every numeric bound is the minimum of what the client asked for and
        the server's cap; a missing budget (or a missing time limit) gets the
        caps outright.  Clamping never *raises* a request's own bounds.
        """
        if requested is None:
            return Budget(
                max_rows=self.max_rows_cap,
                max_candidates=self.max_candidates_cap,
                fuel=self.fuel_cap,
                time_limit=self.time_limit_cap,
            )
        time_limit = (
            self.time_limit_cap
            if requested.time_limit is None
            else min(requested.time_limit, self.time_limit_cap)
        )
        return Budget(
            max_rows=min(requested.max_rows, self.max_rows_cap),
            max_candidates=min(requested.max_candidates, self.max_candidates_cap),
            fuel=min(requested.fuel, self.fuel_cap),
            time_limit=time_limit,
        )

    def describe(self) -> Dict[str, Any]:
        """The policy as a JSON-ready dict (for the ``/stats`` endpoint)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: the policy a bare ``repro.serve`` server runs under
DEFAULT_POLICY = ServerPolicy()
