"""Admission control: decide *fast* whether a request may run at all.

Three independent gates, all cheap enough to sit in front of every request:

* **budget clamping** — :meth:`repro.serve.policy.ServerPolicy.clamp` caps
  the per-request :class:`~repro.engine.budget.Budget` (applied by the
  caller; this module gates *whether*, the policy gates *how much*);
* **rate limiting** — a classic :class:`TokenBucket` per session id
  (``policy.rate`` tokens/second, ``policy.burst`` capacity): a session
  hammering the server gets 429-style rejections with a ``retry_after``
  hint while other sessions are unaffected;
* **load shedding** — a bounded in-flight counter: when
  ``policy.max_inflight`` requests are already running or queued on the
  worker pool, new arrivals are rejected immediately (503-style) instead of
  building an unbounded queue.  Rejecting fast keeps tail latency bounded —
  a client retry is cheaper than a request parked behind thirty others.

Everything is thread-safe and clock-injectable (tests pass a fake
``clock``); nothing here knows about HTTP — the server layer translates
:class:`AdmissionError` into status codes.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, Optional

from .policy import ServerPolicy

__all__ = ["AdmissionError", "TokenBucket", "AdmissionController"]


class AdmissionError(Exception):
    """A request was rejected before execution.

    ``status`` mirrors the HTTP status the server responds with (429 for
    rate limiting, 503 for load shedding); ``retry_after`` is the seconds a
    well-behaved client should wait before retrying.
    """

    def __init__(self, message: str, *, status: int, retry_after: float = 0.0):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second, ``burst`` capacity.

    >>> bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: 0.0)
    >>> bucket.try_acquire(), bucket.try_acquire(), bucket.try_acquire()
    (True, True, False)
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float],
    ):
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be positive, got {rate!r}, {burst!r}")
        self._rate = rate
        self._burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available at the refill rate."""
        with self._lock:
            self._refill(self._clock())
            deficit = tokens - self._tokens
            if deficit <= 0:
                return 0.0
            return deficit / self._rate

    @property
    def tokens(self) -> float:
        """The current token count (after refill; for stats/tests)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class AdmissionController:
    """The per-server gate combining rate limiting and load shedding."""

    def __init__(
        self,
        policy: ServerPolicy,
        clock: Optional[Callable[[], float]] = None,
        rng: Optional[random.Random] = None,
    ):
        self._policy = policy
        self._clock = clock if clock is not None else time.monotonic
        self._rng = rng if rng is not None else random.Random()
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight = 0
        self._lock = threading.Lock()
        self._admitted = 0
        self._rejected_rate = 0
        self._rejected_load = 0

    def _bucket_for(self, session_id: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(session_id)
            if bucket is None:
                bucket = TokenBucket(
                    self._policy.rate, self._policy.burst, self._clock
                )
                self._buckets[session_id] = bucket
            return bucket

    def _jittered(self, seconds: float) -> float:
        """``Retry-After`` with up to ``policy.retry_jitter`` relative jitter.

        Every rejected client computing the *same* deterministic backoff
        retries at the same instant; spreading the hints de-synchronizes the
        stampede.  Jitter only ever lengthens the wait, so the hint stays
        honest about when capacity will actually exist.
        """
        if seconds <= 0:
            return seconds
        return seconds * (1.0 + self._rng.uniform(0.0, self._policy.retry_jitter))

    def admit(self, session_id: str) -> "AdmissionTicket":
        """Admit one request for ``session_id`` or raise :class:`AdmissionError`.

        Returns a ticket that **must** be released (use it as a context
        manager) — the ticket holds one in-flight slot.
        """
        bucket = self._bucket_for(session_id)
        if not bucket.try_acquire():
            with self._lock:
                self._rejected_rate += 1
            raise AdmissionError(
                f"session {session_id!r} exceeded {self._policy.rate}/s "
                f"(burst {self._policy.burst}); retry later",
                status=429,
                retry_after=self._jittered(bucket.retry_after()),
            )
        with self._lock:
            if self._inflight >= self._policy.max_inflight:
                self._rejected_load += 1
                raise AdmissionError(
                    f"server at capacity ({self._policy.max_inflight} requests "
                    "in flight); retry later",
                    status=503,
                    retry_after=self._jittered(1.0),
                )
            self._inflight += 1
            self._admitted += 1
        return AdmissionTicket(self)

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1

    def forget(self, session_id: str) -> None:
        """Drop the bucket of an expired/closed session."""
        with self._lock:
            self._buckets.pop(session_id, None)

    def stats(self) -> Dict[str, int]:
        """Admission counters (JSON-ready, for ``/stats``)."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "rejected_rate_limited": self._rejected_rate,
                "rejected_over_capacity": self._rejected_load,
                "inflight": self._inflight,
                "tracked_sessions": len(self._buckets),
            }


class AdmissionTicket:
    """One admitted request's in-flight slot; release exactly once."""

    def __init__(self, controller: AdmissionController):
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
