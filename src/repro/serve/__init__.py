"""repro.serve — the query service layer.

Turns the single-caller library into a multi-tenant service:

* :mod:`repro.serve.sessions` — :class:`SessionManager`, session-id-keyed
  :class:`~repro.api.session.Session` lifecycles (TTL expiry, LRU eviction,
  per-session serialization, a shared thread pool);
* :mod:`repro.serve.plan_store` — :class:`PlanStore` (on-disk pickled
  compiled plans, versioned and corruption-tolerant) and
  :class:`PersistentPlanCache` (memory tier over the store, shared by every
  session so warm restarts skip compilation);
* :mod:`repro.serve.admission` — :class:`TokenBucket` rate limiting per
  session id, bounded in-flight load shedding, fast 429/503 rejection;
* :mod:`repro.serve.policy` — :class:`ServerPolicy`, including per-request
  :class:`~repro.engine.budget.Budget` clamping;
* :mod:`repro.serve.server` — the framework-free asyncio HTTP/SSE front end
  (``/connect``, ``/query``, ``/explain``, ``/mutate``, ``/stats``,
  ``/disconnect``).

Run one with ``python -m repro.serve`` (see ``README.md``), or embed::

    from repro.serve import SessionManager, ServerPolicy, serve_in_thread

    manager = SessionManager(ServerPolicy(plan_store_path="/tmp/plans"))
    with serve_in_thread(manager) as handle:
        ...  # http://127.0.0.1:{handle.port}
"""

from .admission import AdmissionController, AdmissionError, TokenBucket
from .plan_store import PersistentPlanCache, PlanStore, fingerprint_key
from .policy import DEFAULT_POLICY, ServerPolicy
from .server import QueryServer, ServerHandle, serve_in_thread
from .sessions import ManagedSession, SessionManager, UnknownSessionError

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "TokenBucket",
    "PersistentPlanCache",
    "PlanStore",
    "fingerprint_key",
    "DEFAULT_POLICY",
    "ServerPolicy",
    "QueryServer",
    "ServerHandle",
    "serve_in_thread",
    "ManagedSession",
    "SessionManager",
    "UnknownSessionError",
]
