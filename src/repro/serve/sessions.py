"""Session-id-keyed session lifecycles for the serving layer.

The pattern follows the per-session pod manager sketched in SNIPPETS.md
(Snippet 1): every connection gets a session id derived by hashing a
monotonic counter with fresh randomness, the id keys an isolated unit of
state with a TTL, and the manager owns create / lookup / expire / evict for
the whole population.  Here the unit is not a Kubernetes pod but a
:class:`~repro.api.session.Session` plus its default database state and a
lock:

* **isolation** — each session has its own domain, schema, guards, and
  default state; nothing a session does can corrupt another (the only
  shared structures are the thread-safe plan/encode caches);
* **serialization per session** — a session's queries run under its
  ``lock``, so one client's requests execute in order even when sent
  concurrently; *distinct* sessions run genuinely concurrently on the
  manager's thread pool;
* **lifecycle** — sessions expire after ``policy.session_ttl`` idle seconds
  (every use refreshes the clock), and when ``policy.max_sessions`` is
  exceeded the least recently used session is evicted early;
* **shared caches** — every session is created with the manager's
  process-wide :class:`~repro.serve.plan_store.PersistentPlanCache`, so any
  session's compile warms every other session (and, with a
  :class:`~repro.serve.plan_store.PlanStore` configured, future processes);
  the columnar :class:`~repro.relational.columnar.EncodeCache` is already
  process-wide and keyed by state fingerprint, so sessions querying equal
  states share encoded columns automatically.
"""

from __future__ import annotations

import hashlib
import secrets
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Union

from ..api.session import QueryResult, Session
from ..domains.base import Domain
from ..engine.breaker import configure_default_breaker, default_breaker
from ..engine.budget import Budget, CancelToken
from ..engine.plan_cache import PlanCache
from ..relational.parallel import configure_worker_pool, worker_pool_info
from ..relational.schema import DatabaseSchema
from ..relational.state import DatabaseState, Delta
from .plan_store import PersistentPlanCache, PlanStore
from .policy import DEFAULT_POLICY, ServerPolicy

__all__ = [
    "ManagedSession",
    "SessionManager",
    "UnknownSessionError",
    "ServerDraining",
]


class UnknownSessionError(LookupError):
    """The session id is not (or no longer) registered."""


class ServerDraining(RuntimeError):
    """The manager is shutting down and no longer admits work."""


class ManagedSession:
    """One live session: the Session itself plus serving bookkeeping."""

    def __init__(
        self,
        session_id: str,
        session: Session,
        created_at: float,
        state: Optional[DatabaseState] = None,
    ):
        self.session_id = session_id
        self.session = session
        self.created_at = created_at
        self.last_used = created_at
        #: the default state queries run against when the request names none
        self.state = state
        #: serializes this session's queries (distinct sessions do not share it)
        self.lock = threading.Lock()
        self.queries_served = 0
        self.mutations_applied = 0

    def touch(self, now: float) -> None:
        self.last_used = now

    def expired(self, now: float, ttl: float) -> bool:
        return now - self.last_used > ttl

    def describe(self) -> Dict[str, Any]:
        """JSON-ready session facts (for ``/stats``)."""
        return {
            "session_id": self.session_id,
            "domain": self.session.domain.name,
            "relations": list(self.session.schema.names),
            "queries_served": self.queries_served,
            "mutations_applied": self.mutations_applied,
            "state_version": None if self.state is None else self.state.version,
            "incremental": self.session.incremental,
            "idle_seconds": None,  # filled by the manager, which owns the clock
        }


def _new_session_id(counter: int) -> str:
    """A fresh, unguessable session id (hash of counter + randomness)."""
    combined = f"{counter}-{secrets.token_hex(16)}"
    return hashlib.sha256(combined.encode("utf-8")).hexdigest()[:16]


class SessionManager:
    """Owns every live session, the shared plan cache, and the worker pool."""

    def __init__(
        self,
        policy: ServerPolicy = DEFAULT_POLICY,
        *,
        clock: Optional[Callable[[], float]] = None,
        plan_cache: Optional[PlanCache] = None,
    ):
        self._policy = policy
        self._clock = clock if clock is not None else time.monotonic
        if plan_cache is not None:
            self._plan_cache = plan_cache
        else:
            store = (
                PlanStore(policy.plan_store_path)
                if policy.plan_store_path is not None
                else None
            )
            self._plan_cache = PersistentPlanCache(
                maxsize=policy.plan_cache_size, store=store
            )
        self._sessions: "OrderedDict[str, ManagedSession]" = OrderedDict()
        self._lock = threading.Lock()
        self._counter = 0
        self._created = 0
        self._expired = 0
        self._evicted = 0
        self._closed = 0
        self._executor: Optional[ThreadPoolExecutor] = None
        #: in-flight cancel tokens per session id (the cancellation registry
        #: behind ``/cancel`` and ``/disconnect``)
        self._tokens: Dict[str, List[CancelToken]] = {}
        self._cancelled = 0
        self._inflight = 0
        self._draining = False
        # The serving layer owns the process-wide substrate failure breaker's
        # knobs (library users share the same breaker with its defaults).
        configure_default_breaker(
            policy.breaker_threshold, policy.breaker_cooldown
        )
        # Pin the process-wide morsel pool when the operator set a count.
        # The pool is shared library infrastructure (not owned by this
        # manager): request threads block on morsel futures, so it must stay
        # distinct from the request executor above, and shutdown() leaves it
        # alone for other library users in the process.
        if policy.morsel_workers is not None:
            configure_worker_pool(policy.morsel_workers)

    # -- shared infrastructure ----------------------------------------------

    @property
    def policy(self) -> ServerPolicy:
        return self._policy

    @property
    def plan_cache(self) -> PlanCache:
        """The process-wide plan cache every managed session compiles through."""
        return self._plan_cache

    @property
    def executor(self) -> ThreadPoolExecutor:
        """The worker pool (created lazily so library use never spawns threads)."""
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._policy.workers,
                    thread_name_prefix="repro-serve",
                )
            return self._executor

    # -- lifecycle -----------------------------------------------------------

    def connect(
        self,
        domain: Union[str, Domain] = "equality",
        schema: Optional[DatabaseSchema] = None,
        *,
        state: Optional[DatabaseState] = None,
        **options: Any,
    ) -> ManagedSession:
        """Create a session; expire stale ones and evict over capacity.

        ``options`` are forwarded to :class:`~repro.api.session.Session`
        (``guard``, ``restrict``, ``budget``, ...) — except the plan cache,
        which is always the manager's shared one.
        """
        if self._draining:
            raise ServerDraining("the server is shutting down; not accepting sessions")
        options.pop("plan_cache", None)
        options.pop("plan_cache_size", None)
        options.setdefault("incremental", self._policy.incremental)
        options.setdefault("answer_cache_size", self._policy.answer_cache_size)
        session = Session(domain, schema, plan_cache=self._plan_cache, **options)
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            self._counter += 1
            session_id = _new_session_id(self._counter)
            managed = ManagedSession(session_id, session, now, state=state)
            self._sessions[session_id] = managed
            while len(self._sessions) > self._policy.max_sessions:
                _, evicted = self._sessions.popitem(last=False)
                self._evicted += 1
            self._created += 1
            return managed

    def get(self, session_id: str) -> ManagedSession:
        """The live session for ``session_id`` (refreshing TTL and recency)."""
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            managed = self._sessions.get(session_id)
            if managed is None:
                raise UnknownSessionError(
                    f"unknown or expired session {session_id!r}; POST /connect "
                    "for a fresh one"
                )
            managed.touch(now)
            self._sessions.move_to_end(session_id)
            return managed

    def close(self, session_id: str) -> bool:
        """Drop a session explicitly; True iff it was live.

        Cancels the session's in-flight queries first, so a ``/disconnect``
        aborts work the client will never read.
        """
        self.cancel_session(session_id, reason="session disconnected")
        with self._lock:
            managed = self._sessions.pop(session_id, None)
            if managed is not None:
                self._closed += 1
            return managed is not None

    # -- cancellation registry ----------------------------------------------

    def cancel_session(
        self, session_id: str, reason: str = "cancelled by client"
    ) -> int:
        """Trip every in-flight cancel token of a session; tokens tripped.

        The queries abort at their next cooperative checkpoint with a
        :class:`~repro.engine.budget.Cancelled` carrying ``reason``.
        """
        with self._lock:
            tokens = list(self._tokens.get(session_id, ()))
        tripped = sum(1 for token in tokens if token.cancel(reason))
        if tripped:
            with self._lock:
                self._cancelled += tripped
        return tripped

    def cancel_all(self, reason: str = "server shutting down") -> int:
        """Trip every in-flight cancel token across sessions."""
        with self._lock:
            tokens = [t for bucket in self._tokens.values() for t in bucket]
        tripped = sum(1 for token in tokens if token.cancel(reason))
        if tripped:
            with self._lock:
                self._cancelled += tripped
        return tripped

    def _register_token(self, session_id: str, token: CancelToken) -> None:
        with self._lock:
            self._tokens.setdefault(session_id, []).append(token)
            self._inflight += 1

    def _unregister_token(self, session_id: str, token: CancelToken) -> None:
        with self._lock:
            bucket = self._tokens.get(session_id)
            if bucket is not None:
                try:
                    bucket.remove(token)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not bucket:
                    del self._tokens[session_id]
            self._inflight -= 1

    @property
    def draining(self) -> bool:
        """True once a graceful shutdown has begun (no new work admitted)."""
        return self._draining

    def inflight_queries(self) -> int:
        """Queries currently executing (or queued with a registered token)."""
        with self._lock:
            return self._inflight

    def sweep(self) -> int:
        """Expire TTL-stale sessions now; the number dropped."""
        with self._lock:
            return self._sweep_locked(self._clock())

    def _sweep_locked(self, now: float) -> int:
        stale = [
            session_id
            for session_id, managed in self._sessions.items()
            if managed.expired(now, self._policy.session_ttl)
        ]
        for session_id in stale:
            del self._sessions[session_id]
            self._expired += 1
        return len(stale)

    def session_ids(self) -> List[str]:
        with self._lock:
            return list(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- query execution -----------------------------------------------------

    def run_query(
        self,
        session_id: str,
        query: Any,
        state: Optional[DatabaseState] = None,
        *,
        strategy: str = "auto",
        budget: Optional[Budget] = None,
        cancel_token: Optional[CancelToken] = None,
    ) -> QueryResult:
        """Run one query on a session, serialized on the session's lock.

        The budget is clamped by server policy before execution — the
        clamped budget always carries a time limit, so every served query
        runs under a cooperative deadline.  A cancel token (fresh unless one
        is passed in) is registered for the duration, so
        :meth:`cancel_session` and the ``/cancel`` endpoint can abort the
        query mid-flight.  An evicted or expired session raises
        :class:`UnknownSessionError` — clients reconnect rather than
        silently resurrect state.
        """
        if self._draining:
            raise ServerDraining("the server is shutting down; not accepting queries")
        managed = self.get(session_id)
        clamped = self._policy.clamp(budget)
        token = cancel_token if cancel_token is not None else CancelToken()
        self._register_token(session_id, token)
        try:
            with managed.lock:
                result = managed.session.run(
                    query,
                    state if state is not None else managed.state,
                    strategy=strategy,
                    budget=clamped,
                    cancel_token=token,
                )
                managed.queries_served += 1
        finally:
            self._unregister_token(session_id, token)
        managed.touch(self._clock())
        return result

    def mutate(self, session_id: str, delta: Delta) -> Dict[str, Any]:
        """Apply a delta to a session's default state; JSON-ready receipt.

        The mutation runs under the session's lock (serialized with its
        queries), replaces the managed default state with the one
        :meth:`Session.apply_delta <repro.api.session.Session.apply_delta>`
        returns — structurally sharing untouched relations, growing encoded
        columns on insert-only deltas — and leaves the lineage in place for
        the answer cache to re-answer at O(Δ) cost.
        """
        if self._draining:
            raise ServerDraining("the server is shutting down; not accepting mutations")
        managed = self.get(session_id)
        with managed.lock:
            base = managed.state if managed.state is not None else managed.session.state()
            new_state = managed.session.apply_delta(base, delta)
            changed = 0
            if new_state is not base:
                managed.state = new_state
                managed.mutations_applied += 1
                changed = (
                    new_state.lineage[-1][1].row_count()
                    if new_state.lineage
                    else delta.row_count()
                )
            receipt = {
                "session_id": session_id,
                "applied": new_state is not base,
                "changed_rows": changed,
                "state_version": new_state.version,
                "fingerprint": f"{new_state.fingerprint():016x}",
                "total_rows": sum(
                    len(relation) for relation in new_state.relations.values()
                ),
            }
        managed.touch(self._clock())
        return receipt

    def submit_query(
        self,
        session_id: str,
        query: Any,
        state: Optional[DatabaseState] = None,
        *,
        strategy: str = "auto",
        budget: Optional[Budget] = None,
        cancel_token: Optional[CancelToken] = None,
    ) -> "Future[QueryResult]":
        """:meth:`run_query` on the worker pool; distinct sessions overlap."""
        return self.executor.submit(
            self.run_query, session_id, query, state, strategy=strategy,
            budget=budget, cancel_token=cancel_token,
        )

    # -- stats / teardown ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """JSON-ready counters across sessions and the shared caches."""
        now = self._clock()
        with self._lock:
            sessions = []
            for managed in self._sessions.values():
                facts = managed.describe()
                facts["idle_seconds"] = round(now - managed.last_used, 3)
                sessions.append(facts)
            counters = {
                "live_sessions": len(self._sessions),
                "created": self._created,
                "expired": self._expired,
                "evicted": self._evicted,
                "closed": self._closed,
            }
            cancellation = {
                "inflight_queries": self._inflight,
                "cancelled": self._cancelled,
                "draining": self._draining,
            }
        info = self._plan_cache.info()
        plan_cache: Dict[str, Any] = {
            "hits": info.hits,
            "misses": info.misses,
            "evictions": info.evictions,
            "size": info.size,
            "maxsize": info.maxsize,
            "hit_rate": round(info.hit_rate, 4),
        }
        if isinstance(self._plan_cache, PersistentPlanCache):
            plan_cache["disk_hits"] = self._plan_cache.disk_hits
            plan_cache["disk_misses"] = self._plan_cache.disk_misses
            store = self._plan_cache.store
            plan_cache["store"] = None if store is None else {
                "path": store.path,
                "entries": len(store),
                "store_errors": store.store_errors,
                "corrupt_dropped": store.corrupt_dropped,
            }
        from ..relational.columnar import encode_cache_info

        encode_info = encode_cache_info()
        return {
            "sessions": counters,
            "session_details": sessions,
            "cancellation": cancellation,
            "breaker": default_breaker().snapshot(),
            "plan_cache": plan_cache,
            "encode_cache": {
                "hits": encode_info.hits,
                "misses": encode_info.misses,
                "evictions": encode_info.evictions,
                "size": encode_info.size,
                "maxsize": encode_info.maxsize,
                "grown": encode_info.grown,
                "invalidated": encode_info.invalidated,
                "grown_columns": encode_info.grown_columns,
            },
            "parallel": worker_pool_info(),
        }

    def shutdown(self, grace: Optional[float] = None) -> Dict[str, Any]:
        """Graceful shutdown: stop admitting, drain, cancel, stop the pool.

        Idempotent.  The sequence is:

        1. flip the draining flag — :meth:`connect`, :meth:`run_query`, and
           :meth:`mutate` reject new work with :class:`ServerDraining`;
        2. wait up to ``grace`` seconds (``policy.shutdown_grace`` by
           default) for in-flight queries to finish on their own;
        3. trip every remaining cancel token — stragglers abort at their
           next cooperative checkpoint — and wait for them to unwind;
        4. drop every session and stop the worker pool.

        Returns a JSON-ready receipt of what the drain did.
        """
        grace = self._policy.shutdown_grace if grace is None else grace
        with self._lock:
            already = self._draining
            self._draining = True
        drained_naturally = True
        cancelled = 0
        if not already:
            end = time.monotonic() + grace
            while self.inflight_queries() > 0 and time.monotonic() < end:
                time.sleep(0.01)
            drained_naturally = self.inflight_queries() == 0
            cancelled = self.cancel_all("server shutting down")
        with self._lock:
            self._sessions.clear()
            executor, self._executor = self._executor, None
        if executor is not None:
            # The pool's queries were cancelled cooperatively above, so this
            # wait is bounded by one checkpoint interval, not a full query.
            executor.shutdown(wait=True)
        return {
            "drained_naturally": drained_naturally,
            "cancelled_inflight": cancelled,
            "grace": grace,
        }
