"""A framework-free asyncio HTTP/SSE front end for the query engine.

Stdlib only, in the same spirit as the engine's gated numpy import: the
serving layer must not make the library grow a web-framework dependency, so
this module speaks just enough HTTP/1.1 over :func:`asyncio.start_server` to
expose four JSON endpoints —

* ``POST /connect`` — open a session (domain, schema, default state), get a
  session id back;
* ``POST /query`` — run a query on a session; JSON rows, or Server-Sent
  Events (``"stream": true``) chunking large answers;
* ``POST /explain`` — the analysis + plan the session would use, unexecuted;
* ``POST /mutate`` — apply an insert/delete delta to the session's default
  state; repeat queries are then delta-maintained at O(Δ) cost instead of
  re-executed (see :mod:`repro.relational.delta`);
* ``GET /stats`` — sessions, shared plan cache (memory + disk tiers),
  encode cache, admission counters, substrate breaker, policy;
* ``POST /cancel`` — trip the cancel tokens of a session's in-flight
  queries; they abort at their next cooperative checkpoint;
* ``POST /disconnect`` — drop a session early (TTL would get it eventually),
  cancelling its in-flight queries first.

Failure statuses are structured: a query that exhausts its (clamped) time
budget answers ``504`` and a cancelled one ``499``, both with a JSON body
carrying the operator reached and partial execution stats (see
:meth:`repro.engine.budget.EvaluationInterrupted.payload`); a draining
server answers ``503`` to everything new while in-flight work finishes or
is cancelled within ``policy.shutdown_grace`` seconds.

The asyncio loop only parses requests and shovels bytes; every query runs on
the :class:`~repro.serve.sessions.SessionManager`'s thread pool (distinct
sessions concurrently, one session serially on its lock), so a slow query
never stalls the accept loop.  Admission control
(:mod:`repro.serve.admission`) runs *before* dispatch: rate-limited requests
get ``429`` with ``Retry-After``, an over-capacity server sheds load with
``503`` — both without touching a worker thread.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple

from ..api.session import SessionError
from ..engine.budget import Budget, Cancelled, EvaluationInterrupted
from ..relational.schema import DatabaseSchema, RelationSchema
from ..relational.state import DatabaseState, Delta
from .admission import AdmissionController, AdmissionError
from .policy import DEFAULT_POLICY, ServerPolicy
from .sessions import ServerDraining, SessionManager, UnknownSessionError

__all__ = ["QueryServer", "ServerHandle", "serve_in_thread"]

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    499: "Client Closed Request",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """An error that maps straight to an HTTP response."""

    def __init__(self, status: int, message: str, *, retry_after: float = 0.0):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


# ---------------------------------------------------------------------------
# JSON <-> engine objects
# ---------------------------------------------------------------------------


def _schema_from_json(spec: Any) -> DatabaseSchema:
    """``{"S": 1}`` or ``{"R": {"arity": 2, "attributes": ["lo", "hi"]}}``."""
    if spec is None:
        return DatabaseSchema()
    if not isinstance(spec, dict):
        raise _HttpError(400, "schema must be an object mapping names to arities")
    relations = []
    for name, value in spec.items():
        try:
            if isinstance(value, int):
                relations.append(RelationSchema(name, value))
            elif isinstance(value, dict):
                relations.append(
                    RelationSchema(
                        name,
                        int(value["arity"]),
                        tuple(value.get("attributes", ())),
                    )
                )
            else:
                raise ValueError(f"bad relation spec {value!r}")
        except (KeyError, TypeError, ValueError) as error:
            raise _HttpError(400, f"bad schema entry for {name!r}: {error}")
    return DatabaseSchema(tuple(relations))


def _state_from_json(schema: DatabaseSchema, spec: Any) -> Optional[DatabaseState]:
    """``{"S": [[1], [2]]}`` — rows as JSON arrays of ints/strings."""
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise _HttpError(400, "state must be an object mapping relation names to rows")
    try:
        return DatabaseState(schema, {name: rows for name, rows in spec.items()})
    except (TypeError, ValueError, KeyError) as error:
        raise _HttpError(400, f"bad state: {error}")


def _delta_from_json(body: Dict[str, Any]) -> Delta:
    """``{"insert": {"S": [[1]]}, "delete": {"S": [[2]]}}`` — either optional."""
    def rows_of(spec: Any, verb: str) -> Dict[str, Any]:
        if spec is None:
            return {}
        if not isinstance(spec, dict):
            raise _HttpError(
                400, f"{verb!r} must be an object mapping relation names to rows"
            )
        table = {}
        for name, rows in spec.items():
            if not isinstance(rows, list):
                raise _HttpError(400, f"{verb}[{name!r}] must be a list of rows")
            table[name] = [tuple(row) if isinstance(row, list) else row for row in rows]
        return table

    try:
        return Delta(
            inserts=rows_of(body.get("insert"), "insert"),
            deletes=rows_of(body.get("delete"), "delete"),
        )
    except (TypeError, ValueError) as error:
        raise _HttpError(400, f"bad delta: {error}")


def _budget_from_json(spec: Any) -> Optional[Budget]:
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise _HttpError(400, "budget must be an object")
    allowed = {"max_rows", "max_candidates", "fuel", "time_limit"}
    unknown = set(spec) - allowed
    if unknown:
        raise _HttpError(400, f"unknown budget field(s): {sorted(unknown)}")
    try:
        return Budget(**spec)
    except (TypeError, ValueError) as error:
        raise _HttpError(400, f"bad budget: {error}")


# ---------------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------------


class QueryServer:
    """One listening server over one :class:`SessionManager`."""

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        *,
        policy: Optional[ServerPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 8765,
    ):
        if manager is None:
            manager = SessionManager(policy if policy is not None else DEFAULT_POLICY)
        elif policy is not None and policy is not manager.policy:
            raise ValueError("pass the policy via the SessionManager, not both")
        self._manager = manager
        self._policy = manager.policy
        self._admission = AdmissionController(self._policy)
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        #: live connection-handler tasks, so a graceful stop can drain them
        self._conn_tasks: "set[asyncio.Task[None]]" = set()

    @property
    def manager(self) -> SessionManager:
        return self._manager

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with ``port=0``)."""
        if self._server is None:
            return self._port
        sockets = self._server.sockets or []
        return sockets[0].getsockname()[1] if sockets else self._port

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful stop: close the listener, drain, then drop everything.

        The sequence (idempotent):

        1. close the listening socket — no new connections;
        2. run :meth:`SessionManager.shutdown` off-loop: it stops admitting
           (new requests on *kept-alive* handler tasks get 503), waits up to
           ``policy.shutdown_grace`` for in-flight queries, then trips their
           cancel tokens so stragglers abort at the next checkpoint;
        3. await the surviving connection handlers so every in-flight client
           receives its response (a result, or a structured 499/504) before
           the loop goes away.
        """
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        # Off the event loop: shutdown() blocks polling the drain, and the
        # loop must keep running to shovel final responses to clients.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._manager.shutdown)
        pending = {task for task in self._conn_tasks if not task.done()}
        if pending:
            await asyncio.wait(pending, timeout=self._policy.shutdown_grace)

    # -- request plumbing ----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as error:
                await self._write_json(
                    writer, error.status, {"error": str(error)}
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return  # client went away or sent garbage; nothing to answer
            await self._dispatch(method, path, body, writer)
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, Any]]:
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "headers too large")
        if len(header_blob) > _MAX_HEADER_BYTES:
            raise _HttpError(413, "headers too large")
        head, _, _ = header_blob.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise ValueError("malformed request line")
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {_MAX_BODY_BYTES} bytes")
        raw = await reader.readexactly(length) if length else b""
        body: Dict[str, Any] = {}
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise _HttpError(400, f"request body is not valid JSON: {error}")
            if not isinstance(body, dict):
                raise _HttpError(400, "request body must be a JSON object")
        path = target.split("?", 1)[0]
        return method, path, body

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        *,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        blob = json.dumps(payload).encode("utf-8")
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(blob)}",
            "Connection: close",
        ]
        headers.extend(f"{name}: {value}" for name, value in extra_headers)
        writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + blob)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: Dict[str, Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            if (method, path) == ("POST", "/connect"):
                payload = self._handle_connect(body)
            elif (method, path) == ("POST", "/query"):
                await self._handle_query(body, writer)
                return
            elif (method, path) == ("POST", "/explain"):
                payload = await self._handle_explain(body)
            elif (method, path) == ("POST", "/mutate"):
                payload = await self._handle_mutate(body)
            elif (method, path) == ("GET", "/stats"):
                payload = self._handle_stats()
            elif (method, path) == ("POST", "/cancel"):
                payload = self._handle_cancel(body)
            elif (method, path) == ("POST", "/disconnect"):
                payload = self._handle_disconnect(body)
            elif path in ("/connect", "/query", "/explain", "/mutate",
                          "/cancel", "/disconnect", "/stats"):
                raise _HttpError(405, f"{method} not supported on {path}")
            else:
                raise _HttpError(404, f"no route {method} {path}")
        except _HttpError as error:
            extra: Tuple[Tuple[str, str], ...] = ()
            if error.retry_after > 0:
                extra = (("Retry-After", f"{error.retry_after:.3f}"),)
            await self._write_json(
                writer, error.status, {"error": str(error)}, extra_headers=extra
            )
            return
        except EvaluationInterrupted as error:
            # 504 for a deadline the server's clamp imposed, 499 when the
            # client (or a drain) cancelled; the body carries the operator
            # reached and the partial stats so the failure is diagnosable.
            status = 499 if isinstance(error, Cancelled) else 504
            await self._write_json(writer, status, error.payload())
            return
        except ServerDraining as error:
            await self._write_json(
                writer, 503, {"error": str(error), "draining": True}
            )
            return
        except Exception as error:  # noqa: BLE001 - last-resort 500
            await self._write_json(
                writer, 500, {"error": f"{type(error).__name__}: {error}"}
            )
            return
        await self._write_json(writer, 200, payload)

    # -- handlers ------------------------------------------------------------

    def _handle_connect(self, body: Dict[str, Any]) -> Dict[str, Any]:
        domain = body.get("domain", "equality")
        schema = _schema_from_json(body.get("schema"))
        state = _state_from_json(schema, body.get("state"))
        options: Dict[str, Any] = {}
        for key in ("guard", "restrict"):
            if key in body:
                options[key] = bool(body[key])
        try:
            managed = self._manager.connect(
                domain, schema, state=state, **options
            )
        except (SessionError, LookupError, ValueError) as error:
            raise _HttpError(400, str(error))
        return {
            "session": managed.session_id,
            "domain": managed.session.domain.name,
            "relations": list(managed.session.schema.names),
            "ttl_seconds": self._policy.session_ttl,
        }

    def _admitted_session(self, body: Dict[str, Any]) -> str:
        session_id = body.get("session")
        if not isinstance(session_id, str) or not session_id:
            raise _HttpError(400, "missing 'session' (POST /connect first)")
        return session_id

    async def _handle_query(
        self, body: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        session_id = self._admitted_session(body)
        query = body.get("query")
        if not isinstance(query, str) or not query:
            raise _HttpError(400, "missing 'query' (calculus text)")
        strategy = body.get("strategy", "auto")
        budget = _budget_from_json(body.get("budget"))
        stream = bool(body.get("stream", False))
        try:
            ticket = self._admission.admit(session_id)
        except AdmissionError as error:
            raise _HttpError(
                error.status, str(error), retry_after=error.retry_after
            )
        try:
            managed = self._manager.get(session_id)
            state = _state_from_json(managed.session.schema, body.get("state"))
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._manager.executor,
                lambda: self._manager.run_query(
                    session_id, query, state, strategy=strategy, budget=budget
                ),
            )
        except UnknownSessionError as error:
            raise _HttpError(404, str(error))
        except (SessionError, ValueError) as error:
            raise _HttpError(400, str(error))
        finally:
            ticket.release()
        rows = [list(row) for row in result.answer.rows()]
        meta = {
            "method": result.answer.method,
            "is_finite": result.answer.is_finite,
            "row_count": len(rows),
            "elapsed_ms": round(result.elapsed * 1000, 3),
            "plan": result.plan.explain(),
            "rewritten": result.rewritten,
            "verdict": None if result.verdict is None else result.verdict.status.value,
        }
        if not stream:
            await self._write_json(writer, 200, dict(meta, rows=rows))
            return
        await self._write_sse(writer, meta, rows)

    async def _write_sse(
        self,
        writer: asyncio.StreamWriter,
        meta: Dict[str, Any],
        rows: Any,
    ) -> None:
        """Stream an answer as Server-Sent Events: meta, row chunks, done."""
        headers = [
            "HTTP/1.1 200 OK",
            "Content-Type: text/event-stream",
            "Cache-Control: no-cache",
            "Connection: close",
        ]
        writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n")

        def event(name: str, payload: Any) -> bytes:
            return f"event: {name}\ndata: {json.dumps(payload)}\n\n".encode("utf-8")

        writer.write(event("meta", meta))
        chunk = self._policy.sse_chunk_rows
        for start in range(0, len(rows), chunk):
            writer.write(event("rows", rows[start : start + chunk]))
            await writer.drain()
        writer.write(event("done", {"row_count": len(rows)}))
        await writer.drain()

    async def _handle_explain(self, body: Dict[str, Any]) -> Dict[str, Any]:
        session_id = self._admitted_session(body)
        query = body.get("query")
        if not isinstance(query, str) or not query:
            raise _HttpError(400, "missing 'query' (calculus text)")
        strategy = body.get("strategy", "auto")
        try:
            ticket = self._admission.admit(session_id)
        except AdmissionError as error:
            raise _HttpError(error.status, str(error), retry_after=error.retry_after)
        try:
            managed = self._manager.get(session_id)
            state = _state_from_json(managed.session.schema, body.get("state"))
            loop = asyncio.get_running_loop()

            def explain() -> str:
                with managed.lock:
                    return managed.session.explain(query, state, strategy=strategy)

            text = await loop.run_in_executor(self._manager.executor, explain)
        except UnknownSessionError as error:
            raise _HttpError(404, str(error))
        except (SessionError, ValueError) as error:
            raise _HttpError(400, str(error))
        finally:
            ticket.release()
        return {"session": session_id, "explanation": text}

    async def _handle_mutate(self, body: Dict[str, Any]) -> Dict[str, Any]:
        session_id = self._admitted_session(body)
        delta = _delta_from_json(body)
        try:
            ticket = self._admission.admit(session_id)
        except AdmissionError as error:
            raise _HttpError(error.status, str(error), retry_after=error.retry_after)
        try:
            loop = asyncio.get_running_loop()
            receipt = await loop.run_in_executor(
                self._manager.executor,
                lambda: self._manager.mutate(session_id, delta),
            )
        except UnknownSessionError as error:
            raise _HttpError(404, str(error))
        except (SessionError, ValueError) as error:
            raise _HttpError(400, str(error))
        finally:
            ticket.release()
        return receipt

    def _handle_stats(self) -> Dict[str, Any]:
        stats = self._manager.stats()
        stats["admission"] = self._admission.stats()
        stats["policy"] = self._policy.describe()
        return stats

    def _handle_cancel(self, body: Dict[str, Any]) -> Dict[str, Any]:
        session_id = self._admitted_session(body)
        reason = body.get("reason")
        if reason is not None and not isinstance(reason, str):
            raise _HttpError(400, "'reason' must be a string")
        cancelled = self._manager.cancel_session(
            session_id, reason=reason or "cancelled by client"
        )
        return {"session": session_id, "cancelled": cancelled}

    def _handle_disconnect(self, body: Dict[str, Any]) -> Dict[str, Any]:
        session_id = self._admitted_session(body)
        closed = self._manager.close(session_id)
        self._admission.forget(session_id)
        return {"session": session_id, "closed": closed}


# ---------------------------------------------------------------------------
# Running in a background thread (tests, smoke checks, embedding)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A server running on a daemon thread; ``close()`` is a clean shutdown."""

    def __init__(self, server: QueryServer):
        self._server = server
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def server(self) -> QueryServer:
        return self._server

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced via start()
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self._server.start()
        self._ready.set()
        await self._stop.wait()
        await self._server.stop()

    def start(self, timeout: float = 10.0) -> "ServerHandle":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error!r}")
        return self

    def close(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already gone
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server did not shut down in time")

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve_in_thread(
    manager: Optional[SessionManager] = None,
    *,
    policy: Optional[ServerPolicy] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServerHandle:
    """A :class:`ServerHandle` on an ephemeral port (by default), not yet
    started — entering it as a context manager starts and cleanly stops it::

        with serve_in_thread() as handle:
            ...  # http://127.0.0.1:{handle.port}
    """
    server = QueryServer(manager, policy=policy, host=host, port=port)
    return ServerHandle(server)
