"""The on-disk plan store: compiled plans that survive process restarts.

A :class:`~repro.relational.compile.CompiledQuery` is a pure function of its
plan-cache key — ``(formula, schema, domain name, substrate)`` — and contains
only frozen dataclasses, so it pickles cleanly and can be reloaded by a
different process.  :class:`PlanStore` keeps one pickle file per key under a
directory; :class:`PersistentPlanCache` layers it *under* the in-memory
:class:`~repro.engine.plan_cache.PlanCache` so that

* a memory hit costs what it always did (one dict lookup under a lock);
* a memory miss consults the store before compiling — a **warm restart**
  (populated store, empty memory) skips compilation entirely;
* every compile is written through, so the store converges to the workload's
  distinct-plan set.

Keying
------

In-memory keys are hashable Python objects; on disk they become a
**fingerprint**: the SHA-256 of the ``repr`` of each key component, joined —
deterministic across processes (``repr`` of frozen dataclasses of ints and
strings is canonical, unlike ``hash()``, which is salted per process for
strings).  A fingerprint collision would require a SHA-256 collision, so the
stored payload also records the fingerprint and is rejected on mismatch.

Durability posture
------------------

The store is a *cache*, not a database: every entry is re-derivable by
compiling again.  It is therefore aggressively corruption-tolerant — a
truncated, unreadable, version-skewed, or wrong-key file is treated as a
miss and deleted; writes go to a temp file and ``os.replace`` into place so
readers never observe a half-written pickle; any OS error degrades to
"no persistence" rather than failing the query.  ``STORE_VERSION`` is bumped
whenever the pickled plan representation changes shape, invalidating old
stores wholesale.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from typing import Any, Hashable, List, Optional

from ..engine.plan_cache import PlanCache
from ..testing import faults

__all__ = ["PlanStore", "PersistentPlanCache", "STORE_VERSION", "fingerprint_key"]

#: bump when the pickled payload shape (or plan IR) changes incompatibly
STORE_VERSION = 1

_SUFFIX = ".plan"


def fingerprint_key(key: Hashable) -> str:
    """A stable hex fingerprint of an in-memory plan-cache key.

    >>> fp = fingerprint_key(("formula-repr", "schema-repr", "nat<", "compiled"))
    >>> len(fp), fp == fingerprint_key(("formula-repr", "schema-repr", "nat<", "compiled"))
    (64, True)
    >>> fp != fingerprint_key(("formula-repr", "schema-repr", "nat<", "vectorized"))
    True
    """
    if isinstance(key, tuple):
        text = "|".join(repr(part) for part in key)
    else:
        text = repr(key)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class PlanStore:
    """A directory of pickled plan-cache values, keyed by fingerprint."""

    def __init__(self, path: str):
        self._path = path
        os.makedirs(path, exist_ok=True)
        #: values that failed to pickle or write (persistence skipped)
        self.store_errors = 0
        #: files dropped as corrupt / version-skewed / mis-keyed
        self.corrupt_dropped = 0

    @property
    def path(self) -> str:
        return self._path

    def _file_for(self, fingerprint: str) -> str:
        return os.path.join(self._path, fingerprint + _SUFFIX)

    def load(self, key: Hashable) -> Optional[Any]:
        """The stored value for ``key``, or ``None`` (never raises).

        Anything that prevents a faithful reload — missing file, unpickling
        error of any kind, version or fingerprint mismatch — is a miss; the
        offending file is deleted so it is not re-read on every lookup.
        """
        fingerprint = fingerprint_key(key)
        filename = self._file_for(fingerprint)
        try:
            with open(filename, "rb") as handle:
                faults.fire("plan-store-io")
                blob = handle.read()
            # Injected bit-flips take the same path a truncated disk write
            # would: unpickle fails (or the payload mismatches) and the file
            # is dropped as corrupt.
            blob = faults.corrupt("plan-store-io", blob)
            payload = pickle.loads(blob)
        except FileNotFoundError:
            return None
        except Exception:
            self._drop(filename)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != STORE_VERSION
            or payload.get("fingerprint") != fingerprint
        ):
            self._drop(filename)
            return None
        return payload.get("value")

    def store(self, key: Hashable, value: Any) -> bool:
        """Persist ``value`` under ``key``; False (never raises) on failure."""
        fingerprint = fingerprint_key(key)
        payload = {
            "version": STORE_VERSION,
            "fingerprint": fingerprint,
            "value": value,
        }
        try:
            blob = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.store_errors += 1
            return False
        try:
            faults.fire("plan-store-io")
            fd, tmp_name = tempfile.mkstemp(dir=self._path, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, self._file_for(fingerprint))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, faults.InjectedFault):
            # An injected I/O fault degrades exactly like an OS error:
            # persistence is skipped, the query is unaffected.
            self.store_errors += 1
            return False
        return True

    def _drop(self, filename: str) -> None:
        self.corrupt_dropped += 1
        try:
            os.unlink(filename)
        except OSError:
            pass

    def fingerprints(self) -> List[str]:
        """The fingerprints currently stored (one per ``.plan`` file)."""
        try:
            names = os.listdir(self._path)
        except OSError:
            return []
        return sorted(
            name[: -len(_SUFFIX)] for name in names if name.endswith(_SUFFIX)
        )

    def __len__(self) -> int:
        return len(self.fingerprints())

    def clear(self) -> None:
        """Delete every stored plan (the error counters survive)."""
        for fingerprint in self.fingerprints():
            try:
                os.unlink(self._file_for(fingerprint))
            except OSError:
                pass

    def __repr__(self) -> str:
        return f"PlanStore(path={self._path!r}, entries={len(self)})"


class PersistentPlanCache(PlanCache):
    """A :class:`PlanCache` backed by a :class:`PlanStore`.

    Lookups fall through memory → disk → (caller compiles); inserts write
    through to both tiers.  Disk promotion happens outside the parent's
    lock — two threads missing the same key concurrently both read the
    store, and the second in-memory ``put`` is idempotent, so the race only
    duplicates one unpickle.
    """

    def __init__(self, maxsize: int = 1024, store: Optional[PlanStore] = None):
        super().__init__(maxsize=maxsize)
        self._store = store
        self._disk_hits = 0
        self._disk_misses = 0
        self._stats_lock = threading.Lock()

    @property
    def store(self) -> Optional[PlanStore]:
        return self._store

    @property
    def disk_hits(self) -> int:
        """Memory misses served from the on-disk store (compiles skipped)."""
        return self._disk_hits

    @property
    def disk_misses(self) -> int:
        """Lookups that missed both tiers (the caller compiled)."""
        return self._disk_misses

    def get(self, key: Hashable) -> Optional[Any]:
        value = super().get(key)
        if value is not None or self._store is None:
            return value
        stored = self._store.load(key)
        with self._stats_lock:
            if stored is None:
                self._disk_misses += 1
            else:
                self._disk_hits += 1
        if stored is not None:
            super().put(key, stored)
        return stored

    def put(self, key: Hashable, value: Any) -> None:
        super().put(key, value)
        if self._store is not None:
            self._store.store(key, value)
