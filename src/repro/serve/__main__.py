"""``python -m repro.serve`` — run the query server from the command line.

Example::

    PYTHONPATH=src python -m repro.serve --port 8765 --plan-store /tmp/repro-plans

then::

    curl -s localhost:8765/connect -d '{"domain": "nat<", "schema": {"S": 1}, \
        "state": {"S": [[3], [5], [9]]}}'
    curl -s localhost:8765/query -d '{"session": "<id>", "query": \
        "exists y. exists z. (S(y) & S(z) & y < x & x < z)"}'
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Optional, Sequence

from .policy import ServerPolicy
from .server import QueryServer
from .sessions import SessionManager


def build_parser() -> argparse.ArgumentParser:
    defaults = ServerPolicy()
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the query engine over HTTP/SSE (stdlib only).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--max-sessions", type=int, default=defaults.max_sessions)
    parser.add_argument(
        "--session-ttl", type=float, default=defaults.session_ttl,
        help="idle seconds before a session expires",
    )
    parser.add_argument(
        "--rate", type=float, default=defaults.rate,
        help="requests/second allowed per session (token-bucket refill)",
    )
    parser.add_argument(
        "--burst", type=int, default=defaults.burst,
        help="token-bucket capacity per session",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=defaults.max_inflight,
        help="concurrent requests before fast 503 rejection",
    )
    parser.add_argument("--workers", type=int, default=defaults.workers)
    parser.add_argument(
        "--morsel-workers", type=int, default=None, metavar="N",
        help="threads in the process-wide morsel pool used by the parallel "
        "substrate (default: REPRO_PARALLEL_WORKERS env or the core count)",
    )
    parser.add_argument(
        "--plan-cache-size", type=int, default=defaults.plan_cache_size
    )
    parser.add_argument(
        "--plan-store", default=None, metavar="DIR",
        help="directory for the on-disk plan store (omit to disable persistence)",
    )
    parser.add_argument(
        "--shutdown-grace", type=float, default=defaults.shutdown_grace,
        help="seconds to let in-flight queries drain before cancelling them",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=defaults.breaker_threshold,
        help="consecutive substrate faults before the breaker demotes it",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=defaults.breaker_cooldown,
        help="seconds an open breaker waits before probing the substrate again",
    )
    parser.add_argument(
        "--retry-jitter", type=float, default=defaults.retry_jitter,
        help="max random fraction added to Retry-After hints (0 disables)",
    )
    return parser


def policy_from_args(args: argparse.Namespace) -> ServerPolicy:
    return ServerPolicy(
        max_sessions=args.max_sessions,
        session_ttl=args.session_ttl,
        rate=args.rate,
        burst=args.burst,
        max_inflight=args.max_inflight,
        workers=args.workers,
        morsel_workers=args.morsel_workers,
        plan_cache_size=args.plan_cache_size,
        plan_store_path=args.plan_store,
        shutdown_grace=args.shutdown_grace,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        retry_jitter=args.retry_jitter,
    )


async def _serve(server: QueryServer, host: str) -> None:
    await server.start()
    print(f"repro.serve listening on http://{host}:{server.port}")
    print("endpoints: POST /connect /query /explain /cancel /disconnect, "
          "GET /stats")
    try:
        await server.serve_forever()
    finally:
        await server.stop()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    manager = SessionManager(policy_from_args(args))
    server = QueryServer(manager, host=args.host, port=args.port)
    try:
        asyncio.run(_serve(server, args.host))
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
