"""Concurrent execution equals serial execution, with every cache shared.

The serving layer's correctness claim: N worker threads running M sessions'
queries concurrently — all sessions sharing one plan cache and the
process-wide encode cache — produce exactly the answers a single-threaded
run produces.  The corpora are the experiment query corpora over their usual
states, so these are the same queries the rest of the suite already pins
ground truth for.
"""

import random
import threading

import pytest

from repro.engine.plan_cache import PlanCache
from repro.experiments.corpora import (
    family_schema,
    family_state,
    numeric_schema,
    numeric_state,
    ordered_query_corpus,
    span_query_corpus,
    span_schema,
    span_state,
)
from repro.serve.policy import ServerPolicy
from repro.serve.sessions import SessionManager


def workload():
    """(domain, schema, state, query, strategy) cases across three corpora."""
    cases = []
    numeric = numeric_state([3, 5, 9, 14])
    for name, query, finite in ordered_query_corpus():
        if finite:
            cases.append(("nat<", numeric_schema(), numeric, query, "vectorized"))
    span = span_state([2, 6, 11], [(1, 5), (8, 12)])
    for name, query, finite in span_query_corpus():
        if finite:
            cases.append(("nat<", span_schema(), span, query, "vectorized"))
    family = family_state(generations=3)
    cases.append(("equality", family_schema(), family,
                  "exists y. (F(x, y) & F(y, z))", "auto"))
    cases.append(("equality", family_schema(), family,
                  "exists z. (F(y, z) & F(z, x))", "auto"))
    return cases


def serial_answers(cases):
    """Ground truth: one fresh manager, one query at a time."""
    manager = SessionManager(ServerPolicy())
    try:
        answers = []
        for domain, schema, state, query, strategy in cases:
            managed = manager.connect(domain, schema)
            result = manager.run_query(
                managed.session_id, query, state, strategy=strategy
            )
            answers.append(result.answer.rows())
        return answers
    finally:
        manager.shutdown()


@pytest.mark.parametrize("threads,sessions", [(4, 2), (8, 5)])
def test_concurrent_sessions_match_serial_answers(threads, sessions):
    cases = workload()
    expected = serial_answers(cases)

    manager = SessionManager(
        ServerPolicy(workers=threads, max_sessions=sessions * len(cases))
    )
    try:
        # M sessions per case, every query repeated once per session — all
        # in flight at once on the manager's pool.
        jobs = []
        for case_index, (domain, schema, state, query, strategy) in enumerate(cases):
            for _ in range(sessions):
                managed = manager.connect(domain, schema)
                jobs.append((case_index, managed.session_id, query, state, strategy))
        random.Random(1729).shuffle(jobs)

        futures = [
            (case_index,
             manager.submit_query(session_id, query, state, strategy=strategy))
            for case_index, session_id, query, state, strategy in jobs
        ]
        for case_index, future in futures:
            assert future.result(timeout=120).answer.rows() == expected[case_index]

        # the shared plan cache did its job: far fewer compiles than queries.
        # Two sessions can race to first-compile the same key (both miss,
        # both compile, the second put is idempotent), so allow one extra
        # miss per distinct plan rather than demanding a perfect count.
        info = manager.plan_cache.info()
        assert info.hits + info.misses >= len(jobs)
        assert info.misses <= 2 * len(cases)
        assert info.size <= len(cases)
    finally:
        manager.shutdown()


def test_concurrent_runs_share_the_encode_cache():
    from repro.relational.columnar import HAVE_NUMPY, encode_cache_info

    if not HAVE_NUMPY:
        pytest.skip("encode cache is only exercised by the vectorized substrate")
    state = numeric_state([1, 2, 3, 4, 5])
    manager = SessionManager(ServerPolicy(workers=4))
    try:
        before = encode_cache_info()
        session_ids = [
            manager.connect("nat<", numeric_schema()).session_id for _ in range(4)
        ]
        futures = [
            manager.submit_query(session_id, "S(x)", state, strategy="vectorized")
            for session_id in session_ids
            for _ in range(3)
        ]
        for future in futures:
            assert future.result(timeout=120).answer.rows() == (
                (1,), (2,), (3,), (4,), (5,))
        after = encode_cache_info()
        # 12 vectorized runs over one state fingerprint: at most a couple of
        # misses (racy first fills), everything else hits the shared columns
        assert after.hits - before.hits >= 8
    finally:
        manager.shutdown()


def test_plan_cache_is_safe_under_concurrent_hammering():
    cache = PlanCache(maxsize=16)
    errors = []
    barrier = threading.Barrier(8)

    def hammer(seed):
        rng = random.Random(seed)
        barrier.wait()
        try:
            for _ in range(2000):
                key = ("k", rng.randrange(48))
                if cache.get(key) is None:
                    cache.put(key, key)
                if rng.random() < 0.01:
                    cache.info()
        except BaseException as error:  # pragma: no cover - the failure path
            errors.append(error)

    workers = [threading.Thread(target=hammer, args=(seed,)) for seed in range(8)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60)
    assert not errors
    info = cache.info()
    assert info.size <= info.maxsize
    # each of the 8 × 2000 iterations performs exactly one lookup; a torn
    # counter update under contention would break this equality
    assert info.hits + info.misses == 8 * 2000
    assert info.misses >= info.size  # every resident entry was once a miss
