"""Tests for the formula parser and pretty printer, including round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic.builders import apply, atom, conj, disj, eq, exists, forall, neg, var
from repro.logic.formulas import (
    Atom,
    Equals,
    Exists,
    ForAll,
    Iff,
    Implies,
    Not,
    Or,
)
from repro.logic.parser import ParseError, parse_formula, parse_term
from repro.logic.printer import print_formula, print_term
from repro.logic.terms import Apply, Const, Var


def test_parse_simple_atom():
    formula = parse_formula("F(x, y)")
    assert formula == Atom("F", (Var("x"), Var("y")))


def test_parse_equality_and_inequality():
    assert parse_formula("x = y") == Equals(Var("x"), Var("y"))
    assert parse_formula("x != y") == Not(Equals(Var("x"), Var("y")))
    assert parse_formula("x < y") == Atom("<", (Var("x"), Var("y")))
    assert parse_formula("x <= 3") == Atom("<=", (Var("x"), Const(3)))


def test_parse_connective_precedence():
    formula = parse_formula("A(x) & B(x) | C(x)")
    assert isinstance(formula, Or)
    formula = parse_formula("A(x) -> B(x) -> C(x)")
    assert isinstance(formula, Implies)
    assert isinstance(formula.consequent, Implies)
    assert isinstance(parse_formula("A(x) <-> B(x)"), Iff)


def test_parse_quantifiers():
    formula = parse_formula("forall x. exists y. F(x, y)")
    assert isinstance(formula, ForAll)
    assert isinstance(formula.body, Exists)


def test_parse_arithmetic_terms():
    term = parse_term("x + 2 * y")
    assert term == Apply("+", (Var("x"), Apply("*", (Const(2), Var("y")))))
    formula = parse_formula("x + 1 < y")
    assert formula == Atom("<", (Apply("+", (Var("x"), Const(1))), Var("y")))


def test_parse_string_constants():
    formula = parse_formula("P('11', x)")
    assert formula == Atom("P", (Const("11"), Var("x")))


def test_parse_true_false():
    from repro.logic.formulas import Bottom, Top

    assert isinstance(parse_formula("true"), Top)
    assert isinstance(parse_formula("false"), Bottom)


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_formula("F(x")
    with pytest.raises(ParseError):
        parse_formula("x +")
    with pytest.raises(ParseError):
        parse_formula("")


def test_print_parse_round_trip_examples():
    samples = [
        atom("F", var("x"), var("y")),
        conj(atom("A", var("x")), neg(eq(var("x"), Const(3)))),
        exists("y", disj(atom("A", var("y")), atom("B", var("y")))),
        forall("x", Implies(atom("A", var("x")), atom("B", var("x")))),
        eq(apply("succ", var("x")), Const(4)),
        Atom("<", (Apply("+", (Var("x"), Const(1))), Var("y"))),
        Atom("P", (Const("1&1*"), Const(""), Var("x"))),
    ]
    for formula in samples:
        assert parse_formula(print_formula(formula)) == formula


# --- property-based round-trip ----------------------------------------------

variable_names = st.sampled_from(["x", "y", "z", "u", "v"])
predicate_names = st.sampled_from(["P", "Q", "R"])


@st.composite
def terms(draw, depth=2):
    if depth == 0:
        return draw(st.one_of(
            variable_names.map(Var),
            st.integers(min_value=0, max_value=9).map(Const),
        ))
    return draw(st.one_of(
        variable_names.map(Var),
        st.integers(min_value=0, max_value=9).map(Const),
        st.builds(lambda a: Apply("succ", (a,)), terms(depth=depth - 1)),
        st.builds(lambda a, b: Apply("+", (a, b)), terms(depth=depth - 1), terms(depth=depth - 1)),
    ))


@st.composite
def formulas(draw, depth=3):
    if depth == 0:
        return draw(st.one_of(
            st.builds(lambda p, a, b: Atom(p, (a, b)), predicate_names, terms(), terms()),
            st.builds(Equals, terms(), terms()),
        ))
    sub = formulas(depth=depth - 1)
    return draw(st.one_of(
        st.builds(lambda p, a, b: Atom(p, (a, b)), predicate_names, terms(), terms()),
        st.builds(Equals, terms(), terms()),
        st.builds(Not, sub),
        st.builds(lambda a, b: conj(a, b), sub, sub),
        st.builds(lambda a, b: disj(a, b), sub, sub),
        st.builds(Implies, sub, sub),
        st.builds(Iff, sub, sub),
        st.builds(lambda v, b: Exists(v, b), variable_names, sub),
        st.builds(lambda v, b: ForAll(v, b), variable_names, sub),
    ))


@settings(max_examples=150, deadline=None)
@given(formulas())
def test_print_parse_round_trip_property(formula):
    assert parse_formula(print_formula(formula)) == formula


@settings(max_examples=100, deadline=None)
@given(terms())
def test_print_parse_term_round_trip_property(term):
    assert parse_term(print_term(term)) == term
