"""Narrowed tree walker ≡ full walker ≡ compiled ≡ vectorized, and the
union-of-intervals / enumeration-candidate consumers of the bound analysis.

Property layers:

* randomized equivalence of the four evaluation modes over the ordered
  experiment corpora (``{S/1}``) *and* the span corpus (``{S/1, R/2}``,
  whose queries bound a variable on both sides from one witness row),
  including empty and one-element active domains;
* quantifier shapes the corpora lack: ∀, ¬∃, ∀∃ alternations;
* narrowing telemetry: stats recorded, pruning actually happened, and
  ``ActiveDomainPlan.explain()`` surfaces it;
* the optimizer's ``IntervalUnionScan``: plan shape (no ``IntervalJoin``
  fallback), peak intermediate rows O(answer), and optimizer notes;
* ``EnumerationPlan`` candidate generation: compiled-superset-bounded
  decision counts, inferred-bounds completeness, dovetail fallback, and the
  ``explain()`` report.
"""

import random

import pytest

from repro.domains.nat_order import NaturalOrderDomain
from repro.domains.presburger import PresburgerDomain
from repro.engine.enumeration import CandidateStats, answer_by_enumeration
from repro.engine.plans import ActiveDomainPlan, EnumerationPlan
from repro.experiments.corpora import (
    numeric_state,
    ordered_query_corpus,
    span_query_corpus,
    span_state,
)
from repro.logic.parser import parse_formula
from repro.relational.bounds import NarrowingStats
from repro.relational.calculus import evaluate_query_active_domain
from repro.relational.compile import compile_query
from repro.relational.exec import (
    ExecutionStats,
    IntervalJoin,
    IntervalUnionScan,
    run_plan,
    walk_plan,
)

NAT = NaturalOrderDomain()

#: quantifier shapes the experiment corpora do not cover
EXTRA_QUERIES = [
    ("all-members-at-most", "forall y. (S(y) -> y <= x)"),
    ("no-member-above", "~(exists y. (S(y) & x < y))"),
    ("between-by-negation", "~(forall y. (S(y) -> (y < x | x < y)))"),
    ("forall-exists-chain", "forall y. (S(y) -> exists z. (S(z) & y <= z & x <= z))"),
    ("both-sided-on-self", "exists y. (S(y) & y <= x & x <= y)"),
]


def _assert_modes_agree(query, state, domain=NAT):
    stats = NarrowingStats()
    narrowed = evaluate_query_active_domain(
        query, state, interpretation=domain, stats=stats
    )
    assert stats.enabled  # the ordered carrier must activate the narrower
    full = evaluate_query_active_domain(
        query, state, interpretation=domain, narrow=False
    )
    assert narrowed.rows == full.rows
    compiled = compile_query(query, state.schema, domain)
    adom = compiled.universe(state)
    assert run_plan(compiled.plan, state, adom, domain) == full.rows
    numpy = pytest.importorskip("numpy")
    assert numpy is not None
    from repro.relational.columnar import run_plan_vectorized

    assert run_plan_vectorized(compiled.plan, state, adom, domain) == full.rows
    return stats


@pytest.mark.parametrize("name,query,_finite", ordered_query_corpus())
def test_narrowed_walker_agrees_on_randomized_ordered_states(name, query, _finite):
    rng = random.Random(hash(name) & 0xFFFF)
    for _ in range(10):
        values = rng.sample(range(0, 120), rng.randint(0, 10))
        _assert_modes_agree(query, numeric_state(values))


@pytest.mark.parametrize("name,query,_finite", span_query_corpus())
def test_narrowed_walker_agrees_on_randomized_span_states(name, query, _finite):
    rng = random.Random(hash(name) & 0xFFFF)
    for _ in range(10):
        values = rng.sample(range(0, 90), rng.randint(0, 6))
        spans = [
            tuple(sorted(rng.sample(range(0, 90), 2)))
            for _ in range(rng.randint(0, 4))
        ]
        _assert_modes_agree(query, span_state(values, spans))


@pytest.mark.parametrize("name,text", EXTRA_QUERIES)
def test_narrowed_walker_agrees_on_quantifier_shapes(name, text):
    query = parse_formula(text)
    rng = random.Random(hash(name) & 0xFFFF)
    for values in ([], [7], [3, 11], rng.sample(range(0, 60), 6)):
        _assert_modes_agree(query, numeric_state(values))


@pytest.mark.parametrize("values", [[], [5], [5, 6], [0, 1, 2]])
def test_degenerate_adoms_on_both_sided_query(values):
    covered = span_query_corpus()[0][1]
    spans = [(min(values), max(values))] if values else []
    _assert_modes_agree(covered, span_state(values, spans))
    _assert_modes_agree(covered, span_state(values, []))


def test_presburger_also_narrows():
    between = dict(
        (name, query) for name, query, _ in ordered_query_corpus()
    )["strictly-between-members"]
    stats = _assert_modes_agree(
        between, numeric_state([2, 9, 14, 30]), PresburgerDomain()
    )
    assert stats.skipped > 0


def test_narrowing_prunes_the_between_query():
    between = dict(
        (name, query) for name, query, _ in ordered_query_corpus()
    )["strictly-between-members"]
    stats = _assert_modes_agree(between, numeric_state(list(range(0, 40, 3))))
    assert stats.narrowed > 0
    assert stats.skipped > stats.candidates  # most candidates were pruned


def test_active_domain_plan_explain_reports_narrowing():
    plan = ActiveDomainPlan(domain=NAT)
    between = dict(
        (name, query) for name, query, _ in ordered_query_corpus()
    )["strictly-between-members"]
    answer = plan.execute(between, numeric_state([1, 5, 9]))
    assert answer.rows() == ((5,),)
    assert "quantifier-range narrowing" in plan.explain()
    # an unordered domain reports nothing rather than a stale line
    from repro.domains.equality import EqualityDomain
    from repro.experiments.corpora import family_state
    from repro.experiments.exp01_intro_queries import grandfather_query

    eq_plan = ActiveDomainPlan(domain=EqualityDomain())
    eq_plan.execute(grandfather_query(), family_state(2))
    assert "narrowing" not in eq_plan.explain()


# ---------------------------------------------------------------------------
# the union-of-intervals reduction
# ---------------------------------------------------------------------------


def _covered_compiled(optimize=True):
    covered = span_query_corpus()[0][1]
    return compile_query(
        covered, span_state([], []).schema, NAT, optimize=optimize
    )


def test_both_sided_query_compiles_to_interval_union_scan():
    compiled = _covered_compiled()
    kinds = [type(node) for node in walk_plan(compiled.plan)]
    assert IntervalUnionScan in kinds
    assert IntervalJoin not in kinds  # no fallback pairing remains
    summary = compiled.summary()
    assert "interval-union-scan" in summary
    assert "both-sided witness" in summary


def test_interval_union_scan_peak_rows_stay_linear():
    size = 40
    spans = [(3 * i, 3 * i + 7) for i in range(size)]
    state = span_state([], spans)
    optimized = _covered_compiled()
    unoptimized = _covered_compiled(optimize=False)
    adom = optimized.universe(state)

    optimized_stats = ExecutionStats()
    answer = run_plan(optimized.plan, state, adom, NAT, optimized_stats)
    naive_stats = ExecutionStats()
    assert run_plan(unoptimized.plan, state, adom, NAT, naive_stats) == answer
    # O(answer): the union scan emits merged ranges; the unoptimized plan
    # pads |R| rows with the whole adom before filtering.
    assert optimized_stats.peak_rows <= len(answer) + len(spans)
    assert naive_stats.peak_rows >= size * len(adom) / 2
    assert optimized_stats.peak_rows < naive_stats.peak_rows / 20


def test_union_scan_mixes_with_aggregated_range_bounds():
    # One witness bounds both sides, another contributes a single aggregate
    # bound: the reduction must emit a RangeScan joined with the union scan.
    query = parse_formula(
        "exists y. exists z. exists w. "
        "(R(y, z) & S(w) & y < x & x < z & w <= x)"
    )
    compiled = compile_query(query, span_state([], []).schema, NAT)
    kinds = [type(node) for node in walk_plan(compiled.plan)]
    assert IntervalUnionScan in kinds
    state = span_state([6], [(1, 9), (4, 20)])
    rows = run_plan(compiled.plan, state, compiled.universe(state), NAT)
    tree = evaluate_query_active_domain(query, state, interpretation=NAT)
    assert rows == tree.rows


# ---------------------------------------------------------------------------
# enumeration-path compilation
# ---------------------------------------------------------------------------


def test_enumeration_candidates_bounded_by_compiled_superset():
    domain = PresburgerDomain()
    state = numeric_state([3 * i + 1 for i in range(12)])
    members = parse_formula("S(x)")
    stats = CandidateStats()
    answer = answer_by_enumeration(
        members, state, domain, max_rows=100, max_candidates=5000, stats=stats
    )
    assert answer.relation.rows == {(3 * i + 1,) for i in range(12)}
    assert stats.generator == "compiled+bounded"
    assert stats.compiled_rows == 12
    # every decision call tested a compiled-superset row (plus none wasted)
    assert stats.examined <= stats.compiled_rows + 1
    legacy = CandidateStats()
    same = answer_by_enumeration(
        members, state, domain, max_rows=100, max_candidates=5000,
        candidate_source="dovetail", stats=legacy,
    )
    assert same.relation.rows == answer.relation.rows
    assert legacy.generator == "dovetail"
    assert legacy.examined > stats.examined


def test_enumeration_bounded_box_completes_natural_answers():
    # x < max(S) has answer rows outside the active domain; the inferred
    # bounds make the grid complete, so enumeration still finds all of them.
    domain = PresburgerDomain()
    state = numeric_state([2, 9])
    below = parse_formula("exists y. (S(y) & x < y)")
    stats = CandidateStats()
    answer = answer_by_enumeration(
        below, state, domain, max_rows=50, max_candidates=500, stats=stats
    )
    assert answer.relation.rows == {(n,) for n in range(9)}
    assert "bounded" in stats.generator
    assert stats.bounded_variables == ("x",)


def test_enumeration_falls_back_to_dovetail_when_unbounded():
    domain = PresburgerDomain()
    state = numeric_state([3])
    above = parse_formula("3 < x")  # unbounded above: no finite grid exists
    stats = CandidateStats()
    answer = answer_by_enumeration(
        above, state, domain, max_rows=5, max_candidates=50, stats=stats
    )
    assert len(answer.partial) == 5  # same budget behaviour as before
    assert stats.generator.endswith("dovetail")


def test_enumeration_plan_explain_reports_candidates():
    plan = EnumerationPlan(domain=PresburgerDomain())
    answer = plan.execute(parse_formula("S(x)"), numeric_state([4, 7]))
    assert answer.relation.rows == {(4,), (7,)}
    assert "candidate generator" in plan.explain()
    assert "decision-tested" in plan.explain()
