"""Tests for NNF, prenex, DNF, and the generic quantifier-elimination driver."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.logic.analysis import free_variables
from repro.logic.builders import atom, conj, disj, eq, exists, forall, neg, var
from repro.logic.formulas import (
    And,
    Atom,
    Equals,
    Exists,
    ForAll,
    Iff,
    Implies,
    Not,
    Or,
    is_quantifier_free,
)
from repro.logic.terms import Const, Var
from repro.logic.transform import (
    dnf_clauses,
    matrix_and_prefix,
    simplify,
    to_dnf,
    to_nnf,
    to_prenex,
)
from repro.relational.calculus import evaluate_formula


UNIVERSE = (0, 1, 2)


def _all_assignments(formula):
    variables = sorted(free_variables(formula), key=lambda v: v.name)
    for values in itertools.product(UNIVERSE, repeat=len(variables)):
        yield dict(zip(variables, values))


class _TinyInterpretation:
    """Three-element structure interpreting P, Q, R as fixed relations."""

    def eval_predicate(self, name, args):
        table = {
            "P": {(0,), (2,)},
            "Q": {(1,), (2,)},
            "R": {(0, 1), (1, 2), (2, 2)},
        }
        return tuple(args) in table.get(name, set())

    def eval_function(self, name, args):
        raise KeyError(name)


INTERP = _TinyInterpretation()


def _equivalent(left, right):
    for assignment in _all_assignments(conj(left, right) if free_variables(left) | free_variables(right) else left):
        lhs = evaluate_formula(left, UNIVERSE, assignment, interpretation=INTERP)
        rhs = evaluate_formula(right, UNIVERSE, assignment, interpretation=INTERP)
        if lhs != rhs:
            return False
    return True


def test_simplify_constants():
    a = atom("P", var("x"))
    assert simplify(conj(a, neg(neg(a)))) == a
    assert simplify(disj(a, neg(a))) != None  # no tautology detection expected
    assert simplify(Implies(a, a)) is not None


def test_to_nnf_removes_implications_and_pushes_negation():
    formula = neg(Implies(atom("P", var("x")), atom("Q", var("x"))))
    nnf = to_nnf(formula)
    assert isinstance(nnf, And)
    assert _equivalent(formula, nnf)


def test_to_nnf_on_quantifiers():
    formula = neg(forall("x", Implies(atom("P", var("x")), atom("Q", var("x")))))
    nnf = to_nnf(formula)
    assert isinstance(nnf, Exists)
    assert _equivalent(formula, nnf)


def test_to_prenex_structure_and_equivalence():
    formula = conj(
        exists("x", atom("P", var("x"))),
        forall("y", disj(atom("Q", var("y")), atom("P", var("z")))),
    )
    prenex = to_prenex(formula)
    prefix, matrix = matrix_and_prefix(prenex)
    assert len(prefix) == 2
    assert is_quantifier_free(matrix)
    assert _equivalent(formula, prenex)


def test_to_dnf_and_clauses():
    formula = conj(disj(atom("P", var("x")), atom("Q", var("x"))), atom("R", var("x"), var("y")))
    dnf = to_dnf(formula)
    clauses = dnf_clauses(formula)
    assert len(clauses) == 2
    assert _equivalent(formula, dnf)


def test_dnf_clauses_of_constants():
    from repro.logic.formulas import BOTTOM, TOP

    assert dnf_clauses(TOP) == [[]]
    assert dnf_clauses(BOTTOM) == []


# --- property-based semantic preservation -----------------------------------

names = st.sampled_from(["x", "y"])
preds = st.sampled_from(["P", "Q"])


@st.composite
def small_formulas(draw, depth=3):
    if depth == 0:
        return draw(st.one_of(
            st.builds(lambda p, v: Atom(p, (Var(v),)), preds, names),
            st.builds(lambda a, b: Atom("R", (Var(a), Var(b))), names, names),
            st.builds(lambda a, b: Equals(Var(a), Var(b)), names, names),
        ))
    sub = small_formulas(depth=depth - 1)
    return draw(st.one_of(
        st.builds(lambda p, v: Atom(p, (Var(v),)), preds, names),
        st.builds(Not, sub),
        st.builds(lambda a, b: conj(a, b), sub, sub),
        st.builds(lambda a, b: disj(a, b), sub, sub),
        st.builds(Implies, sub, sub),
        st.builds(Iff, sub, sub),
        st.builds(lambda v, b: Exists(v, b), names, sub),
        st.builds(lambda v, b: ForAll(v, b), names, sub),
    ))


@settings(max_examples=80, deadline=None)
@given(small_formulas())
def test_nnf_preserves_semantics(formula):
    assert _equivalent(formula, to_nnf(formula))


@settings(max_examples=60, deadline=None)
@given(small_formulas())
def test_prenex_preserves_semantics(formula):
    assert _equivalent(formula, to_prenex(formula))


@settings(max_examples=60, deadline=None)
@given(small_formulas(depth=2))
def test_dnf_preserves_semantics_of_quantifier_free(formula):
    if not is_quantifier_free(formula):
        return
    assert _equivalent(formula, to_dnf(formula))
