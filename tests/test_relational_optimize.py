"""Tests for the logical plan optimizer and its supporting machinery.

Five layers:

* rewrite-shape tests: interleaved pad/filter, interval-join introduction on
  ordered domains (and *not* on unordered ones), range reduction of
  fully-projected interval joins, pad elimination, projection pushdown, and
  the recorded optimizer notes surfaced through ``summary()``/``explain()``;
* property-style equivalence: optimized and unoptimized plans must agree
  with each other, with the vectorized executor, and with the tree-walking
  evaluator on randomized states — including empty and one-element adoms;
* a deterministic blowup regression: the "strictly between two members"
  query's peak intermediate row count must be O(answer), not O(|adom|^2);
* the per-state columnar encode cache: hits on unchanged states, misses on
  changed ones, ``cache_info()``-style counters, LRU eviction, and the
  dictionary-codec key separation;
* the memoised ``OrderedRelativeSafety`` verdicts per (formula, state).
"""

import random

import pytest

from repro import connect
from repro.domains.equality import EqualityDomain
from repro.domains.nat_order import NaturalOrderDomain
from repro.domains.presburger import PresburgerDomain
from repro.domains.registry import get_entry
from repro.experiments.corpora import (
    family_schema,
    family_state,
    numeric_state,
    ordered_query_corpus,
)
from repro.experiments.exp01_intro_queries import (
    grandfather_query,
    more_than_one_son_query,
)
from repro.logic.parser import parse_formula
from repro.relational.calculus import evaluate_query_active_domain
from repro.relational.compile import compile_query
from repro.relational.exec import (
    AggBound,
    AttrRef,
    ConstRef,
    CrossPad,
    DomainCondition,
    ExecutionStats,
    Join,
    Literal,
    Project,
    RangeScan,
    Scan,
    Select,
    plan_summary,
    run_plan,
    walk_plan,
)
from repro.relational.optimize import domain_is_ordered, optimize_plan
from repro.relational.state import DatabaseState
from repro.safety.relative_safety import OrderedRelativeSafety

NAT = NaturalOrderDomain()
EQ = EqualityDomain()

BETWEEN = parse_formula("exists y. exists z. (S(y) & S(z) & y < x & x < z)")


def _between_compiled(schema=None, optimize=True):
    schema = schema if schema is not None else numeric_state([]).schema
    return compile_query(BETWEEN, schema, NAT, optimize=optimize)


# ---------------------------------------------------------------------------
# registry flag and ordered-domain detection
# ---------------------------------------------------------------------------


def test_registry_flags_ordered_carriers():
    assert get_entry("nat<").ordered_carrier
    assert get_entry("presburger").ordered_carrier
    assert get_entry("integers").ordered_carrier
    assert not get_entry("equality").ordered_carrier
    assert not get_entry("traces").ordered_carrier


def test_domain_is_ordered_falls_back_to_instance_attribute():
    class Unregistered:
        name = "no-such-domain"
        ordered_carrier = True

    assert domain_is_ordered(Unregistered())
    assert not domain_is_ordered(object())


# ---------------------------------------------------------------------------
# rewrite shapes
# ---------------------------------------------------------------------------


def test_between_query_reduces_to_range_scan():
    compiled = _between_compiled()
    kinds = {type(node).__name__ for node in walk_plan(compiled.plan)}
    assert "RangeScan" in kinds
    assert "CrossPad" not in kinds
    assert "Select" not in kinds
    summary = compiled.summary()
    assert "range-scan" in summary
    assert "optimizer:" in summary
    assert "interval join" in summary


def test_unoptimized_plan_keeps_the_padded_shape():
    compiled = _between_compiled(optimize=False)
    kinds = {type(node).__name__ for node in walk_plan(compiled.plan)}
    assert "CrossPad" in kinds and "Select" in kinds
    assert compiled.notes == ()
    assert "optimizer:" not in compiled.summary()


def test_no_interval_rewrite_on_unordered_domains():
    # The equality domain has no order, so even a hand-built "<" condition
    # must stay on the pointwise path.
    plan = Select(
        CrossPad(Literal(("y",), ((3,),)), ("x",), ("y", "x")),
        (DomainCondition("<", (AttrRef("y"), AttrRef("x"))),),
        ("y", "x"),
    )
    rewritten, notes = optimize_plan(plan, ordered=False)
    kinds = {type(node).__name__ for node in walk_plan(rewritten)}
    assert "IntervalJoin" not in kinds and "RangeScan" not in kinds
    rewritten_ordered, notes_ordered = optimize_plan(plan, ordered=True)
    kinds_ordered = {type(node).__name__ for node in walk_plan(rewritten_ordered)}
    assert "IntervalJoin" in kinds_ordered
    assert any("interval join" in note for note in notes_ordered)


def test_constant_bounds_survive_as_range_bounds():
    # above-seven: 7 < x over the adom — a constant lower bound.
    compiled = compile_query(
        parse_formula("7 < x"), numeric_state([]).schema, NAT
    )
    state = numeric_state([2, 5, 8, 11])
    rows = run_plan(compiled.plan, state, compiled.universe(state), NAT)
    assert rows == {(8,), (11,)}
    kinds = {type(node).__name__ for node in walk_plan(compiled.plan)}
    assert "IntervalJoin" in kinds or "RangeScan" in kinds


def test_non_integer_constants_stay_pointwise():
    plan = Select(
        CrossPad(Literal((), ((),)), ("x",), ("x",)),
        (DomainCondition("<", (ConstRef("seven"), AttrRef("x"))),),
        ("x",),
    )
    rewritten, _notes = optimize_plan(plan, ordered=True)
    kinds = {type(node).__name__ for node in walk_plan(rewritten)}
    assert "IntervalJoin" not in kinds and "RangeScan" not in kinds


def test_negated_comparison_flips_into_the_complement_bound():
    # not (x < y) ⟺ x >= y: a lower inclusive bound on x.
    query = parse_formula("exists y. (S(y) & ~(x < y))")
    schema = numeric_state([]).schema
    compiled = compile_query(query, schema, NAT)
    state = numeric_state([4, 9])
    rows = run_plan(compiled.plan, state, compiled.universe(state), NAT)
    assert rows == {(4,), (9,)}
    tree = evaluate_query_active_domain(query, state, interpretation=NAT)
    assert rows == tree.rows


def test_projection_pushdown_drops_single_part_attributes():
    wide = Scan("F", ("x", "y"), (), ("x", "y"))
    tall = Scan("F", ("y", "z"), (), ("y", "z"))
    plan = Project(Join((wide, tall), ("x", "y", "z")), ("x",))
    rewritten, notes = optimize_plan(plan)
    # z is used only by the second part and not projected: dropped pre-join.
    joins = [n for n in walk_plan(rewritten) if isinstance(n, Join)]
    assert joins and "z" not in joins[0].attrs
    assert any("projection" in note for note in notes)


def test_pad_elimination_keeps_empty_adom_semantics():
    # exists x over an unconstrained pad: dropping the pad must not make the
    # query true on an empty active domain.
    inner = Literal(("y",), ((1,),))
    plan = Project(CrossPad(inner, ("x",), ("y", "x")), ("y",))
    rewritten, notes = optimize_plan(plan)
    assert any("pad" in note for note in notes)
    state = DatabaseState(family_schema())
    # empty adom: the pad has nothing to range over, so no rows survive
    assert run_plan(rewritten, state, [], EQ) == set()
    assert run_plan(plan, state, [], EQ) == set()
    # non-empty adom: the pad is a no-op for the projected answer
    assert run_plan(rewritten, state, [7], EQ) == {(1,)}


def test_optimizer_notes_reach_plan_explain():
    session = connect("nat<", numeric_state([]).schema)
    plan = session.plan("compiled")
    # Active-domain semantics: only stored elements strictly between two
    # other stored elements qualify.
    state = numeric_state([1, 5, 9])
    answer = plan.execute(BETWEEN, state)
    assert answer.rows() == ((5,),)
    assert "optimizer:" in plan.explain()
    assert "interval join" in plan.explain()


def test_plan_summary_counts_interval_operators():
    plan = RangeScan(
        (AggBound(Project(Scan("S", ("v",), (), ("v",)), ("v",)), "min"),),
        (),
        ("x",),
    )
    assert plan_summary(plan) == "1 scan, 1 range-scan, 1 project"


# ---------------------------------------------------------------------------
# equivalence properties
# ---------------------------------------------------------------------------


def _assert_all_substrates_agree(query, state, domain):
    unoptimized = compile_query(query, state.schema, domain, optimize=False)
    optimized = compile_query(query, state.schema, domain)
    adom = optimized.universe(state)
    rows_naive = run_plan(unoptimized.plan, state, adom, domain)
    rows_opt = run_plan(optimized.plan, state, adom, domain)
    tree = evaluate_query_active_domain(query, state, interpretation=domain)
    assert rows_naive == rows_opt == tree.rows
    numpy = pytest.importorskip("numpy")
    assert numpy is not None
    from repro.relational.columnar import run_plan_vectorized

    assert run_plan_vectorized(optimized.plan, state, adom, domain) == rows_opt
    assert run_plan_vectorized(unoptimized.plan, state, adom, domain) == rows_opt


@pytest.mark.parametrize("name,query,_finite", ordered_query_corpus())
def test_optimized_plans_equivalent_on_randomized_ordered_states(
    name, query, _finite
):
    rng = random.Random(hash(name) & 0xFFFF)
    for _ in range(12):
        values = rng.sample(range(0, 120), rng.randint(0, 10))
        _assert_all_substrates_agree(query, numeric_state(values), NAT)


@pytest.mark.parametrize("values", [[], [5], [5, 6], [0, 1, 2]])
def test_between_query_on_degenerate_adoms(values):
    _assert_all_substrates_agree(BETWEEN, numeric_state(values), NAT)


def test_optimized_plans_equivalent_on_equality_domain():
    rng = random.Random(7)
    for _ in range(6):
        state = family_state(
            generations=rng.randint(1, 3), sons_per_father=rng.randint(1, 2)
        )
        for query in (grandfather_query(), more_than_one_son_query()):
            _assert_all_substrates_agree(query, state, EQ)


def test_presburger_domain_also_gets_interval_plans():
    domain = PresburgerDomain()
    compiled = compile_query(BETWEEN, numeric_state([]).schema, domain)
    kinds = {type(node).__name__ for node in walk_plan(compiled.plan)}
    assert "RangeScan" in kinds
    _assert_all_substrates_agree(BETWEEN, numeric_state([3, 10, 20]), domain)


# ---------------------------------------------------------------------------
# the blowup regression
# ---------------------------------------------------------------------------


def test_between_query_peak_rows_stay_linear():
    size = 40
    state = numeric_state([2 * i + 1 for i in range(size)])
    optimized = _between_compiled()
    unoptimized = _between_compiled(optimize=False)
    adom = optimized.universe(state)

    opt_stats = ExecutionStats()
    answer = run_plan(optimized.plan, state, adom, NAT, opt_stats)
    naive_stats = ExecutionStats()
    assert run_plan(unoptimized.plan, state, adom, NAT, naive_stats) == answer

    # O(answer): every optimized operator output is bounded by the adom/answer
    # size; the unoptimized plan materialises |S|^2 pairs and worse.
    assert opt_stats.peak_rows <= 2 * (len(answer) + len(adom))
    assert naive_stats.peak_rows >= size * size
    assert opt_stats.peak_rows < naive_stats.peak_rows / 50


def test_execution_stats_record_operator_outputs():
    state = numeric_state([1, 2, 3])
    compiled = compile_query(
        parse_formula("S(x)"), state.schema, NAT
    )
    stats = ExecutionStats()
    rows = run_plan(compiled.plan, state, compiled.universe(state), NAT, stats)
    assert rows == {(1,), (2,), (3,)}
    assert stats.peak_rows == 3
    assert stats.total_rows >= 3
    assert ("Scan", 3) in stats.operator_rows


# ---------------------------------------------------------------------------
# the per-state encode cache
# ---------------------------------------------------------------------------


numpy = pytest.importorskip("numpy")  # the cache stores ndarray columns

from repro.relational.columnar import (  # noqa: E402
    ElementCodec,
    EncodeCache,
    run_plan_vectorized,
)


def test_encode_cache_hits_on_unchanged_state():
    cache = EncodeCache(maxsize=4)
    state = numeric_state([1, 5, 9])
    compiled = compile_query(
        parse_formula("S(x)"), state.schema, NAT
    )
    adom = compiled.universe(state)
    first = run_plan_vectorized(compiled.plan, state, adom, NAT, cache=cache)
    info = cache.info()
    assert (info.hits, info.misses) == (0, 1)
    second = run_plan_vectorized(compiled.plan, state, adom, NAT, cache=cache)
    assert first == second == {(1,), (5,), (9,)}
    info = cache.info()
    assert (info.hits, info.misses) == (1, 1)
    assert str(info).startswith("hits=1 misses=1")


def test_encode_cache_misses_on_changed_state():
    cache = EncodeCache(maxsize=4)
    compiled = compile_query(
        parse_formula("S(x)"), numeric_state([]).schema, NAT
    )
    for values in ([1, 2], [1, 2, 3], [1, 2]):
        state = numeric_state(values)
        run_plan_vectorized(
            compiled.plan, state, compiled.universe(state), NAT, cache=cache
        )
    info = cache.info()
    # the third state equals the first by value, so it hits its entry
    assert info.misses == 2 and info.hits == 1


def test_encode_cache_evicts_lru():
    cache = EncodeCache(maxsize=2)
    compiled = compile_query(
        parse_formula("S(x)"), numeric_state([]).schema, NAT
    )
    for values in ([1], [2], [3]):
        state = numeric_state(values)
        run_plan_vectorized(
            compiled.plan, state, compiled.universe(state), NAT, cache=cache
        )
    info = cache.info()
    assert info.evictions == 1 and info.size == 2


def test_encode_cache_separates_codecs_by_key():
    numeric = ElementCodec.for_universe([1, 2])
    named = ElementCodec.for_universe(["a", "b"])
    assert numeric.cache_key() == ("numeric",)
    assert named.cache_key()[0] == "dictionary"
    cache = EncodeCache(maxsize=4)
    state = numeric_state([1, 2])
    assert cache.columns_for(state, numeric) is cache.columns_for(state, numeric)
    assert cache.columns_for(state, numeric) is not cache.columns_for(state, named)


def test_encode_cache_reuses_relation_arrays():
    cache = EncodeCache(maxsize=4)
    state = numeric_state([4, 8])
    compiled = compile_query(
        parse_formula("S(x)"), state.schema, NAT
    )
    adom = compiled.universe(state)
    run_plan_vectorized(compiled.plan, state, adom, NAT, cache=cache)
    codec = ElementCodec.for_universe([4, 8])
    store = cache.columns_for(state, codec)
    assert "S" in store  # filled lazily by the first execution
    array = store["S"]
    run_plan_vectorized(compiled.plan, state, adom, NAT, cache=cache)
    assert cache.columns_for(state, codec)["S"] is array


def test_session_exposes_encode_cache_info():
    session = connect("nat<", numeric_state([]).schema)
    info = session.encode_cache_info()
    assert hasattr(info, "hits") and hasattr(info, "misses")
    assert "encode cache" in session.plan("vectorized").explain()


def test_codec_extend_preserves_existing_codes():
    base = ElementCodec.for_universe(["eve", "adam"])
    grown = base.extend(["cain", "eve"])
    assert grown is not base
    for element in ("eve", "adam"):
        assert grown.encode(element) == base.encode(element)
    assert grown.decode(grown.encode("cain")) == "cain"
    assert base.extend(["eve"]) is base  # nothing new: same codec
    numeric = ElementCodec.for_universe([1, 2])
    assert numeric.extend([99]) is numeric  # passthrough never grows


def test_encode_cache_grows_dictionary_codec_without_reencoding():
    from repro.relational.schema import DatabaseSchema, RelationSchema

    schema = DatabaseSchema((RelationSchema("N", 1, ("name",)),))
    state = DatabaseState(schema, {"N": [("eve",), ("adam",)]})
    plan = Scan("N", ("x",), (), ("x",))
    cache = EncodeCache(maxsize=4)
    first = run_plan_vectorized(plan, state, ["eve", "adam"], EQ, cache=cache)
    assert first == {("eve",), ("adam",)}
    # A wider universe (a new constant outside the carrier) changes the
    # codec — the dictionary table must grow, not rebuild, so the cached
    # relation columns keep serving.
    second = run_plan_vectorized(
        plan, state, ["eve", "adam", "cain"], EQ, cache=cache
    )
    assert second == first
    info = cache.info()
    assert info.misses == 1 and info.hits == 1
    assert info.grown == 1
    assert "grown=1" in str(info)


def test_encode_cache_grown_columns_stay_valid():
    from repro.relational.schema import DatabaseSchema, RelationSchema

    schema = DatabaseSchema((RelationSchema("N", 1, ("name",)),))
    state = DatabaseState(schema, {"N": [("b",), ("d",)]})
    plan = Scan("N", ("x",), (), ("x",))
    cache = EncodeCache(maxsize=4)
    run_plan_vectorized(plan, state, ["b", "d"], EQ, cache=cache)
    codec = cache.codec_for(state, ["b", "d"])
    store = cache.columns_for(state, codec)
    array = store["N"]
    # growing by an element that would sort *before* the existing table must
    # not invalidate the cached encoding (append-only, not re-sorted)
    wider = run_plan_vectorized(plan, state, ["a", "b", "d"], EQ, cache=cache)
    assert wider == {("b",), ("d",)}
    grown = cache.codec_for(state, ["a", "b", "d"])
    assert cache.columns_for(state, grown)["N"] is array
    assert grown.encode("b") == codec.encode("b")


def test_state_fingerprint_is_stable_and_memoised():
    state = numeric_state([3, 1])
    twin = numeric_state([1, 3])
    other = numeric_state([1, 4])
    # The fingerprint is a full 64-bit XOR of per-row tokens (so Delta
    # application can patch it); __hash__ derives from it, but Python's
    # hash() reduces big ints, so the two are equal only as hash keys.
    assert state.fingerprint() == twin.fingerprint()
    assert hash(state) == hash(twin)
    assert state.fingerprint() != other.fingerprint() or state != other
    assert state.elements() is state.elements()  # memoised frozenset


# ---------------------------------------------------------------------------
# memoised OrderedRelativeSafety
# ---------------------------------------------------------------------------


def test_ordered_relative_safety_memoises_per_formula_and_state():
    domain = PresburgerDomain()
    calls = {"n": 0}
    original = domain.decide

    def counting_decide(sentence):
        calls["n"] += 1
        return original(sentence)

    domain.decide = counting_decide
    safety = OrderedRelativeSafety(domain)
    query = parse_formula("S(x)")
    state = numeric_state([1, 2])

    first = safety.decide(query, state)
    assert calls["n"] == 1
    second = safety.decide(query, state)
    assert calls["n"] == 1  # served from the memo
    assert first is second
    assert safety.memo_info().hits == 1

    # an equal-by-value state also hits; a different state recomputes
    safety.decide(query, numeric_state([1, 2]))
    assert calls["n"] == 1
    safety.decide(query, numeric_state([1, 2, 3]))
    assert calls["n"] == 2
